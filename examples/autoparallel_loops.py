#!/usr/bin/env python
"""Automatic loop parallelization — the paper's compiler, at runtime.

Paper §4 argues programs "should be automatically parallelized by the
compiler, without the use of OpenMP-style directives", and shows the
compiler splitting a loop of device reads into a send-loop and a
receive-loop.  The library performs that transformation on unmodified
call sites inside ``with oopp.autoparallel():``.

This example runs the *same loop body* three ways on the simulated
cluster and prints the simulated cost of each:

1. plain sequential calls (the untransformed program) — the two
   baseline loops below are deliberately sequential and suppressed
   with ``# oopp: ignore[OOPP201]``; they are also the corpus the
   automatic rewriter is verified against (``oopp-lint --fix
   --no-suppress`` turns them into form 2 with identical results —
   see docs/AUTOPAR.md and tests/check/test_transform_conform.py);
2. the same loop inside ``autoparallel()`` (the compiler's output);
3. a loop with a genuine data dependency, where reading ``.value``
   degrades exactly one call to sequential — the "subtle bugs" the
   paper warns about, handled by forcing instead of breaking.

Run:  python examples/autoparallel_loops.py
"""

import repro as oopp
from repro.util.timing import format_seconds

N = 16
NOMINAL = 16 << 20  # pretend pages of 16 MiB


def sequential_reads(device: "ObjectGroup", page_address, n):
    """The paper's §4 read loop, one blocking round-trip per page."""
    buffer = [device[i].read_page(page_address[i]) for i in range(n)]  # oopp: ignore[OOPP201] — the sequential baseline this example measures
    return [p.nbytes for p in buffer]


def sequential_sums(device: "ObjectGroup", n):
    """A second sequential baseline: at-the-data reductions, collected
    one reply at a time."""
    sums = []
    for i in range(n):  # oopp: ignore[OOPP201] — sequential baseline, rewritten by oopp-lint --fix
        sums.append(device[i].sum(0))
    return sums


def demo_program(cluster, prefix="autopar-demo", n=3):
    """Both baselines as one conformance program (``fn(cluster)``):
    the rewritten example must produce identical outcomes on every
    backend (tests/check/test_transform_conform.py)."""
    storage = oopp.create_block_storage(
        cluster, n, NumberOfPages=2, n1=8, n2=8, n3=8,
        nominal_page_size=NOMINAL, filename_prefix=prefix)
    device = storage.devices
    page_address = [i % 2 for i in range(n)]
    return (sequential_reads(device, page_address, n),
            sequential_sums(device, n))


def main() -> None:
    with oopp.Cluster(n_machines=N, backend="sim") as cluster:
        engine = cluster.fabric.engine
        storage = oopp.create_block_storage(
            cluster, N, NumberOfPages=4, n1=8, n2=8, n3=8,
            nominal_page_size=NOMINAL, filename_prefix="autopar")
        device = storage.devices
        page_address = [i % 4 for i in range(N)]

        # --- 1: the paper's sequential loops --------------------------------
        t0 = engine.now
        sizes = sequential_reads(device, page_address, N)
        sequential_sums(device, N)
        t_seq = engine.now - t0
        assert all(nbytes == 4096 for nbytes in sizes)
        print(f"sequential loops         : {format_seconds(t_seq)} simulated")

        # --- 2: the same statements, automatically parallelized -------------
        t0 = engine.now
        with oopp.autoparallel():
            buffer = [device[i].read_page(page_address[i]) for i in range(N)]
            sums = [device[i].sum(0) for i in range(N)]
        t_par = engine.now - t0
        pages = [b.value for b in buffer]
        assert all(p.nbytes == 4096 for p in pages)
        assert len(sums) == N
        print(f"with oopp.autoparallel() : {format_seconds(t_par)} simulated "
              f"({t_seq / t_par:.1f}x)")

        # --- 3: a loop-carried dependency forces one call -------------------
        counter = cluster.on(0).new_block(N)
        t0 = engine.now
        with oopp.autoparallel():
            first = device[0].sum(0)        # needed by the next statement
            pivot = first.value             # forces THIS call only
            rest = [device[i].sum(0) for i in range(1, N)]
            counter.write(1, [pivot])       # dependent call, still batched
        t_dep = engine.now - t0
        total = pivot + sum(r.value for r in rest)
        print(f"with one dependency      : {format_seconds(t_dep)} simulated "
              f"(sum of all pages = {total})")


if __name__ == "__main__":
    main()
