#!/usr/bin/env python
"""The paper's motivating computation: a distributed 3-D FFT (§4).

Reproduces the §4 listing exactly — FFT objects created one per
machine, introduced to each other with ``SetGroup`` (the deep-copied
array of remote pointers), cooperating purely through remote method
execution — and verifies the result against numpy.

Two drive modes are shown:

* the *collective* mode: one ``transform`` call per worker does the
  whole pipeline, workers blocking on each other's deposits (the
  paper's literal ``fft[id]->transform(sign, a)``);
* the *out-of-core* mode: the array ``a`` is a distributed Array on
  block storage, and workers pull/push their slabs directly from the
  storage devices.

Run:  python examples/parallel_fft.py
"""

import numpy as np

import repro as oopp
from repro.array.ops import offset_map


def collective_mode(cluster, a: np.ndarray) -> None:
    print("\n--- collective mode (the paper's one-call transform) ---")
    plan = oopp.DistributedFFT3D(cluster, a.shape,
                                 n_workers=cluster.n_machines,
                                 collective=True)
    spectrum = plan.forward(a)
    assert np.allclose(spectrum, np.fft.fftn(a), atol=1e-8)
    print(f"forward FFT of {a.shape}: matches numpy "
          f"(max |err| = {np.abs(spectrum - np.fft.fftn(a)).max():.2e})")
    back = plan.inverse(spectrum)
    assert np.allclose(back, a, atol=1e-8)
    print("inverse round trip: ok")
    plan.destroy()


def out_of_core_mode(cluster, a: np.ndarray) -> None:
    print("\n--- out-of-core mode (array lives on block storage) ---")
    N = a.shape
    page = tuple(n // 2 for n in N)
    grid = (2, 2, 2)
    base = oopp.RoundRobinPageMap(grid=grid, n_devices=cluster.n_machines)
    cap = base.pages_per_device
    storage = oopp.create_block_storage(
        cluster, cluster.n_machines, NumberOfPages=3 * cap,
        n1=page[0], n2=page[1], n3=page[2], filename_prefix="fft-ooc")

    def make_array(k):
        return oopp.Array(*N, *page, storage,
                          offset_map(grid=grid,
                                     n_devices=cluster.n_machines,
                                     base=base, offset=k * cap))

    src = make_array(0)
    dst_re, dst_im = make_array(1), make_array(2)
    src.write(a.real)
    print(f"source array written to {len(storage)} devices")

    plan = oopp.DistributedFFT3D(cluster, N, n_workers=cluster.n_machines)
    plan.forward_arrays(src, None, dst_re, dst_im)
    got = dst_re.read() + 1j * dst_im.read()
    assert np.allclose(got, np.fft.fftn(a.real), atol=1e-8)
    print("workers read slabs from the Array, transformed, wrote back: ok")
    # The spectrum now lives on the storage devices; reduce it there:
    print(f"spectral power (computed at the data): "
          f"{dst_re.norm2()**2 + dst_im.norm2()**2:.4f}")
    plan.destroy()


def main() -> None:
    rng = np.random.default_rng(7)
    a = rng.random((16, 16, 16)) + 1j * rng.random((16, 16, 16))
    with oopp.Cluster(n_machines=4, backend="mp",
                      call_timeout_s=120.0) as cluster:
        print(f"cluster up: machines {cluster.ping_all()}")
        collective_mode(cluster, a)
        out_of_core_mode(cluster, a)


if __name__ == "__main__":
    main()
