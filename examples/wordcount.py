#!/usr/bin/env python
"""MapReduce over object processes (the paper's conclusion claim).

The paper closes by claiming the framework "is rich enough to include
... other programming models (client-server applications, map-reduce,
etc.)".  Here is map-reduce: mappers and reducers are remote objects,
and the shuffle is mappers executing ``reducer.accept(...)`` directly
on reducer objects across machines — the driver never touches a
key-value pair.

Run:  python examples/wordcount.py
"""

import repro as oopp
from repro.apps.mapreduce import MapReduce

TEXT = """\
in this paper we have shown that programming objects have a natural
interpretation as processes and have described the resulting object
oriented framework for parallel programming in our view a parallel
program consists of a collection of persistent processes which in
general represent different programming objects the processes
communicate by executing methods on remote objects the resulting
framework is rich enough to include shared memory and distributed
memory programming as well as other programming models
""".strip().splitlines()


def map_words(line):
    """record -> (word, 1) pairs; runs on the mapper's machine."""
    for word in line.split():
        yield word, 1


def reduce_count(word, counts):
    """fold one key group; runs on the reducer's machine."""
    return sum(counts)


def main() -> None:
    with oopp.Cluster(n_machines=4, backend="mp",
                      call_timeout_s=60.0) as cluster:
        job = MapReduce(cluster, map_words, reduce_count,
                        n_mappers=4, n_reducers=2)
        counts = job.run(TEXT)

        print(f"{len(TEXT)} lines -> {len(counts)} distinct words\n")
        top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
        for word, n in top:
            print(f"  {n:3d}  {word}")

        print("\nmapper stats:", job.last_map_stats)
        print("reducer stats:", job.reducers.invoke("stats"))
        job.destroy()


if __name__ == "__main__":
    main()
