#!/usr/bin/env python
"""Quickstart: objects as processes (paper §2).

Creates a real multi-process cluster, allocates a PageDevice *on another
machine* with the paper's ``new(machine 1) PageDevice(...)``, and talks
to it through ordinary method calls.

Run:  python examples/quickstart.py
"""

import repro as oopp


def main() -> None:
    # Four machines, each a separate OS process with an object server.
    with oopp.Cluster(n_machines=4, backend="mp",
                      call_timeout_s=60.0) as cluster:
        print(f"cluster up: machines {cluster.ping_all()}")

        # --- the paper's first listing -----------------------------------
        # PageDevice * PageStore = new(machine 1)
        #     PageDevice("pagefile", NumberOfPages, PageSize);
        NumberOfPages, PageSize = 10, 1024
        page_store = cluster.on(1).new(oopp.PageDevice, "pagefile",
                                       NumberOfPages, PageSize)

        # Page * page = GenerateDataPage();
        page = oopp.Page(PageSize, bytes(range(256)) * 4)

        # PageStore->write(page, PageAddress);
        page_store.write(page, 7)
        print("wrote one page to machine 1")

        # Reads are method executions too; the page rides the response.
        fetched = page_store.read(7)
        assert fetched == page
        print("read it back:", fetched)

        # --- remote primitive data ----------------------------------------
        # double * data = new(machine 2) double[1024];
        data = cluster.on(2).new_block(1024)
        data[7] = 3.1415          # one round trip
        x = data[2]               # one round trip
        print(f"data[7] = {data[7]}, data[2] = {x}")

        # Bulk access amortizes the round trip (see experiment E2):
        import numpy as np

        data.write(0, np.arange(10.0))
        print("bulk slice:", data.read(0, 10))

        # --- destructor semantics ------------------------------------------
        # delete PageStore; — terminates the remote process.
        oopp.destroy(page_store)
        try:
            page_store.read(0)
        except oopp.NoSuchObjectError:
            print("destroyed device correctly dangles")

        print("machine stats:", cluster.stats())


if __name__ == "__main__":
    main()
