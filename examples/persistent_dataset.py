#!/usr/bin/env python
"""Persistent processes and symbolic addresses (paper §5).

Builds a dataset as a collection of persistent processes, shuts the
whole cluster down, then starts a *new* cluster (new OS processes) and
re-attaches to the data through its ``oop://`` addresses — the paper's
``PageDevice * d = "http://data/set/PageDevice/34"``.

Also demonstrates the §5 inheritance-meets-persistence pattern:
adopting an existing PageDevice as an ArrayPageDevice, then deleting
the original.

Run:  python examples/persistent_dataset.py
"""

import os
import tempfile

import numpy as np

import repro as oopp

STORAGE_ROOT = os.path.join(tempfile.gettempdir(), "oopp-example-dataset")


def build_dataset() -> list[str]:
    print("--- session 1: build the dataset ---")
    addresses = []
    with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=60.0,
                      storage_root=STORAGE_ROOT) as cluster:
        # sequential on purpose: each turn persists the device and
        # stringifies its address right away, so there is nothing
        # left to pipeline across iterations.
        for i in range(3):  # oopp: ignore[OOPP201]
            dev = cluster.on(i).new(
                oopp.ArrayPageDevice,
                os.path.join(STORAGE_ROOT, f"set-{i}.dat"),
                4, 8, 8, 8)
            data = np.full((8, 8, 8), float(i + 1))
            dev.write_page(oopp.ArrayPage(8, 8, 8, data), 0)
            addr = cluster.persist(dev, str(30 + i))
            addresses.append(str(addr))
            print(f"  persisted device {i} as {addr}")
    print("cluster shut down; machine processes are gone\n")
    return addresses


def use_dataset(addresses: list[str]) -> None:
    print("--- session 2: re-attach through symbolic addresses ---")
    with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=60.0,
                      storage_root=STORAGE_ROOT) as cluster:
        for i, text in enumerate(addresses):
            # PageDevice * page_device = "oop://data/ArrayPageDevice/3i";
            dev = cluster.lookup(text, machine=i % cluster.n_machines)
            total = dev.sum(0)
            print(f"  {text} -> sum(page 0) = {total} "
                  f"(expected {float((i + 1) * 512)})")
            assert total == float((i + 1) * 512)

        # --- adoption: derive a structured process from a raw one ---------
        raw = cluster.on(0).new(oopp.PageDevice,
                                os.path.join(STORAGE_ROOT, "raw.dat"),
                                2, 8 * 8 * 8 * 8)
        raw.write(oopp.Page(4096, b"\x00" * 4096), 0)
        # ArrayPageDevice * new_device = new ArrayPageDevice(page_device);
        structured = cluster.on(0).new(oopp.ArrayPageDevice, raw, 8, 8, 8)
        structured.fill_region(0, (0, 0, 0), (8, 8, 8), 2.0)
        print(f"  adopted raw device; structured sum = {structured.sum(0)}")
        # ... and shut the original down: delete page_device;
        oopp.destroy(raw)
        assert structured.sum(0) == 1024.0
        print("  original deleted; adopted view still serves the data")


def main() -> None:
    os.makedirs(STORAGE_ROOT, exist_ok=True)
    addresses = build_dataset()
    use_dataset(addresses)
    print("\ndone — dataset remains under", STORAGE_ROOT)


if __name__ == "__main__":
    main()
