#!/usr/bin/env python
"""Distributed Jacobi heat equation: a stencil computation as objects.

Each worker owns a slab of the grid; every iteration it deposits its
boundary rows into its neighbours by remote method execution, then
applies the Jacobi update locally.  Verified against a serial numpy
reference.

Run:  python examples/heat_equation.py
"""

import numpy as np

import repro as oopp
from repro.apps.stencil import HeatSolver, solve_serial


def initial_grid(rows=48, cols=32) -> np.ndarray:
    u = np.zeros((rows, cols))
    u[0, :] = 100.0       # hot top edge
    u[-1, :] = 0.0        # cold bottom edge
    u[:, 0] = 50.0        # warm left edge
    return u


def render(u: np.ndarray) -> str:
    """Coarse ASCII heat map."""
    shades = " .:-=+*#%@"
    sub = u[::6, ::4]
    lines = []
    for row in sub:
        lines.append("".join(
            shades[min(int(v / 100.0 * (len(shades) - 1)), len(shades) - 1)]
            for v in row))
    return "\n".join(lines)


def main() -> None:
    u0 = initial_grid()
    alpha_dt_h2, steps = 0.2, 400

    with oopp.Cluster(n_machines=4, backend="mp",
                      call_timeout_s=120.0) as cluster:
        solver = HeatSolver(cluster, u0.shape, n_workers=4)
        solver.load(u0)
        print("initial plate:")
        print(render(u0))
        done = 0
        for target in (50, 150, 400):
            while done < target:
                delta = solver.step(alpha_dt_h2)
                done += 1
            print(f"\nafter {done} steps (last max|du| = {delta:.4f}):")
            print(render(solver.gather()))

        got = solver.gather()
        want = solve_serial(u0, alpha_dt_h2, 400)
        err = np.abs(got - want).max()
        print(f"\nmax deviation from serial reference: {err:.2e}")
        assert err < 1e-10
        print("distributed solution matches the serial solver exactly")


if __name__ == "__main__":
    main()
