#!/usr/bin/env python
"""Petascale-shaped experiments on the simulated cluster.

The paper envisions half-petabyte arrays on hundreds of hard drives.
This example runs that configuration on a laptop: the ``sim`` backend
executes the same library code under a simulated clock, charging
modeled NICs and disks, with *nominal* page sizes standing in for the
real ones.

It reproduces the paper's §4 claim live: splitting the request loop
into a send-loop and a receive-loop turns N sequential device reads
into parallel disk I/O.

Run:  python examples/petascale_simulation.py
"""

import repro as oopp
from repro.runtime.group import ObjectGroup
from repro.util.timing import format_bytes, format_seconds

#: pretend pages of 256 MiB; the real backing blocks are 4 KiB
NOMINAL_PAGE = 256 << 20
N_DEVICES = 64


def main() -> None:
    with oopp.Cluster(n_machines=N_DEVICES, backend="sim") as cluster:
        engine = cluster.fabric.engine
        print(f"simulated cluster: {N_DEVICES} machines, "
              f"disks {cluster.config.disk.bandwidth_Bps / 1e6:.0f} MB/s, "
              f"network {cluster.config.network.bandwidth_Bps * 8 / 1e9:.0f} "
              f"Gb/s")

        # One ArrayPageDevice per machine, each with its own disk; pages
        # are nominally 256 MiB.
        storage = oopp.create_block_storage(
            cluster, N_DEVICES, NumberOfPages=4, n1=8, n2=8, n3=8,
            nominal_page_size=NOMINAL_PAGE, filename_prefix="peta")
        devices = ObjectGroup(storage.devices)
        total = N_DEVICES * 4 * NOMINAL_PAGE
        print(f"deployed {N_DEVICES} devices holding nominally "
              f"{format_bytes(total)}\n")

        # --- the paper's sequential loop ----------------------------------
        t0 = engine.now
        devices.invoke_sequential("read_page", 0)
        t_seq = engine.now - t0
        print(f"sequential loop : one page from each device in "
              f"{format_seconds(t_seq)} (simulated)")

        # --- the compiler-split loop ----------------------------------------
        t0 = engine.now
        devices.invoke("read_page", 0)   # send-loop + receive-loop
        t_par = engine.now - t0
        print(f"split loop      : same reads in {format_seconds(t_par)} "
              f"(simulated)")
        print(f"speedup         : {t_seq / t_par:.1f}x across {N_DEVICES} "
              f"disks")

        # Where did the time go?  The client NIC is the ceiling:
        report = cluster.fabric.utilization_report()
        driver_ingress = report[-1]["ingress_util"]
        disk_utils = [v for node, entry in report.items() if node >= 0
                      for k, v in entry.items() if k.endswith("_util")
                      and "disk" in k]
        print(f"\ndriver ingress utilization : {driver_ingress:.0%}")
        if disk_utils:
            print(f"mean device disk utilization: "
                  f"{sum(disk_utils) / len(disk_utils):.0%}")
        print("\n(the NIC ceiling is experiment E4's plateau — "
              "see EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
