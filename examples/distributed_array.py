#!/usr/bin/env python
"""A large 3-D array over many storage devices (paper §5).

Builds the paper's Array stack — ArrayPageDevices deployed one per
machine, a PageMap layout, the Array client — then exercises domain
reads/writes and both reduction strategies ("move the data" vs "move
the computation").

Run:  python examples/distributed_array.py
"""

import numpy as np

import repro as oopp
from repro.array.ops import axpy, dot, offset_map


def main() -> None:
    with oopp.Cluster(n_machines=4, backend="mp",
                      call_timeout_s=60.0) as cluster:
        # --- deploy the block storage (paper §4 loop) ---------------------
        # for (i) device[i] = new(machine i) ArrayPageDevice(...)
        N, page = (16, 16, 16), (8, 8, 8)
        grid = tuple(n // p for n, p in zip(N, page))  # 2x2x2 pages
        base = oopp.RoundRobinPageMap(grid=grid, n_devices=4)
        cap = base.pages_per_device
        storage = oopp.create_block_storage(
            cluster, 4, NumberOfPages=2 * cap, n1=8, n2=8, n3=8,
            filename_prefix="example-array")
        print(f"deployed {len(storage)} ArrayPageDevices, one per machine")

        # --- the Array client ------------------------------------------------
        x = oopp.Array(*N, *page, storage,
                       offset_map(grid=grid, n_devices=4, base=base, offset=0))
        ref = np.random.default_rng(0).random(N)
        x.write(ref)
        print(f"wrote a {N} array ({x.size * 8 // 1024} KiB) across devices")

        # Domain reads assemble from whichever devices hold the pages —
        # all transfers in flight at once (the §4 loop splitting).
        dom = oopp.Domain(3, 13, 2, 10, 5, 16)
        sub = x.read(dom)
        assert np.allclose(sub, ref[dom.slices])
        print(f"read sub-domain {dom} -> shape {sub.shape}")

        # --- move the computation to the data --------------------------------
        total = x.sum()               # partial sums computed on the devices
        print(f"sum at the data      : {total:.6f}")
        local = float(x.read().sum())  # the other strategy
        print(f"read + local sum     : {local:.6f}")
        assert abs(total - local) < 1e-9
        print(f"norm2 at the data    : {x.norm2():.6f}")

        # --- sibling arrays and page-local algebra ----------------------------
        y = oopp.Array(*N, *page, storage,
                       offset_map(grid=grid, n_devices=4, base=base,
                                  offset=cap))
        y.write(np.ones(N))
        axpy(2.0, x, y)               # y += 2x, computed on the devices
        assert np.allclose(y.read(), 1.0 + 2.0 * ref)
        print(f"y += 2x at the data  : ok; x.y = {dot(x, y):.6f}")

        print("device I/O:", storage.io_stats())


if __name__ == "__main__":
    main()
