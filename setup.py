"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments without the
``wheel`` package (pip then uses the classic ``setup.py develop`` path).
All real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "oopp: object-oriented parallel programming (objects as processes), "
        "reproducing Givelberg's 'Object-Oriented Parallel Programming'"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
