"""Cluster facade: construction, topology, shutdown semantics."""

from __future__ import annotations

import pytest

import repro as oopp
from repro.errors import ConfigError, NoSuchMachineError
from repro.runtime.cluster import current_cluster


class Echo:
    def hear(self, x):
        return x


class TestConstruction:
    def test_defaults(self):
        with oopp.Cluster() as cluster:
            assert cluster.n_machines == 4
            assert cluster.config.backend == "inline"

    def test_overrides_win(self):
        with oopp.Cluster(n_machines=2, backend="inline",
                          pickle_protocol=4) as cluster:
            assert cluster.config.pickle_protocol == 4
            assert cluster.n_machines == 2

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigError):
            oopp.Cluster(backend="quantum")

    def test_bad_machine_count_rejected(self):
        with pytest.raises(ConfigError):
            oopp.Cluster(n_machines=0)

    def test_config_object_plus_overrides(self):
        cfg = oopp.Config(backend="inline", n_machines=7)
        with oopp.Cluster(config=cfg, n_machines=2) as cluster:
            assert cluster.n_machines == 2


class TestTopology:
    def test_ping_all(self, inline_cluster):
        assert inline_cluster.ping_all() == [0, 1, 2, 3]

    def test_machine_handles(self, inline_cluster):
        machines = inline_cluster.machines
        assert [m.id for m in machines] == [0, 1, 2, 3]
        assert machines[2].ping() == 2
        assert machines[1].stats()["machine"] == 1

    def test_new_on_invalid_machine_rejected(self, inline_cluster):
        with pytest.raises(NoSuchMachineError):
            inline_cluster.new(Echo, machine=17)
        with pytest.raises(NoSuchMachineError):
            inline_cluster.new(Echo, machine=-1)

    def test_stats_counts_objects(self, inline_cluster):
        inline_cluster.new(Echo, machine=1)
        inline_cluster.new(Echo, machine=1)
        stats = inline_cluster.stats()
        assert stats[1]["objects"] == 2
        assert stats[0]["objects"] == 0


class TestCurrentCluster:
    def test_nested_clusters_restore_previous(self, tmp_path):
        with oopp.Cluster(n_machines=1, backend="inline") as outer:
            assert current_cluster() is outer
            with oopp.Cluster(n_machines=1, backend="inline") as inner:
                assert current_cluster() is inner
            assert current_cluster() is outer
        assert current_cluster() is None


class TestShutdown:
    def test_operations_after_shutdown_rejected(self):
        cluster = oopp.Cluster(n_machines=1, backend="inline")
        cluster.shutdown()
        with pytest.raises(ConfigError):
            cluster.new(Echo)

    def test_shutdown_idempotent(self):
        cluster = oopp.Cluster(n_machines=1, backend="inline")
        cluster.shutdown()
        cluster.shutdown()

    def test_destructors_run_at_shutdown(self):
        ran = []

        class Closing:
            def oopp_destructor(self):
                ran.append(True)

        # class must be resolvable; register under module namespace
        import sys

        mod = sys.modules[__name__]
        mod.Closing = Closing
        Closing.__qualname__ = "Closing"
        try:
            with oopp.Cluster(n_machines=1, backend="inline") as cluster:
                cluster.new(Closing, machine=0)
            assert ran == [True]
        finally:
            del mod.Closing

    def test_barrier_on_idle_cluster(self, inline_cluster):
        inline_cluster.barrier()
