"""Protocol introspection (the compiler-generated protocol made visible)."""

from __future__ import annotations

import pytest

import repro as oopp
from repro.errors import RuntimeLayerError
from repro.runtime.protocol import (
    describe_protocol,
    protocol_of,
    validate_remote_class,
)


class Gadget:
    """A sample remote class."""

    def __init__(self, size: int, label: str = "g"):
        self.size = size
        self.label = label

    def poke(self, times: int = 1) -> int:
        """Poke the gadget."""
        return times

    def _internal(self):
        return None

    def __getitem__(self, k):
        return k

    def __len__(self):
        return self.size


class PicklableDefaults:
    """All constructor defaults ship over the wire."""

    def __init__(self, size=4, label="g", weights=(1.0, 2.0)):
        self.size, self.label, self.weights = size, label, weights


class TestDescribe:
    def test_public_methods_listed(self):
        proto = describe_protocol(Gadget)
        assert "poke" in proto.names()
        assert "_internal" not in proto.names()

    def test_constructor_signature(self):
        proto = describe_protocol(Gadget)
        assert "size" in proto.constructor and "label" in proto.constructor

    def test_docs_and_signatures_captured(self):
        proto = describe_protocol(Gadget)
        poke = next(m for m in proto.methods if m.name == "poke")
        assert poke.doc == "Poke the gadget."
        assert "times" in poke.signature

    def test_forwarded_dunders_listed(self):
        proto = describe_protocol(Gadget)
        dunders = [m.name for m in proto.methods if m.kind == "dunder"]
        assert "__getitem__" in dunders and "__len__" in dunders
        assert "__setitem__" not in dunders  # Gadget doesn't define it

    def test_implicit_operations_always_present(self):
        proto = describe_protocol(Gadget)
        implicit = [m.name for m in proto.methods if m.kind == "implicit"]
        assert "__oopp_getattr__" in implicit
        assert "<kernel>.destroy" in implicit

    def test_render_is_readable(self):
        text = describe_protocol(Gadget).render()
        assert "new(machine k) Gadget" in text
        assert "poke" in text and "operators" in text

    def test_non_class_rejected(self):
        with pytest.raises(RuntimeLayerError):
            describe_protocol("not a class")  # type: ignore[arg-type]


class TestProtocolOf:
    def test_from_instance(self):
        assert "poke" in protocol_of(Gadget(1)).names()

    def test_from_proxy_without_network(self, inline_cluster):
        g = inline_cluster.new(oopp.Block, 4, machine=1)
        before = inline_cluster.stats()[1]["calls_served"]
        proto = protocol_of(g)
        after = inline_cluster.stats()[1]["calls_served"]
        assert "sum" in proto.names()
        assert after == before + 1  # only the second stats() call itself

    def test_kernel_pointer_rejected(self, inline_cluster):
        from repro.runtime.proxy import Proxy

        kernel = Proxy(inline_cluster.fabric.kernel_ref(0),
                       inline_cluster.fabric)
        with pytest.raises(RuntimeLayerError, match="class spec"):
            protocol_of(kernel)


class TestValidate:
    def test_clean_class(self):
        assert validate_remote_class(Gadget) == []
        assert validate_remote_class(oopp.PageDevice) == []
        assert validate_remote_class(oopp.Block) == []

    def test_reserved_namespace_collision(self):
        class Bad:
            def __oopp_getattr__(self):
                return None

        warnings = validate_remote_class(Bad)
        assert any("reserved" in w for w in warnings)

    def test_local_class_warns(self):
        class Local:
            pass

        warnings = validate_remote_class(Local)
        assert any("local class" in w for w in warnings)

    def test_attribute_method_shadowing(self):
        class Shadow:
            value: int = 0

            def value(self):  # type: ignore[no-redef] # noqa: F811
                return 1

        warnings = validate_remote_class(Shadow)
        assert any("method stub" in w for w in warnings)


class TestValidateEdgeCases:
    def test_reserved_prefix_collision_flagged(self):
        # type() sidesteps Python's name mangling of __oopp_custom.
        Bad = type("Bad", (), {"__oopp_custom": 1})
        warnings = validate_remote_class(Bad)
        assert any("__oopp_custom" in w and "reserved" in w
                   for w in warnings)

    def test_every_implicit_operation_name_flagged(self):
        from repro.runtime.proxy import (
            GETATTR_METHOD,
            PING_METHOD,
            SETATTR_METHOD,
        )

        for reserved in (GETATTR_METHOD, SETATTR_METHOD, PING_METHOD):
            Bad = type("Bad", (), {reserved: lambda self: None})
            warnings = validate_remote_class(Bad)
            assert any(reserved in w for w in warnings), reserved

    def test_idempotent_registry_attribute_is_sanctioned(self):
        Good = type("Good", (), {
            "__oopp_idempotent__": frozenset({"get"}),
            "get": lambda self: 1,
        })
        assert validate_remote_class(Good) == []

    def test_unpicklable_constructor_default_flagged(self):
        class Bad:
            def __init__(self, callback=lambda x: x):
                self.callback = callback

        warnings = validate_remote_class(Bad)
        assert any("callback" in w and "not picklable" in w
                   for w in warnings)

    def test_picklable_defaults_are_clean(self):
        assert validate_remote_class(PicklableDefaults) == []

    def test_unpicklable_default_names_the_parameter(self):
        class Bad:
            def __init__(self, ok=1, broken=lambda: None, fine="x"):
                pass

        warnings = [w for w in validate_remote_class(Bad)
                    if "not picklable" in w]
        assert len(warnings) == 1 and "broken" in warnings[0]


class TestCallHeaderCache:
    def make(self, maxsize=4):
        from repro.runtime.protocol import CallHeaderCache

        return CallHeaderCache(maxsize=maxsize)

    def test_skeleton_is_a_valid_request_pickle(self):
        import pickle

        cache = self.make()
        skel = cache.skeleton(7, "sum", False, -1)
        kind, fields = pickle.loads(skel)
        assert kind == "req"
        assert fields == {"object_id": 7, "method": "sum",
                          "oneway": False, "caller": -1}

    def test_repeat_call_site_hits(self):
        cache = self.make()
        a = cache.skeleton(1, "m", False, 0)
        b = cache.skeleton(1, "m", False, 0)
        assert a is b
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}

    def test_distinct_call_sites_miss(self):
        cache = self.make()
        cache.skeleton(1, "m", False, 0)
        cache.skeleton(1, "m", True, 0)   # oneway differs
        cache.skeleton(2, "m", False, 0)  # object differs
        cache.skeleton(1, "n", False, 0)  # method differs
        assert cache.stats()["misses"] == 4

    def test_lru_evicts_oldest(self):
        cache = self.make(maxsize=2)
        cache.skeleton(1, "a", False, 0)
        cache.skeleton(2, "b", False, 0)
        cache.skeleton(1, "a", False, 0)  # touch 1 -> 2 is now LRU
        cache.skeleton(3, "c", False, 0)  # evicts 2
        assert len(cache) == 2
        cache.skeleton(2, "b", False, 0)
        assert cache.stats()["misses"] == 4  # 2 was re-pickled

    def test_thread_safety_under_contention(self):
        import threading

        cache = self.make(maxsize=8)
        errors = []

        def hammer(tid):
            try:
                for i in range(300):
                    skel = cache.skeleton(i % 16, "m", False, tid)
                    assert isinstance(skel, bytes)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert len(cache) <= 8
