"""Symbolic object addresses (oop:// URLs)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressSyntaxError
from repro.runtime.naming import (
    ObjectAddress,
    address_for,
    format_address,
    parse_address,
)

SEGMENT = st.from_regex(r"[A-Za-z0-9._-]{1,20}", fullmatch=True)


class TestParse:
    def test_paper_style_address(self):
        addr = parse_address("oop://data-set/PageDevice/34")
        assert addr == ObjectAddress("data-set", "PageDevice", "34")

    def test_format_round_trip(self):
        addr = ObjectAddress("s", "Cls", "name.1")
        assert parse_address(format_address(addr)) == addr

    @given(SEGMENT, SEGMENT, SEGMENT)
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, store, cls, name):
        addr = address_for(store, cls, name)
        assert parse_address(str(addr)) == addr

    @pytest.mark.parametrize("bad", [
        "http://data/set/PageDevice/34",  # wrong scheme
        "oop://only/two",
        "oop://a/b/c/d",
        "oop://",
        "oop://a//c",
        "oop://sp ace/B/c",
        "oop://a/b/c!",
        "",
    ])
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(AddressSyntaxError):
            parse_address(bad)

    def test_non_string_rejected(self):
        with pytest.raises(AddressSyntaxError):
            parse_address(1234)  # type: ignore[arg-type]

    def test_format_validates_segments(self):
        with pytest.raises(AddressSyntaxError):
            format_address(ObjectAddress("ok", "ok", "has/slash"))
