"""Persistence lifecycle across all backends (core paths)."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp


class Notebook:
    def __init__(self):
        self.notes = {}

    def jot(self, key, text):
        self.notes[key] = text
        return len(self.notes)

    def recall(self, key):
        return self.notes.get(key)


class TestLifecycleEverywhere:
    def test_full_cycle(self, any_cluster):
        nb = any_cluster.new(Notebook, machine=1)
        nb.jot("a", "alpha")
        addr = any_cluster.persist(nb, "nb1")
        store = any_cluster.store("data")

        # active lookup
        assert any_cluster.lookup(addr).recall("a") == "alpha"

        # deactivate → old pointer dangles, address survives
        store.deactivate(addr)
        with pytest.raises(oopp.NoSuchObjectError):
            nb.recall("a")
        revived = any_cluster.lookup(addr, machine=2)
        assert revived.recall("a") == "alpha"
        assert oopp.ref_of(revived).machine == 2

        # delete → gone everywhere
        store.delete(addr)
        with pytest.raises(oopp.errors.UnknownAddressError):
            any_cluster.lookup(addr)

    def test_numpy_state(self, any_cluster):
        blk = any_cluster.new_block(128, machine=0)
        blk.write(0, np.arange(128.0))
        addr = any_cluster.persist(blk, "numbers")
        any_cluster.store("data").deactivate(addr)
        revived = any_cluster.lookup(addr, machine=1)
        assert np.allclose(revived.read(), np.arange(128.0))

    def test_page_device_reopens_file(self, any_cluster, tmp_path):
        dev = any_cluster.new(oopp.PageDevice,
                              str(tmp_path / "per.dat"), 4, 32, machine=0)
        dev.write(oopp.Page(32, b"x" * 32), 1)
        addr = any_cluster.persist(dev, "dev1")
        any_cluster.store("data").deactivate(addr)
        revived = any_cluster.lookup(addr, machine=0)
        assert revived.read(1).to_bytes() == b"x" * 32
