"""Automatic loop parallelization (the paper's compiler transformation)."""

from __future__ import annotations

import pytest

import repro as oopp
from repro.errors import GroupError
from repro.runtime.autopar import (
    CallBatch,
    Deferred,
    DeferredError,
    active_batch,
    autoparallel,
)


class Device:
    def __init__(self, did):
        self.did = did

    def read(self, addr):
        return (self.did, addr)

    def fail(self):
        raise RuntimeError(f"device {self.did} broke")


class TestBasics:
    def test_calls_inside_block_return_deferreds(self, inline_cluster):
        devices = inline_cluster.new_group(Device, 4, argfn=lambda i: (i,))
        with autoparallel() as batch:
            results = [d.read(10 + i) for i, d in enumerate(devices)]
            assert all(isinstance(r, Deferred) for r in results)
        assert len(batch) == 4
        assert [r.value for r in results] == [(i, 10 + i) for i in range(4)]

    def test_block_exit_is_synchronization_point(self, inline_cluster):
        d = inline_cluster.new(Device, 1, machine=1)
        with autoparallel() as batch:
            d.read(0)
            d.read(1)
        assert batch.pending == 0

    def test_outside_block_calls_are_sequential(self, inline_cluster):
        d = inline_cluster.new(Device, 1, machine=1)
        assert d.read(5) == (1, 5)  # plain value, no Deferred
        assert active_batch() is None

    def test_value_inside_block_forces_dependency(self, inline_cluster):
        d = inline_cluster.new(Device, 2, machine=1)
        with autoparallel():
            first = d.read(1)
            forced = first.value  # loop-carried dependency escape hatch
            second = d.read(forced[1] + 1)
        assert forced == (2, 1)
        assert second.value == (2, 2)

    def test_nesting_binds_to_innermost(self, inline_cluster):
        d = inline_cluster.new(Device, 3, machine=0)
        with autoparallel() as outer:
            d.read(0)
            with autoparallel() as inner:
                d.read(1)
                assert active_batch() is inner
            assert len(inner) == 1
            assert active_batch() is outer
        assert len(outer) == 1


class TestErrorSurfacing:
    def test_single_failure_raises_original_at_exit(self, inline_cluster):
        d = inline_cluster.new(Device, 1, machine=1)
        with pytest.raises(RuntimeError, match="device 1 broke"):
            with autoparallel():
                d.fail()

    def test_multiple_failures_aggregate(self, inline_cluster):
        devices = inline_cluster.new_group(Device, 3, argfn=lambda i: (i,))
        with pytest.raises(GroupError) as exc_info:
            with autoparallel():
                for d in devices:
                    d.fail()
        assert len(exc_info.value.failures) == 3

    def test_body_exception_wins_over_pending_calls(self, inline_cluster):
        d = inline_cluster.new(Device, 1, machine=1)
        with pytest.raises(ValueError, match="body"):
            with autoparallel():
                d.read(0)
                raise ValueError("body")

    def test_pending_deferred_as_argument_rejected(self, inline_cluster):
        a = inline_cluster.new(Device, 1, machine=1)
        b = inline_cluster.new(Device, 2, machine=2)
        # inline futures resolve eagerly, so fabricate a pending one
        from repro.runtime.futures import RemoteFuture

        with autoparallel() as batch:
            pending = Deferred(RemoteFuture(), batch)
            with pytest.raises(DeferredError, match="pending Deferred"):
                b.read(pending)
            batch._futures.clear()  # don't wait for the fabricated future

    def test_done_deferred_may_not_be_pickled_anyway(self, inline_cluster):
        import pickle

        d = inline_cluster.new(Device, 1, machine=1)
        with autoparallel():
            r = d.read(0)
        with pytest.raises(DeferredError):
            pickle.dumps(r)


class TestBatchObject:
    def test_add_after_wait_rejected(self):
        from repro.runtime.futures import completed_future

        batch = CallBatch()
        batch.add(completed_future(1))
        batch.wait()
        with pytest.raises(DeferredError):
            batch.add(completed_future(2))

    def test_deferred_repr_and_result(self, inline_cluster):
        d = inline_cluster.new(Device, 9, machine=0)
        with autoparallel():
            r = d.read(1)
        assert "done" in repr(r)
        assert r.result() == (9, 1)


class TestOnSimBackend:
    def test_autoparallel_matches_group_invoke_timing(self, sim_cluster):
        """The transformed loop costs what the explicit split loop costs."""
        eng = sim_cluster.fabric.engine
        devices = sim_cluster.new_group(Device, 4, argfn=lambda i: (i,))

        t0 = eng.now
        seq = [d.read(0) for d in devices]
        t_seq = eng.now - t0

        t0 = eng.now
        with autoparallel():
            par = [d.read(0) for d in devices]
        t_par = eng.now - t0

        assert [p.value for p in par] == seq
        assert t_par < t_seq, (t_seq, t_par)

    def test_paper_loop_form(self, sim_cluster):
        """The §4 listing, verbatim shape."""
        N = 4
        device = sim_cluster.new_group(Device, N, argfn=lambda i: (i,))
        page_address = [3, 1, 2, 0]
        with autoparallel():
            buffer = [device[i].read(page_address[i]) for i in range(N)]
        assert [b.value for b in buffer] == \
            [(i, page_address[i]) for i in range(N)]
