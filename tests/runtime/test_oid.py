"""Object refs and class spec resolution."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import RuntimeLayerError
from repro.runtime.oid import ObjectRef, class_spec, resolve_class


class Sample:
    class Nested:
        pass


class TestObjectRef:
    def test_value_semantics(self):
        a = ObjectRef(machine=1, oid=2, spec=("m", "C"))
        b = ObjectRef(machine=1, oid=2, spec=("m", "C"))
        assert a == b and hash(a) == hash(b)

    def test_pickles(self):
        ref = ObjectRef(machine=3, oid=9, spec=("mod", "Cls"))
        assert pickle.loads(pickle.dumps(ref)) == ref

    def test_frozen(self):
        ref = ObjectRef(machine=0, oid=1)
        with pytest.raises(AttributeError):
            ref.machine = 5  # type: ignore[misc]


class TestClassSpec:
    def test_spec_round_trip(self):
        assert resolve_class(class_spec(Sample)) is Sample

    def test_nested_class_round_trip(self):
        assert resolve_class(class_spec(Sample.Nested)) is Sample.Nested

    def test_stdlib_class_by_import(self):
        assert resolve_class(("collections", "OrderedDict")).__name__ == \
            "OrderedDict"

    def test_unknown_module_rejected(self):
        with pytest.raises(RuntimeLayerError, match="cannot resolve"):
            resolve_class(("no_such_module_xyz", "C"))

    def test_unknown_attribute_rejected(self):
        with pytest.raises(RuntimeLayerError, match="no attribute"):
            resolve_class((__name__, "Missing"))

    def test_non_class_rejected(self):
        with pytest.raises(RuntimeLayerError, match="not a class"):
            resolve_class(("math", "pi"))

    def test_half_initialized_module_reimported(self, monkeypatch):
        """A module another thread is mid-import must not be trusted:
        the sys.modules fast path would expose a namespace missing the
        class (seen as concurrent creates raced in a tcp daemon), so
        resolve_class must fall through to import_module and wait."""
        import importlib
        import sys
        import types

        partial = types.ModuleType("fake_mod_under_import")
        partial.__spec__ = importlib.machinery.ModuleSpec(
            "fake_mod_under_import", loader=None)
        partial.__spec__._initializing = True     # class stmt not run yet
        monkeypatch.setitem(sys.modules, "fake_mod_under_import", partial)

        finished = types.ModuleType("fake_mod_under_import")
        finished.Worker = Sample
        monkeypatch.setattr(importlib, "import_module",
                            lambda name: finished)
        assert resolve_class(("fake_mod_under_import", "Worker")) is Sample
