"""Cluster-level publication: broadcast semantics, auto-publish, the
memoized ``new_group`` fan-out, and cross-backend conformance.

The wire-level contract (payload crosses the socket at most once per
host) is asserted here for a small payload; the full-size version with
the >= 5x speedup gate lives in ``repro.bench.a06_publication``.
"""

from __future__ import annotations

import gc

import pytest

import repro as oopp
from repro.check.conformance import conformance
from repro.obs.metrics import counters
from repro.transport import pub, shm


@pytest.fixture(autouse=True)
def no_shm_leaks():
    before = set(shm.host_shm_names())
    yield
    pub.registry().shutdown()
    gc.collect()
    shm._reclaim_exported()
    leaked = set(shm.host_shm_names()) - before
    assert leaked == set(), f"leaked shm segments: {leaked}"


class Model:
    """A published read-only blob (custom class: by-value works too)."""

    def __init__(self, blob: bytes) -> None:
        self.blob = blob


class Checker:
    """Remote object summarizing whatever payload it is handed."""

    def digest(self, payload) -> tuple[int, int]:
        blob = payload.blob if isinstance(payload, Model) else payload
        return len(blob), sum(blob[:64])


class Keeper:
    """Remote object constructed with a payload (fan-out target)."""

    def __init__(self, tag, payload=b"") -> None:
        self.tag = tag
        self.payload = payload

    def describe(self) -> tuple:
        blob = getattr(self.payload, "blob", self.payload)
        return self.tag, len(blob)

    def stamp(self, extra) -> tuple:
        self.tag = (self.tag, extra)
        return self.tag


class CountingArg:
    """Counts how many times its state is pickled (memoization gauge)."""

    pickles = 0

    def __init__(self, blob: bytes) -> None:
        self.blob = blob

    def __getstate__(self):
        type(self).pickles += 1
        return {"blob": self.blob}

    def __setstate__(self, state):
        self.blob = state["blob"]


BLOB = bytes(range(256)) * 512  # 128 KiB


class TestExplicitPublish:
    def test_broadcast_handle(self, any_cluster):
        model = Model(BLOB)
        handle = any_cluster.publish(model)
        group = any_cluster.new_group(Checker, 3)
        results = group.invoke("digest", handle)
        assert results == [(len(BLOB), sum(BLOB[:64]))] * 3

    def test_broadcast_by_value(self, any_cluster):
        # The published *object* in the argument list substitutes too.
        model = Model(BLOB)
        any_cluster.publish(model)
        group = any_cluster.new_group(Checker, 3)
        assert group.invoke("digest", model) == \
            [(len(BLOB), sum(BLOB[:64]))] * 3

    def test_metrics_surface_pub_counters(self, inline_cluster):
        model = Model(BLOB)
        handle = inline_cluster.publish(model)
        group = inline_cluster.new_group(Checker, 4)
        group.invoke("digest", handle)
        m = inline_cluster.metrics()["driver"]["pub"]
        assert m["published"] >= 1
        assert m["pinned_bytes"] >= len(BLOB)
        assert m["attach_misses"] >= 1
        assert m["attach_misses"] + m.get("attach_hits", 0) >= 4

    def test_mp_payload_crosses_socket_once_per_host(self, tmp_path):
        # bytes pickle in-band, so without publication the broadcast
        # would push ~3x the payload through the socket.  Published, the
        # wire carries three ~100-byte descriptors.
        payload = Model(bytes(1 << 21))  # 2 MiB
        with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=60.0,
                          storage_root=str(tmp_path / "r")) as cluster:
            handle = cluster.publish(payload)
            group = cluster.new_group(Checker, 3)
            before = cluster.fabric.traffic()["bytes_out"]
            results = group.invoke("digest", handle)
            delta = cluster.fabric.traffic()["bytes_out"] - before
            assert results == [(1 << 21, 0)] * 3
            assert delta < (1 << 20), \
                f"broadcast pushed {delta} bytes through the socket"

    def test_unpublish_then_call_is_retryable_error(self, inline_cluster):
        model = Model(BLOB)
        handle = inline_cluster.publish(model)
        group = inline_cluster.new_group(Checker, 2)
        group.invoke("digest", handle)
        handle.unpublish()
        fresh = inline_cluster.new_group(Checker, 2)
        with pytest.raises(oopp.errors.PublicationError):
            fresh[0].digest(handle)


class TestAutoPublish:
    CFG = dict(wire=oopp.WireConfig(
        pub=oopp.PubConfig(publish_threshold_bytes=64 * 1024)))

    def test_group_broadcast_auto_publishes(self, tmp_path):
        with oopp.Cluster(n_machines=3, backend="inline",
                          storage_root=str(tmp_path / "r"),
                          **self.CFG) as cluster:
            base = counters().get("pub.published")
            group = cluster.new_group(Checker, 3)
            results = group.invoke("digest", Model(BLOB))
            assert results == [(len(BLOB), sum(BLOB[:64]))] * 3
            assert counters().get("pub.published") == base + 1

    def test_small_arguments_not_published(self, tmp_path):
        with oopp.Cluster(n_machines=3, backend="inline",
                          storage_root=str(tmp_path / "r"),
                          **self.CFG) as cluster:
            base = counters().get("pub.published")
            group = cluster.new_group(Checker, 3)
            group.invoke("digest", b"tiny")
            assert counters().get("pub.published") == base

    def test_new_group_shared_large_arg_published_once(self, tmp_path):
        with oopp.Cluster(n_machines=3, backend="inline",
                          storage_root=str(tmp_path / "r"),
                          **self.CFG) as cluster:
            base = counters().get("pub.published")
            model = Model(BLOB)
            group = cluster.new_group(Keeper, 6,
                                      argfn=lambda i: (i, model))
            assert counters().get("pub.published") == base + 1
            assert group.invoke("describe") == \
                [(i, len(BLOB)) for i in range(6)]

    def test_off_by_default(self, inline_cluster):
        base = counters().get("pub.published")
        group = inline_cluster.new_group(Checker, 3)
        group.invoke("digest", Model(BLOB))
        assert counters().get("pub.published") == base

    def test_requires_protocol5(self, tmp_path):
        with pytest.raises(oopp.errors.ConfigError, match="pickle_protocol"):
            oopp.Config(pickle_protocol=4, **self.CFG).validate()


class TestNewGroupMemoization:
    def test_identical_args_pickled_once(self, inline_cluster):
        CountingArg.pickles = 0
        arg = CountingArg(BLOB)
        group = inline_cluster.new_group(Keeper, 8, "shared", arg)
        assert CountingArg.pickles == 1, \
            f"shared fan-out args pickled {CountingArg.pickles}x"
        assert group.invoke("describe") == [("shared", len(BLOB))] * 8

    def test_members_stay_isolated(self, inline_cluster):
        # One frozen pickle, but each member decodes its own copy:
        # mutating one member's state never leaks into a sibling.
        group = inline_cluster.new_group(Keeper, 4, "t", CountingArg(b"x"))
        assert group[0].stamp("a") == ("t", "a")
        assert group[1].describe() == ("t", 1)

    def test_distinct_args_still_work(self, inline_cluster):
        CountingArg.pickles = 0
        group = inline_cluster.new_group(
            Keeper, 4, argfn=lambda i: (i, CountingArg(bytes([i]))))
        assert group.invoke("describe") == [(i, 1) for i in range(4)]
        # No memoization possible; each distinct argset pickled once.
        assert CountingArg.pickles == 4

    def test_memoized_fanout_on_every_backend(self, any_cluster):
        group = any_cluster.new_group(Keeper, 6, "same", CountingArg(b"y"))
        assert group.invoke("describe") == [("same", 1)] * 6

    def test_no_copy_inline_mode_unaffected(self, tmp_path):
        with oopp.Cluster(n_machines=2, backend="inline",
                          inline_copy=False,
                          storage_root=str(tmp_path / "r")) as cluster:
            CountingArg.pickles = 0
            group = cluster.new_group(Keeper, 4, "nc", CountingArg(b"z"))
            assert CountingArg.pickles == 0  # no serializer round trip
            assert group.invoke("describe") == [("nc", 1)] * 4


def _broadcast_program(cluster) -> list:
    model = Model(bytes(range(200)) * 1000)
    handle = cluster.publish(model)
    group = cluster.new_group(Checker, 3)
    first = group.invoke("digest", handle)
    second = group.invoke("digest", model)
    handle.unpublish()
    return [first, second]


class TestConformance:
    def test_publication_conformant_across_backends(self, tmp_path):
        report = conformance(_broadcast_program,
                             storage_root=str(tmp_path / "r"))
        assert report.consistent, report.summary()

    def test_pub_on_off_digests_match(self, tmp_path):
        # The same program must produce the same digest whether the
        # broadcast path pins publications or ships N pickles.
        def program(cluster):
            group = cluster.new_group(Checker, 3)
            return group.invoke("digest", Model(BLOB))

        on = conformance(program, storage_root=str(tmp_path / "on"),
                         wire=oopp.WireConfig(
                             pub=oopp.PubConfig(
                                 publish_threshold_bytes=1024)))
        off = conformance(program, storage_root=str(tmp_path / "off"))
        assert on.consistent, on.summary()
        assert off.consistent, off.summary()
        assert ({o.digest for o in on.outcomes}
                == {o.digest for o in off.outcomes})
