"""ObjectTable migration gate: freeze, forward, abort — vs destroy.

Tier-1 regression coverage for the table-level half of live migration
(the protocol above it lives in ``tests/migrate/``): the freeze drains
in-flight calls, parked lookups re-resolve when the move commits or
aborts, the bounded forwarding buffer sheds instead of queueing without
limit, and — the race this file exists for — a destroy landing inside
the freeze window parks and re-resolves rather than slipping between
the drain and the detach to execute against a corpse.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    NoSuchObjectError,
    ObjectDestroyedError,
    ObjectMovedError,
    RuntimeLayerError,
    ServerOverloadedError,
)
from repro.runtime.oid import ObjectRef
from repro.runtime.server import ObjectTable


class Cell:
    def __init__(self):
        self.n = 0


def _ref(machine=1, oid=77):
    return ObjectRef(machine=machine, oid=oid, spec=None)


def _start(fn):
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    return t


class TestFreezeLifecycle:
    def test_begin_detaches_and_finish_forwards(self):
        table = ObjectTable()
        table.machine_id = 0
        cell = Cell()
        oid = table.add(cell)
        assert table.begin_migrate(oid) is cell
        table.finish_migrate(oid, _ref())
        with pytest.raises(ObjectMovedError) as excinfo:
            table.get(oid)
        assert excinfo.value.new_machine == 1
        assert excinfo.value.new_oid == 77
        assert table.forward_of(oid) == _ref()
        assert oid not in table.oids()

    def test_abort_reinstalls_in_place(self):
        table = ObjectTable()
        cell = Cell()
        oid = table.add(cell)
        instance = table.begin_migrate(oid)
        table.abort_migrate(oid, instance)
        assert table.get(oid) is cell
        assert table.forward_of(oid) is None
        # the reinstalled object is fully serviceable:
        assert table.checkout(oid) is cell
        table.checkin(oid)

    def test_begin_refuses_unknown_and_double_migrate(self):
        table = ObjectTable()
        oid = table.add(Cell())
        with pytest.raises(NoSuchObjectError):
            table.begin_migrate(oid + 1)
        table.begin_migrate(oid)
        with pytest.raises(RuntimeLayerError):
            table.begin_migrate(oid)

    def test_finish_and_abort_require_a_migration(self):
        table = ObjectTable()
        oid = table.add(Cell())
        with pytest.raises(RuntimeLayerError):
            table.finish_migrate(oid, _ref())
        with pytest.raises(RuntimeLayerError):
            table.abort_migrate(oid, Cell())

    def test_begin_drains_inflight_calls_first(self):
        table = ObjectTable()
        oid = table.add(Cell())
        table.checkout(oid)  # an in-flight call
        frozen = threading.Event()

        def migrate():
            table.begin_migrate(oid)
            frozen.set()

        thread = _start(migrate)
        time.sleep(0.1)
        assert not frozen.is_set()  # the drain must wait for us
        table.checkin(oid)
        thread.join(timeout=5.0)
        assert frozen.is_set()


class TestParkedLookups:
    def test_checkout_parks_until_commit_then_forwards(self):
        table = ObjectTable()
        oid = table.add(Cell())
        table.begin_migrate(oid)
        outcome = {}

        def caller():
            try:
                table.checkout(oid)
            except ObjectMovedError as exc:
                outcome["moved_to"] = exc.new_machine

        thread = _start(caller)
        time.sleep(0.1)
        assert not outcome  # parked, not failed
        table.finish_migrate(oid, _ref(machine=2))
        thread.join(timeout=5.0)
        assert outcome == {"moved_to": 2}

    def test_checkout_parks_until_abort_then_executes(self):
        table = ObjectTable()
        cell = Cell()
        oid = table.add(cell)
        instance = table.begin_migrate(oid)
        outcome = {}

        def caller():
            outcome["instance"] = table.checkout(oid)
            table.checkin(oid)

        thread = _start(caller)
        time.sleep(0.1)
        table.abort_migrate(oid, instance)
        thread.join(timeout=5.0)
        assert outcome["instance"] is cell

    def test_forward_buffer_sheds_beyond_bound(self):
        table = ObjectTable(forward_buffer=2)
        oid = table.add(Cell())
        table.begin_migrate(oid)
        parked = []
        threads = [_start(lambda: parked.append(
            pytest.raises(ObjectMovedError, table.checkout, oid)))
            for _ in range(2)]
        deadline = time.time() + 5.0
        while time.time() < deadline \
                and table._forward_waiters.get(oid, 0) < 2:
            time.sleep(0.01)
        # buffer full: the next arrival is shed, retryably, right away
        with pytest.raises(ServerOverloadedError) as excinfo:
            table.checkout(oid)
        assert excinfo.value.depth == 2
        table.finish_migrate(oid, _ref())
        for t in threads:
            t.join(timeout=5.0)
        assert len(parked) == 2


class TestDestroyVsMigrate:
    """The regression this file gates: destroy inside the freeze window."""

    def test_destroy_during_freeze_parks_then_follows_forward(self):
        table = ObjectTable()
        table.machine_id = 0
        oid = table.add(Cell())
        table.begin_migrate(oid)
        outcome = {}

        def destroyer():
            try:
                table.remove(oid)
                outcome["removed"] = True
            except ObjectMovedError as exc:
                outcome["moved_to"] = exc.new_machine

        thread = _start(destroyer)
        time.sleep(0.1)
        assert not outcome  # parked in the freeze, not racing the detach
        table.finish_migrate(oid, _ref(machine=2))
        thread.join(timeout=5.0)
        # the destroy re-resolves to the new home instead of killing a
        # corpse (the fabric re-issues it there via the forward):
        assert outcome == {"moved_to": 2}
        assert table.forward_of(oid) is not None

    def test_destroy_during_freeze_proceeds_after_abort(self):
        table = ObjectTable()
        cell = Cell()
        oid = table.add(cell)
        instance = table.begin_migrate(oid)
        outcome = {}

        def destroyer():
            outcome["instance"] = table.remove(oid)

        thread = _start(destroyer)
        time.sleep(0.1)
        table.abort_migrate(oid, instance)
        thread.join(timeout=5.0)
        assert outcome["instance"] is cell
        with pytest.raises(ObjectDestroyedError):
            table.get(oid)

    def test_migrate_refused_while_destroy_drains(self):
        table = ObjectTable()
        oid = table.add(Cell())
        table.checkout(oid)  # keeps the destroy draining
        started = threading.Event()

        def destroyer():
            started.set()
            table.remove(oid)

        thread = _start(destroyer)
        started.wait(5.0)
        time.sleep(0.1)  # destroyer is now parked in the drain
        with pytest.raises(RuntimeLayerError):
            table.begin_migrate(oid)
        table.checkin(oid)
        thread.join(timeout=5.0)
        with pytest.raises(ObjectDestroyedError):
            table.get(oid)
