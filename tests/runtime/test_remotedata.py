"""Remote primitive data: the Block class and new_block."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.runtime.remotedata import Block


class TestBlockLocal:
    def test_construction_fill(self):
        b = Block(5, "int64", fill=7)
        assert b[0] == 7 and len(b) == 5

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Block(-1)

    def test_scalar_get_set(self):
        b = Block(10)
        b[3] = 2.5
        assert b[3] == 2.5
        assert isinstance(b[3], float)

    def test_slice_get_returns_copy(self):
        b = Block(10)
        s = b[2:5]
        s[:] = 99
        assert b[2] == 0.0

    def test_read_write_bulk(self):
        b = Block(10)
        assert b.write(2, np.arange(3.0)) == 3
        assert np.allclose(b.read(2, 5), [0, 1, 2])
        assert np.allclose(b.read(), [0, 0, 0, 1, 2, 0, 0, 0, 0, 0])

    def test_reductions(self):
        b = Block(4)
        b.write(0, np.array([1.0, -2.0, 3.0, 0.5]))
        assert b.sum() == 2.5
        assert b.min() == -2.0
        assert b.max() == 3.0

    def test_linear_algebra(self):
        b = Block(3, fill=1)
        b.scale(2.0)
        b.axpy(3.0, np.array([1.0, 0.0, 1.0]))
        assert np.allclose(b.read(), [5, 2, 5])
        assert b.dot(np.ones(3)) == 12.0

    def test_contains(self):
        b = Block(3)
        b[1] = 4.0
        assert 4.0 in b
        assert 9.0 not in b

    def test_dtype_and_nbytes(self):
        b = Block(4, "float32")
        assert b.dtype_name() == "float32"
        assert b.nbytes() == 16

    def test_persistence_state(self):
        b = Block(4, fill=3)
        b2 = Block.__new__(Block)
        b2.__setstate__(b.__getstate__())
        assert np.allclose(b2.read(), 3.0)


class TestBlockRemote:
    def test_paper_listing_semantics(self, any_cluster):
        # double * data = new(machine 2) double[1024];
        data = any_cluster.new_block(1024, machine=2)
        # data[7] = 3.1415;
        data[7] = 3.1415
        # double x = data[2];
        x = data[2]
        assert x == 0.0
        assert data[7] == 3.1415

    def test_bulk_round_trip(self, any_cluster):
        data = any_cluster.new_block(256, machine=1)
        payload = np.linspace(0, 1, 100)
        data.write(50, payload)
        assert np.allclose(data.read(50, 150), payload)

    def test_remote_reduction(self, any_cluster):
        data = any_cluster.new_block(100, machine=2, fill=2)
        assert data.sum() == 200.0

    def test_shared_access_from_multiple_clients(self, inline_cluster):
        # §2's shared-memory sketch: N computing processes given the
        # same data pointer.
        data = inline_cluster.new_block(8, machine=3)
        group = inline_cluster.new_group(_SharedWriter, 3,
                                         argfn=lambda i: (i,))
        group.invoke("write_slot", data)
        assert np.allclose(data.read(0, 3), [0, 1, 2])


class _SharedWriter:
    def __init__(self, wid):
        self.wid = wid

    def write_slot(self, data):
        data[self.wid] = float(self.wid)
        return True
