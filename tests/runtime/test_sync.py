"""Synchronization objects: Rendezvous, Latch, Mailbox."""

from __future__ import annotations

import threading

import pytest

from repro.runtime.sync import Latch, Mailbox, Rendezvous


class TestRendezvous:
    def test_single_party_never_blocks(self):
        r = Rendezvous(1)
        assert r.arrive() == 0
        assert r.arrive() == 1  # generations advance

    def test_n_parties_meet(self):
        r = Rendezvous(3)
        results = []

        def party():
            results.append(r.arrive(timeout=5))

        threads = [threading.Thread(target=party) for _ in range(2)]
        for t in threads:
            t.start()
        assert r.waiting() <= 2
        results.append(r.arrive(timeout=5))
        for t in threads:
            t.join(timeout=5)
        assert results == [0, 0, 0]

    def test_reusable_generations(self):
        r = Rendezvous(2)
        gens = []

        def party():
            gens.append(r.arrive(timeout=5))
            gens.append(r.arrive(timeout=5))

        t = threading.Thread(target=party)
        t.start()
        r.arrive(timeout=5)
        r.arrive(timeout=5)
        t.join(timeout=5)
        assert sorted(gens) == [0, 1]

    def test_timeout(self):
        r = Rendezvous(2)
        with pytest.raises(TimeoutError):
            r.arrive(timeout=0.02)

    def test_bad_party_count(self):
        with pytest.raises(ValueError):
            Rendezvous(0)


class TestLatch:
    def test_count_down_to_zero_releases(self):
        latch = Latch(2)
        assert not latch.wait(timeout=0.01)
        latch.count_down()
        assert latch.remaining() == 1
        latch.count_down()
        assert latch.wait(timeout=1)

    def test_zero_latch_open_immediately(self):
        assert Latch(0).wait(timeout=0.01)

    def test_count_never_goes_negative(self):
        latch = Latch(1)
        latch.count_down(5)
        assert latch.remaining() == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Latch(-1)


class TestMailbox:
    def test_put_take(self):
        mb = Mailbox()
        mb.put("k", 1)
        assert mb.take("k") == 1
        assert len(mb) == 0

    def test_take_blocks_until_put(self):
        mb = Mailbox()
        threading.Timer(0.05, lambda: mb.put("x", "late")).start()
        assert mb.take("x", timeout=5) == "late"

    def test_fifo_per_key(self):
        mb = Mailbox()
        mb.put("k", 1)
        mb.put("k", 2)
        assert mb.take("k") == 1
        assert mb.take("k") == 2

    def test_keys_independent(self):
        mb = Mailbox()
        mb.put(("a", 1), "x")
        mb.put(("b", 2), "y")
        assert mb.take(("b", 2)) == "y"
        assert mb.peek_keys() == [("a", 1)]

    def test_take_timeout(self):
        mb = Mailbox()
        with pytest.raises(TimeoutError):
            mb.take("never", timeout=0.02)
