"""Object groups: pipelined invoke, per-member args, barrier, errors."""

from __future__ import annotations

import pytest

import repro as oopp
from repro.errors import GroupError
from repro.runtime.group import ObjectGroup


class Worker:
    def __init__(self, wid=0):
        self.wid = wid
        self.calls = 0

    def whoami(self):
        self.calls += 1
        return self.wid

    def add(self, a, b=0):
        return self.wid + a + b

    def fail_if_odd(self):
        if self.wid % 2:
            raise RuntimeError(f"worker {self.wid} is odd")
        return self.wid


class TestConstruction:
    def test_empty_group_rejected(self):
        with pytest.raises(GroupError):
            ObjectGroup([])

    def test_round_robin_placement(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 8, argfn=lambda i: (i,))
        machines = [oopp.ref_of(p).machine for p in g]
        assert machines == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_explicit_machines(self, inline_cluster):
        g = inline_cluster.new_group(Worker, machines=[2, 2, 1])
        assert [oopp.ref_of(p).machine for p in g] == [2, 2, 1]

    def test_count_machines_mismatch_rejected(self, inline_cluster):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            inline_cluster.new_group(Worker, 5, machines=[0, 1])

    def test_slicing_returns_group(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 4, argfn=lambda i: (i,))
        sub = g[1:3]
        assert isinstance(sub, ObjectGroup) and len(sub) == 2
        assert sub.invoke("whoami") == [1, 2]


class TestInvocation:
    def test_invoke_shared_args(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 3, argfn=lambda i: (i,))
        assert g.invoke("add", 10, b=100) == [110, 111, 112]

    def test_invoke_each(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 3, argfn=lambda i: (i,))
        assert g.invoke_each("add", [(1,), (2,), (3,)]) == [1, 3, 5]

    def test_invoke_each_length_mismatch(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 3)
        with pytest.raises(GroupError):
            g.invoke_each("add", [(1,)])

    def test_invoke_indexed(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 3, argfn=lambda i: (i,))
        assert g.invoke_indexed("add", lambda i: (i * 10,)) == [0, 11, 22]

    def test_sequential_matches_pipelined(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 4, argfn=lambda i: (i,))
        assert g.invoke_sequential("whoami") == g.invoke("whoami")

    def test_single_failure_propagates_original(self, inline_cluster):
        g = inline_cluster.new_group(Worker, machines=[0, 1],
                                     argfn=lambda i: (2 * i,))
        # only worker with wid 2 exists... make exactly one odd member
        g2 = inline_cluster.new_group(Worker, machines=[0, 1],
                                      argfn=lambda i: (i,))
        with pytest.raises(RuntimeError, match="worker 1 is odd"):
            g2.invoke("fail_if_odd")
        assert g.invoke("fail_if_odd") == [0, 2]

    def test_multiple_failures_aggregate(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 4, argfn=lambda i: (i,))
        with pytest.raises(GroupError) as exc_info:
            g.invoke("fail_if_odd")
        assert set(exc_info.value.failures) == {1, 3}


class TestLifecycle:
    def test_barrier_noop_on_idle_group(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 4)
        g.barrier()

    def test_destroy_all_members(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 4)
        g.destroy()
        with pytest.raises(oopp.NoSuchObjectError):
            g[0].whoami()

    def test_double_destroy_aggregates_errors(self, inline_cluster):
        g = inline_cluster.new_group(Worker, 3)
        g.destroy()
        with pytest.raises(GroupError):
            g.destroy()
