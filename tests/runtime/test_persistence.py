"""Persistent processes: the §5 lifecycle on every backend."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.errors import (
    NotPersistentError,
    PersistenceError,
    UnknownAddressError,
)


class Journal:
    """A tiny stateful object with pickle-friendly state."""

    def __init__(self):
        self.entries = []

    def append(self, item):
        self.entries.append(item)
        return len(self.entries)

    def all(self):
        return list(self.entries)


class TestLifecycle:
    def test_persist_and_lookup_while_active(self, inline_cluster):
        j = inline_cluster.new(Journal, machine=1)
        j.append("a")
        addr = inline_cluster.persist(j, "log1")
        assert str(addr) == "oop://data/Journal/log1"
        again = inline_cluster.lookup(addr)
        assert again == j
        assert again.all() == ["a"]

    def test_deactivate_then_reactivate_preserves_state(self, inline_cluster):
        j = inline_cluster.new(Journal, machine=1)
        j.append("x")
        j.append("y")
        addr = inline_cluster.persist(j, "log2")
        store = inline_cluster.store("data")
        store.deactivate(addr)
        # the old pointer dangles — the process was terminated
        with pytest.raises(oopp.NoSuchObjectError):
            j.all()
        revived = inline_cluster.lookup(addr, machine=3)
        assert revived.all() == ["x", "y"]
        assert oopp.ref_of(revived).machine == 3

    def test_reactivation_machine_conflict_rejected(self, inline_cluster):
        j = inline_cluster.new(Journal, machine=1)
        addr = inline_cluster.persist(j, "log3")
        with pytest.raises(PersistenceError, match="active on machine 1"):
            inline_cluster.lookup(addr, machine=2)

    def test_checkpoint_refreshes_snapshot(self, inline_cluster):
        j = inline_cluster.new(Journal, machine=0)
        addr = inline_cluster.persist(j, "log4")
        j.append("after-persist")
        store = inline_cluster.store("data")
        store.checkpoint(addr)
        store.deactivate(addr)
        assert inline_cluster.lookup(addr).all() == ["after-persist"]

    def test_stale_snapshot_without_checkpoint(self, inline_cluster):
        # Documents the checkpointing contract: state mutated after the
        # last checkpoint is lost on deactivate-less crash recovery, but
        # deactivate() itself always snapshots fresh state.
        j = inline_cluster.new(Journal, machine=0)
        addr = inline_cluster.persist(j, "log5")
        j.append("later")
        inline_cluster.store("data").deactivate(addr)
        assert inline_cluster.lookup(addr).all() == ["later"]

    def test_delete_destroys_process_and_snapshot(self, inline_cluster):
        j = inline_cluster.new(Journal, machine=0)
        addr = inline_cluster.persist(j, "log6")
        store = inline_cluster.store("data")
        store.delete(addr)
        with pytest.raises(oopp.NoSuchObjectError):
            j.all()
        with pytest.raises(UnknownAddressError):
            inline_cluster.lookup(addr)

    def test_delete_unknown_address_rejected(self, inline_cluster):
        store = inline_cluster.store("data")
        with pytest.raises(UnknownAddressError):
            store.delete("oop://data/Journal/never-existed")

    def test_deactivate_requires_active(self, inline_cluster):
        store = inline_cluster.store("data")
        with pytest.raises(NotPersistentError):
            store.deactivate("oop://data/Journal/ghost")

    def test_lookup_unknown_address(self, inline_cluster):
        with pytest.raises(UnknownAddressError):
            inline_cluster.lookup("oop://data/Journal/nope")


class TestStores:
    def test_addresses_enumeration(self, inline_cluster):
        store = inline_cluster.store("data")
        j1 = inline_cluster.new(Journal, machine=0)
        j2 = inline_cluster.new(Journal, machine=1)
        a1 = store.persist(j1, "one")
        a2 = store.persist(j2, "two")
        assert set(store.addresses()) == {a1, a2}

    def test_exists_and_is_active(self, inline_cluster):
        store = inline_cluster.store("data")
        j = inline_cluster.new(Journal, machine=0)
        addr = store.persist(j, "here")
        assert store.exists(addr) and store.is_active(addr)
        store.deactivate(addr)
        assert store.exists(addr) and not store.is_active(addr)
        assert not store.exists("oop://data/Journal/elsewhere")

    def test_store_name_mismatch_rejected(self, inline_cluster):
        store = inline_cluster.store("data")
        with pytest.raises(PersistenceError, match="belongs to store"):
            store.activate("oop://otherstore/Journal/x")

    def test_separate_stores_are_disjoint(self, inline_cluster):
        j = inline_cluster.new(Journal, machine=0)
        inline_cluster.persist(j, "n", store="alpha")
        assert inline_cluster.store("alpha").addresses()
        assert not inline_cluster.store("beta").addresses()


class TestAcrossClusterRestart:
    def test_snapshots_survive_cluster_shutdown(self, tmp_path):
        root = str(tmp_path / "persistent-root")
        with oopp.Cluster(n_machines=2, backend="inline",
                          storage_root=root) as c1:
            j = c1.new(Journal, machine=1)
            j.append("durable")
            addr = c1.persist(j, "restart-me")
            text = str(addr)
        # New cluster, same storage root: the address must resolve.
        with oopp.Cluster(n_machines=2, backend="inline",
                          storage_root=root) as c2:
            revived = c2.lookup(text)
            assert revived.all() == ["durable"]

    def test_numpy_state_survives_restart(self, tmp_path):
        root = str(tmp_path / "persistent-root")
        with oopp.Cluster(n_machines=1, backend="inline",
                          storage_root=root) as c1:
            blk = c1.new_block(64, machine=0)
            blk.write(0, np.arange(64.0))
            addr = str(c1.persist(blk, "numbers"))
        with oopp.Cluster(n_machines=1, backend="inline",
                          storage_root=root) as c2:
            blk2 = c2.lookup(addr)
            assert np.allclose(blk2.read(), np.arange(64.0))
