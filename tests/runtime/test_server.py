"""Object table, kernel and dispatcher unit tests."""

from __future__ import annotations

import threading
import time

import pytest

from repro.backends.inline import InlineFabric
from repro.config import Config, ServeConfig
from repro.errors import (
    NoSuchObjectError,
    ObjectDestroyedError,
    RuntimeLayerError,
)
from repro.runtime.oid import class_spec
from repro.runtime.server import Dispatcher, Kernel, ObjectTable, ServePolicy
from repro.transport.message import ErrorResponse, Request, Response


class Thing:
    destructor_ran = 0

    def __init__(self, tag="t"):
        self.tag = tag

    def hello(self):
        return f"hi-{self.tag}"

    def boom(self):
        raise ValueError("kaboom")

    def oopp_destructor(self):
        type(self).destructor_ran += 1


@pytest.fixture
def machine():
    table = ObjectTable()
    kernel = Kernel(0, table)
    fabric = InlineFabric(Config(backend="inline", n_machines=1))
    dispatcher = Dispatcher(0, table, kernel, fabric)
    return table, kernel, dispatcher


class TestObjectTable:
    def test_add_get_remove(self):
        table = ObjectTable()
        oid = table.add("obj")
        assert table.get(oid) == "obj"
        assert table.remove(oid) == "obj"

    def test_ids_are_dense_and_skip_kernel(self):
        table = ObjectTable()
        ids = [table.add(i) for i in range(5)]
        assert ids == [1, 2, 3, 4, 5]

    def test_unknown_oid(self):
        table = ObjectTable()
        with pytest.raises(NoSuchObjectError):
            table.get(42)

    def test_destroyed_oid_distinguishable_from_garbage(self):
        table = ObjectTable()
        oid = table.add("x")
        table.remove(oid)
        with pytest.raises(ObjectDestroyedError):
            table.get(oid)
        with pytest.raises(ObjectDestroyedError):
            table.remove(oid)

    def test_explicit_oid_conflict_rejected(self):
        table = ObjectTable()
        table.add("a", oid=7)
        with pytest.raises(RuntimeLayerError):
            table.add("b", oid=7)

    def test_pending_counts_and_quiesce(self):
        table = ObjectTable()
        oid = table.add("x")
        table.enter_call(oid)
        assert not table.quiesce(timeout=0.01)
        table.exit_call(oid)
        assert table.quiesce(timeout=0.01)

    def test_quiesce_scoped_to_oids(self):
        table = ObjectTable()
        a, b = table.add("a"), table.add("b")
        table.enter_call(a)
        assert table.quiesce([b], timeout=0.01)
        assert not table.quiesce([a], timeout=0.01)
        table.exit_call(a)

    def test_remove_waits_for_inflight_calls(self):
        table = ObjectTable()
        oid = table.add("x")
        table.enter_call(oid)
        done = []

        def remover():
            table.remove(oid)
            done.append(True)

        t = threading.Thread(target=remover, daemon=True)
        t.start()
        t.join(timeout=0.05)
        assert not done  # still blocked on the in-flight call
        table.exit_call(oid)
        t.join(timeout=5)
        assert done

    def test_checkout_resolves_and_registers_atomically(self):
        table = ObjectTable()
        oid = table.add("x")
        assert table.checkout(oid) == "x"
        assert not table.quiesce([oid], timeout=0.01)
        table.checkin(oid)
        assert table.quiesce([oid], timeout=0.01)

    def test_checkout_refused_while_destroy_drains(self):
        # Regression: with the historical get() + enter_call() two-step
        # a caller arriving during the drain could still register
        # against the dying object — executing against a corpse, or
        # (with a steady stream of callers) starving remove forever.
        table = ObjectTable()
        oid = table.add("x")
        table.checkout(oid)
        removed = []

        def remover():
            removed.append(table.remove(oid))

        t = threading.Thread(target=remover, daemon=True)
        t.start()
        deadline = time.monotonic() + 5
        while oid not in table._draining:  # wait for remove to block
            assert time.monotonic() < deadline
            time.sleep(0.001)
        with pytest.raises(ObjectDestroyedError):
            table.checkout(oid)
        table.checkin(oid)
        t.join(timeout=5)
        assert removed == ["x"]

    def test_late_checkin_does_not_resurrect(self):
        table = ObjectTable()
        oid = table.add("x")
        table.checkout(oid)
        table.checkin(oid)
        table.remove(oid)
        table.checkin(oid)  # late duplicate: must be a no-op
        with pytest.raises(ObjectDestroyedError):
            table.checkout(oid)
        # a fresh object must not inherit a corrupted pending count
        oid2 = table.add("y")
        assert table.quiesce([oid2], timeout=0.01)

    def test_checkout_storm_vs_destroy(self):
        # The seed assumed single-threaded dispatch; under a worker
        # pool, lookups race destroys.  Hammer one object from several
        # threads while the main thread destroys it: the remove must
        # finish (no starvation), every successful checkout must see
        # the live instance, and refused checkouts must raise the
        # destroyed error rather than NoSuchObjectError.
        table = ObjectTable()
        oid = table.add("x")
        stop = threading.Event()
        bad: list = []

        def hammer():
            while not stop.is_set():
                try:
                    got = table.checkout(oid)
                except ObjectDestroyedError:
                    return  # destroy won; correct refusal
                except Exception as exc:  # noqa: BLE001
                    bad.append(exc)
                    return
                if got != "x":
                    bad.append(got)
                table.checkin(oid)

        threads = [threading.Thread(target=hammer, daemon=True)
                   for _ in range(8)]
        for t in threads:
            t.start()
        time.sleep(0.02)
        assert table.remove(oid) == "x"
        stop.set()
        for t in threads:
            t.join(timeout=5)
        assert not bad


class TestKernel:
    def test_create_and_destroy(self, machine):
        table, kernel, _ = machine
        ref = kernel.create(class_spec(Thing), ("a",), {})
        assert table.get(ref.oid).tag == "a"
        before = Thing.destructor_ran
        assert kernel.destroy(ref.oid)
        assert Thing.destructor_ran == before + 1
        with pytest.raises(ObjectDestroyedError):
            table.get(ref.oid)

    def test_kernel_cannot_destroy_itself(self, machine):
        _, kernel, _ = machine
        with pytest.raises(RuntimeLayerError):
            kernel.destroy(0)

    def test_destroy_all(self, machine):
        table, kernel, _ = machine
        for i in range(3):
            kernel.create(class_spec(Thing), (str(i),), {})
        assert kernel.destroy_all() == 3
        assert len(table) == 0

    def test_snapshot_restore_round_trip(self, machine):
        table, kernel, _ = machine
        ref = kernel.create(class_spec(Thing), ("snap",), {})
        spec, state = kernel.snapshot(ref.oid)
        ref2 = kernel.restore(spec, state)
        assert table.get(ref2.oid).tag == "snap"
        assert ref2.oid != ref.oid

    def test_evict_removes_after_snapshot(self, machine):
        table, kernel, _ = machine
        ref = kernel.create(class_spec(Thing), (), {})
        spec, state = kernel.evict(ref.oid)
        assert spec == class_spec(Thing)
        with pytest.raises(ObjectDestroyedError):
            table.get(ref.oid)

    def test_stats(self, machine):
        _, kernel, dispatcher = machine
        dispatcher.execute(Request(request_id=1, object_id=0, method="ping"))
        stats = kernel.stats()
        assert stats["machine"] == 0
        assert stats["calls_served"] == 1

    def test_shutdown_sets_stop_event(self, machine):
        _, kernel, _ = machine
        assert not kernel.stop_event.is_set()
        kernel.shutdown()
        assert kernel.stop_event.is_set()


class TestDispatcher:
    def test_dispatch_success(self, machine):
        table, kernel, dispatcher = machine
        ref = kernel.create(class_spec(Thing), (), {})
        reply = dispatcher.execute(Request(request_id=9, object_id=ref.oid,
                                           method="hello"))
        assert isinstance(reply, Response)
        assert reply.request_id == 9 and reply.value == "hi-t"

    def test_dispatch_exception_captured(self, machine):
        _, kernel, dispatcher = machine
        ref = kernel.create(class_spec(Thing), (), {})
        reply = dispatcher.execute(Request(request_id=1, object_id=ref.oid,
                                           method="boom"))
        assert isinstance(reply, ErrorResponse)
        assert "kaboom" in reply.message
        assert "ValueError" in reply.type_name
        assert "boom" in reply.remote_traceback
        assert isinstance(reply.exception, ValueError)

    def test_oneway_returns_none_even_on_error(self, machine):
        _, kernel, dispatcher = machine
        ref = kernel.create(class_spec(Thing), (), {})
        assert dispatcher.execute(Request(request_id=1, object_id=ref.oid,
                                          method="boom", oneway=True)) is None

    def test_unknown_object_is_error_response(self, machine):
        _, _, dispatcher = machine
        reply = dispatcher.execute(Request(request_id=1, object_id=404,
                                           method="hello"))
        assert isinstance(reply, ErrorResponse)
        assert "NoSuchObjectError" in reply.type_name

    def test_special_getattr_setattr(self, machine):
        _, kernel, dispatcher = machine
        ref = kernel.create(class_spec(Thing), ("x",), {})
        reply = dispatcher.execute(Request(
            request_id=1, object_id=ref.oid, method="__oopp_getattr__",
            args=("tag",)))
        assert reply.value == "x"
        dispatcher.execute(Request(
            request_id=2, object_id=ref.oid, method="__oopp_setattr__",
            args=("tag", "y")))
        reply = dispatcher.execute(Request(
            request_id=3, object_id=ref.oid, method="hello"))
        assert reply.value == "hi-y"

    def test_preadmitted_depth_rolled_back_on_checkout_failure(self):
        # Regression: the mp reader thread admits (counting the call in
        # the object's depth) before the executor dispatches it.  If a
        # destroy wins the race, checkout raises — and the pre-admitted
        # depth must be rolled back, or it leaks forever and (with
        # max_queue_depth set) eventually converts every call to the
        # oid into ServerOverloadedError instead of the correct
        # ObjectDestroyedError.
        table = ObjectTable()
        kernel = Kernel(0, table)
        fabric = InlineFabric(Config(backend="inline", n_machines=1))
        policy = ServePolicy(ServeConfig(max_queue_depth=1))
        dispatcher = Dispatcher(0, table, kernel, fabric, policy=policy)
        ref = kernel.create(class_spec(Thing), (), {})
        policy.admit(ref.oid, "hello")    # the reader-thread half
        kernel.destroy(ref.oid)           # destroy beats the dispatch
        reply = dispatcher.execute(
            Request(request_id=1, object_id=ref.oid, method="hello"),
            preadmitted=True)
        assert isinstance(reply, ErrorResponse)
        assert "ObjectDestroyedError" in reply.type_name
        assert policy.stats()["queued"] == 0
        # with max_queue_depth=1, a leaked depth would shed this admit
        policy.admit(ref.oid, "hello")
        policy.cancel_admit(ref.oid)

    def test_unpicklable_exception_still_reported(self, machine):
        class Unpicklable(Exception):
            def __init__(self):
                super().__init__("nope")
                self.fh = open(__file__)  # not picklable

        class Bad:
            def fail(self):
                raise Unpicklable()

        table, kernel, dispatcher = machine
        oid = table.add(Bad())
        reply = dispatcher.execute(Request(request_id=1, object_id=oid,
                                           method="fail"))
        assert isinstance(reply, ErrorResponse)
        assert reply.exception is None  # fell back to metadata-only
        assert "Unpicklable" in reply.type_name
