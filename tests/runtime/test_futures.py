"""RemoteFuture semantics and the receive-loop helpers."""

from __future__ import annotations

import threading

import pytest

from repro.errors import CallTimeoutError
from repro.runtime.futures import (
    RemoteFuture,
    as_completed,
    completed_future,
    failed_future,
    gather,
    wait_all,
)


class TestRemoteFuture:
    def test_result_after_set(self):
        f = RemoteFuture()
        f.set_result(42)
        assert f.done() and f.result() == 42
        assert f.exception() is None

    def test_exception_after_set(self):
        f = RemoteFuture()
        f.set_exception(ValueError("x"))
        assert isinstance(f.exception(), ValueError)
        with pytest.raises(ValueError):
            f.result()

    def test_double_completion_rejected(self):
        f = RemoteFuture()
        f.set_result(1)
        with pytest.raises(RuntimeError):
            f.set_result(2)
        with pytest.raises(RuntimeError):
            f.set_exception(ValueError())

    def test_result_blocks_until_completed_by_other_thread(self):
        f = RemoteFuture()
        threading.Timer(0.05, lambda: f.set_result("late")).start()
        assert f.result(timeout=5) == "late"

    def test_timeout_raises_call_timeout(self):
        f = RemoteFuture(label="slow")
        with pytest.raises(CallTimeoutError, match="slow"):
            f.result(timeout=0.01)

    def test_callbacks_run_on_completion(self):
        f = RemoteFuture()
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.result(0)))
        f.set_result(7)
        assert seen == [7]

    def test_callback_on_already_done_future_runs_immediately(self):
        f = completed_future(3)
        seen = []
        f.add_done_callback(lambda fut: seen.append(1))
        assert seen == [1]


class TestHelpers:
    def test_gather_preserves_order(self):
        futures = [completed_future(i) for i in range(5)]
        assert gather(futures) == [0, 1, 2, 3, 4]

    def test_wait_all_raises_first_error_after_waiting_all(self):
        good = completed_future(1)
        bad1 = failed_future(ValueError("first"))
        bad2 = failed_future(KeyError("second"))
        with pytest.raises(ValueError, match="first"):
            wait_all([good, bad1, bad2])

    def test_wait_all_empty_is_noop(self):
        wait_all([])

    def test_as_completed_yields_in_completion_order(self):
        f1, f2 = RemoteFuture(), RemoteFuture()
        f2.set_result("b")
        gen = as_completed([f1, f2])
        first = next(gen)
        assert first is f2
        f1.set_result("a")
        assert next(gen) is f1

    def test_as_completed_timeout(self):
        f = RemoteFuture()
        with pytest.raises(CallTimeoutError):
            list(as_completed([f], timeout=0.01))
