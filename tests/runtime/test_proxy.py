"""Proxies: stub synthesis, pointer semantics, pickling."""

from __future__ import annotations

import pickle

import pytest

import repro as oopp
from repro.errors import RuntimeLayerError
from repro.runtime.context import fabric_scope
from repro.runtime.proxy import Proxy, RemoteMethod, ping, ref_of


class Counter:
    def __init__(self, start=0):
        self.value = start

    def incr(self, by=1):
        self.value += by
        return self.value

    def get(self):
        return self.value

    def __getitem__(self, k):
        return ("item", k)

    def __len__(self):
        return 5

    def __contains__(self, x):
        return x == "yes"

    def __call__(self, x):
        return x * 2


class TestStubSynthesis:
    def test_attribute_becomes_remote_method(self, inline_cluster):
        c = inline_cluster.new(Counter, machine=1)
        assert isinstance(c.incr, RemoteMethod)
        assert c.incr() == 1
        assert c.incr(by=10) == 11
        assert c.get() == 11

    def test_private_names_raise_attribute_error(self, inline_cluster):
        # Underscore names never become remote stubs: pickle/copy/inspect
        # probing must see honest AttributeErrors.  (True dunders like
        # __getstate__ resolve on `object` itself in 3.11+, so they never
        # reach __getattr__ in the first place.)
        c = inline_cluster.new(Counter, machine=1)
        with pytest.raises(AttributeError):
            _ = c._secret
        with pytest.raises(AttributeError):
            _ = c.__custom_probe__

    def test_local_attribute_assignment_forbidden(self, inline_cluster):
        c = inline_cluster.new(Counter, machine=1)
        with pytest.raises(AttributeError, match="remote_setattr"):
            c.value = 9

    def test_dunder_forwarding(self, inline_cluster):
        c = inline_cluster.new(Counter, machine=2)
        assert c[3] == ("item", 3)
        assert len(c) == 5
        assert "yes" in c and "no" not in c
        assert c(21) == 42

    def test_unknown_method_raises_remotely(self, inline_cluster):
        c = inline_cluster.new(Counter, machine=0)
        with pytest.raises(AttributeError, match="no\\b.*method"):
            c.nonexistent()


class TestPointerSemantics:
    def test_equality_and_hash_by_ref(self, inline_cluster):
        a = inline_cluster.new(Counter, machine=1)
        b = Proxy(ref_of(a), None)
        c = inline_cluster.new(Counter, machine=1)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_remote_get_set_attr(self, inline_cluster):
        c = inline_cluster.new(Counter, 5, machine=1)
        assert oopp.remote_getattr(c, "value") == 5
        oopp.remote_setattr(c, "value", 50)
        assert c.get() == 50

    def test_ping_returns_machine_id(self, inline_cluster):
        c = inline_cluster.new(Counter, machine=2)
        assert ping(c) == 2

    def test_ref_of_rejects_non_proxy(self):
        with pytest.raises(TypeError):
            ref_of("not a proxy")  # type: ignore[arg-type]

    def test_destroy_rejects_non_proxy(self):
        with pytest.raises(TypeError):
            oopp.destroy(42)  # type: ignore[arg-type]


class TestPickling:
    def test_pickles_to_ref_and_rebinds_via_context(self, inline_cluster):
        c = inline_cluster.new(Counter, 7, machine=1)
        data = pickle.dumps(c)
        with fabric_scope(inline_cluster.fabric):
            c2 = pickle.loads(data)
        assert c2 == c
        assert c2.get() == 7

    def test_unpickled_without_context_binds_lazily(self, inline_cluster):
        # The cluster's default context is installed process-wide, so a
        # bare unpickle succeeds and calls work.
        c = inline_cluster.new(Counter, 3, machine=0)
        c2 = pickle.loads(pickle.dumps(c))
        assert c2.get() == 3

    def test_detached_proxy_fails_loudly(self):
        from repro.runtime.oid import ObjectRef

        orphan = Proxy(ObjectRef(machine=0, oid=99), None)
        with pytest.raises(RuntimeLayerError, match="not attached"):
            orphan.anything()


class TestFutureAndOneway:
    def test_future_variant(self, inline_cluster):
        c = inline_cluster.new(Counter, machine=1)
        f = c.incr.future(5)
        assert f.result(5) == 5

    def test_oneway_variant(self, inline_cluster):
        c = inline_cluster.new(Counter, machine=1)
        c.incr.oneway(5)
        assert c.get() == 5

    def test_oneway_swallows_remote_errors(self, inline_cluster):
        c = inline_cluster.new(Counter, machine=1)
        c.nonexistent.oneway()  # must not raise locally
        assert c.get() == 0
