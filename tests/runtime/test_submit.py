"""Remote function execution: cluster.submit and map_on_machines."""

from __future__ import annotations

import os

import pytest

import repro as oopp
from repro.errors import RuntimeLayerError
from repro.runtime.context import current_machine_id


# --- module-level functions shipped to machines ---------------------------

def where_am_i():
    return (os.getpid(), current_machine_id())


def add(a, b=0):
    return a + b


def boom():
    raise RuntimeError("remote function failed")


def make_block_there(n):
    """Functions run with the machine context: they can create objects."""
    cluster = None  # no cluster object on machines; use the fabric directly
    from repro.runtime.context import current_fabric
    from repro.runtime.remotedata import Block

    fabric = current_fabric()
    me = current_machine_id()
    return fabric.create(Block, (n, "float64", 1.0), machine=me)


def square(x):
    return x * x


class TestSubmit:
    def test_runs_with_machine_context(self, inline_cluster):
        _, machine = inline_cluster.submit(where_am_i, machine=2)
        assert machine == 2

    def test_args_and_kwargs(self, inline_cluster):
        assert inline_cluster.submit(add, 40, b=2, machine=1) == 42

    def test_errors_propagate(self, inline_cluster):
        with pytest.raises(RuntimeError, match="remote function failed"):
            inline_cluster.submit(boom, machine=0)

    def test_lambda_rejected(self, inline_cluster):
        with pytest.raises(RuntimeLayerError, match="module-level"):
            inline_cluster.submit(lambda: 1, machine=0)

    def test_function_may_create_objects(self, inline_cluster):
        blk = inline_cluster.submit(make_block_there, 8, machine=3)
        assert oopp.is_proxy(blk)
        assert oopp.ref_of(blk).machine == 3
        assert blk.sum() == 8.0

    def test_on_real_processes(self, mp_cluster):
        pids_machines = [mp_cluster.submit(where_am_i, machine=m)
                         for m in range(3)]
        pids = {p for p, _ in pids_machines}
        assert len(pids) == 3 and os.getpid() not in pids
        assert [m for _, m in pids_machines] == [0, 1, 2]

    def test_async_variant(self, inline_cluster):
        f = inline_cluster.submit_async(add, 1, b=2, machine=1)
        assert f.result(10) == 3


class TestMapOnMachines:
    def test_round_robin_fanout(self, inline_cluster):
        results = inline_cluster.map_on_machines(square, list(range(10)))
        assert results == [x * x for x in range(10)]

    def test_parallel_in_sim_time(self, sim_cluster):
        eng = sim_cluster.fabric.engine

        t0 = eng.now
        sim_cluster.map_on_machines(square, list(range(8)))
        t_map = eng.now - t0

        t0 = eng.now
        for m, x in zip([i % 4 for i in range(8)], range(8)):
            sim_cluster.submit(square, x, machine=m)
        t_seq = eng.now - t0
        assert t_map < t_seq
