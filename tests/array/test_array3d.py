"""The distributed Array: reads, writes, reductions, layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.array.array3d import Array
from repro.errors import DomainError, StorageError
from repro.storage.blockstore import BlockStorage, create_block_storage
from repro.storage.device import ArrayPageDevice
from repro.storage.domain import Domain
from repro.storage.pagemap import (
    BlockedPageMap,
    PencilPageMap,
    RoundRobinPageMap,
)


def local_array(tmp_path, N=(8, 8, 8), page=(4, 4, 4), devices=3,
                MapCls=RoundRobinPageMap, tag="a"):
    """An Array over purely local devices (no cluster)."""
    grid = tuple(-(-n // p) for n, p in zip(N, page))
    n_pages = grid[0] * grid[1] * grid[2]
    devs = [ArrayPageDevice(str(tmp_path / f"{tag}{i}.dat"),
                            -(-n_pages // devices) + 1, *page)
            for i in range(devices)]
    pmap = MapCls(grid=grid, n_devices=devices)
    return Array(*N, *page, BlockStorage(devs), pmap)


class TestConstruction:
    def test_geometry_validation(self, tmp_path):
        a = local_array(tmp_path)
        assert a.shape == (8, 8, 8)
        assert a.page_shape == (4, 4, 4)
        assert a.size == 512

    def test_grid_mismatch_rejected(self, tmp_path):
        devs = [ArrayPageDevice(str(tmp_path / "d.dat"), 9, 4, 4, 4)]
        bad_map = RoundRobinPageMap(grid=(3, 3, 3), n_devices=1)
        with pytest.raises(StorageError, match="grid"):
            Array(8, 8, 8, 4, 4, 4, BlockStorage(devs), bad_map)

    def test_device_count_mismatch_rejected(self, tmp_path):
        devs = [ArrayPageDevice(str(tmp_path / "d.dat"), 9, 4, 4, 4)]
        pmap = RoundRobinPageMap(grid=(2, 2, 2), n_devices=2)
        with pytest.raises(StorageError, match="devices"):
            Array(8, 8, 8, 4, 4, 4, BlockStorage(devs), pmap)

    def test_capacity_shortfall_rejected(self, tmp_path):
        devs = [ArrayPageDevice(str(tmp_path / "d.dat"), 3, 4, 4, 4)]
        pmap = RoundRobinPageMap(grid=(2, 2, 2), n_devices=1)
        with pytest.raises(StorageError, match="pages per device"):
            Array(8, 8, 8, 4, 4, 4, BlockStorage(devs), pmap)

    def test_bad_shapes_rejected(self, tmp_path):
        devs = [ArrayPageDevice(str(tmp_path / "d.dat"), 9, 4, 4, 4)]
        with pytest.raises(DomainError):
            Array(0, 8, 8, 4, 4, 4, BlockStorage(devs),
                  RoundRobinPageMap(grid=(1, 2, 2), n_devices=1))


@pytest.mark.parametrize("MapCls", [RoundRobinPageMap, BlockedPageMap,
                                    PencilPageMap])
class TestRoundTrips:
    def test_full_write_read(self, tmp_path, MapCls):
        a = local_array(tmp_path, MapCls=MapCls, tag=MapCls.__name__)
        ref = np.random.default_rng(1).random((8, 8, 8))
        a.write(ref)
        assert np.allclose(a.read(), ref)

    def test_unaligned_domain_round_trip(self, tmp_path, MapCls):
        a = local_array(tmp_path, MapCls=MapCls, tag=MapCls.__name__)
        ref = np.random.default_rng(2).random((8, 8, 8))
        a.write(ref)
        dom = Domain(1, 7, 2, 5, 3, 8)
        assert np.allclose(a.read(dom), ref[dom.slices])
        patch = np.full(dom.shape, -1.0)
        a.write(patch, dom)
        ref[dom.slices] = -1.0
        assert np.allclose(a.read(), ref)


class TestPaddingAndEdges:
    def test_page_shape_not_dividing_array(self, tmp_path):
        # 7x5x6 array with 4x4x4 pages: ragged edges everywhere.
        a = local_array(tmp_path, N=(7, 5, 6), page=(4, 4, 4), devices=2)
        ref = np.random.default_rng(3).random((7, 5, 6))
        a.write(ref)
        assert np.allclose(a.read(), ref)
        assert abs(a.sum() - ref.sum()) < 1e-9

    def test_single_element_domain(self, tmp_path):
        a = local_array(tmp_path)
        a.write(np.full((1, 1, 1), 42.0), Domain(3, 4, 3, 4, 3, 4))
        assert a.read(Domain(3, 4, 3, 4, 3, 4))[0, 0, 0] == 42.0

    def test_domain_outside_array_rejected(self, tmp_path):
        a = local_array(tmp_path)
        with pytest.raises(DomainError):
            a.read(Domain(0, 9, 0, 1, 0, 1))

    def test_shape_mismatch_on_write_rejected(self, tmp_path):
        a = local_array(tmp_path)
        with pytest.raises(DomainError):
            a.write(np.zeros((2, 2, 2)), Domain(0, 3, 0, 2, 0, 2))


class TestReductions:
    def test_reductions_match_numpy(self, tmp_path):
        a = local_array(tmp_path)
        ref = np.random.default_rng(4).random((8, 8, 8)) - 0.5
        a.write(ref)
        assert abs(a.sum() - ref.sum()) < 1e-9
        assert a.min() == ref.min()
        assert a.max() == ref.max()
        assert abs(a.norm2() - np.linalg.norm(ref)) < 1e-9
        assert abs(a.mean() - ref.mean()) < 1e-12

    def test_domain_reductions(self, tmp_path):
        a = local_array(tmp_path)
        ref = np.random.default_rng(5).random((8, 8, 8))
        a.write(ref)
        dom = Domain(2, 6, 1, 8, 0, 5)
        assert abs(a.sum(dom) - ref[dom.slices].sum()) < 1e-9
        assert a.max(dom) == ref[dom.slices].max()

    def test_empty_domain_sum_is_zero(self, tmp_path):
        a = local_array(tmp_path)
        assert a.sum(Domain(0, 0, 0, 0, 0, 0)) == 0.0

    def test_empty_domain_min_rejected(self, tmp_path):
        a = local_array(tmp_path)
        with pytest.raises(DomainError):
            a.min(Domain(0, 0, 0, 0, 0, 0))

    def test_fill(self, tmp_path):
        a = local_array(tmp_path)
        a.fill(2.5)
        assert a.sum() == 2.5 * 512
        a.fill(0.0, Domain(0, 4, 0, 8, 0, 8))
        assert a.sum() == 2.5 * 256


class TestRemoteArray:
    def test_over_cluster_devices(self, inline_cluster):
        store = create_block_storage(inline_cluster, 4, NumberOfPages=5,
                                     n1=4, n2=4, n3=4)
        pmap = RoundRobinPageMap(grid=(2, 2, 2), n_devices=4)
        a = Array(8, 8, 8, 4, 4, 4, store, pmap)
        ref = np.random.default_rng(6).random((8, 8, 8))
        a.write(ref)
        assert np.allclose(a.read(), ref)
        assert abs(a.sum() - ref.sum()) < 1e-9

    def test_array_is_picklable_with_remote_devices(self, inline_cluster):
        import pickle

        store = create_block_storage(inline_cluster, 2, NumberOfPages=5,
                                     n1=4, n2=4, n3=4)
        pmap = RoundRobinPageMap(grid=(2, 2, 2), n_devices=2)
        a = Array(8, 8, 8, 4, 4, 4, store, pmap)
        a.fill(1.0)
        a2 = pickle.loads(pickle.dumps(a))
        assert a2.sum() == 512.0
