"""Slab partition helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array.partition import slab_bounds, slab_domains
from repro.errors import DomainError


class TestSlabBounds:
    def test_even_split(self):
        assert [slab_bounds(8, 4, i) for i in range(4)] == \
            [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_leading_slabs(self):
        assert [slab_bounds(10, 3, i) for i in range(3)] == \
            [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_extent(self):
        bounds = [slab_bounds(2, 4, i) for i in range(4)]
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_bad_args(self):
        with pytest.raises(DomainError):
            slab_bounds(4, 0, 0)
        with pytest.raises(DomainError):
            slab_bounds(4, 2, 2)

    @given(st.integers(0, 100), st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_partition_properties(self, extent, parts):
        bounds = [slab_bounds(extent, parts, i) for i in range(parts)]
        # contiguity and coverage
        assert bounds[0][0] == 0 and bounds[-1][1] == extent
        for (lo1, hi1), (lo2, hi2) in zip(bounds, bounds[1:]):
            assert hi1 == lo2
        # balance within one
        widths = [hi - lo for lo, hi in bounds]
        assert max(widths) - min(widths) <= 1
        # agreement with Domain.split_axis
        doms = slab_domains(max(extent, 1), 1, 1, parts)
        if extent >= 1:
            assert [(d.lo1, d.hi1) for d in doms] == bounds
