"""At-the-data operations between sibling arrays."""

from __future__ import annotations

import numpy as np
import pytest

from repro.array.array3d import Array
from repro.array.ops import axpy, copy, dot, offset_map, scale
from repro.errors import StorageError
from repro.storage.blockstore import BlockStorage
from repro.storage.device import ArrayPageDevice
from repro.storage.pagemap import BlockedPageMap, RoundRobinPageMap


@pytest.fixture
def siblings(tmp_path):
    """Two arrays sharing storage via offset maps."""
    grid = (2, 2, 2)
    base = RoundRobinPageMap(grid=grid, n_devices=3)
    cap = base.pages_per_device
    devs = [ArrayPageDevice(str(tmp_path / f"s{i}.dat"), 2 * cap, 4, 4, 4)
            for i in range(3)]
    store = BlockStorage(devs)
    x = Array(8, 8, 8, 4, 4, 4, store,
              offset_map(grid=grid, n_devices=3, base=base, offset=0))
    y = Array(8, 8, 8, 4, 4, 4, store,
              offset_map(grid=grid, n_devices=3, base=base, offset=cap))
    return x, y


class TestOffsetMap:
    def test_shifts_indices_only(self):
        base = RoundRobinPageMap(grid=(2, 2, 2), n_devices=2)
        shifted = offset_map(grid=(2, 2, 2), n_devices=2, base=base, offset=4)
        a0 = base.physical(1, 0, 1)
        a1 = shifted.physical(1, 0, 1)
        assert a1.device_id == a0.device_id
        assert a1.index == a0.index + 4

    def test_still_bijective(self):
        base = BlockedPageMap(grid=(3, 2, 2), n_devices=2)
        offset_map(grid=(3, 2, 2), n_devices=2, base=base,
                   offset=7).validate()

    def test_geometry_mismatch_rejected(self):
        base = RoundRobinPageMap(grid=(2, 2, 2), n_devices=2)
        with pytest.raises(StorageError):
            offset_map(grid=(3, 2, 2), n_devices=2, base=base, offset=0)

    def test_requires_base(self):
        with pytest.raises(StorageError):
            offset_map(grid=(1, 1, 1), n_devices=1)


class TestOps:
    def test_axpy(self, siblings):
        x, y = siblings
        xv = np.random.default_rng(0).random((8, 8, 8))
        yv = np.random.default_rng(1).random((8, 8, 8))
        x.write(xv)
        y.write(yv)
        axpy(0.5, x, y)
        assert np.allclose(y.read(), yv + 0.5 * xv)
        assert np.allclose(x.read(), xv)  # x untouched

    def test_scale(self, siblings):
        x, _ = siblings
        x.fill(3.0)
        scale(x, -2.0)
        assert x.sum() == -6.0 * 512

    def test_copy(self, siblings):
        x, y = siblings
        xv = np.random.default_rng(2).random((8, 8, 8))
        x.write(xv)
        y.fill(9.0)
        copy(x, y)
        assert np.allclose(y.read(), xv)

    def test_dot(self, siblings):
        x, y = siblings
        xv = np.random.default_rng(3).random((8, 8, 8))
        yv = np.random.default_rng(4).random((8, 8, 8))
        x.write(xv)
        y.write(yv)
        assert abs(dot(x, y) - float((xv * yv).sum())) < 1e-8

    def test_geometry_mismatch_rejected(self, siblings, tmp_path):
        x, _ = siblings
        dev = ArrayPageDevice(str(tmp_path / "other.dat"), 9, 4, 4, 4)
        other = Array(8, 8, 8, 4, 4, 4, BlockStorage([dev]),
                      RoundRobinPageMap(grid=(2, 2, 2), n_devices=1))
        with pytest.raises(StorageError, match="share"):
            axpy(1.0, x, other)

    def test_dot_requires_dividing_pages(self, tmp_path):
        grid = (2, 2, 2)
        base = RoundRobinPageMap(grid=grid, n_devices=1)
        cap = base.pages_per_device
        dev = ArrayPageDevice(str(tmp_path / "pad.dat"), 2 * cap + 2, 4, 4, 4)
        store = BlockStorage([dev])
        x = Array(7, 7, 7, 4, 4, 4, store,
                  offset_map(grid=grid, n_devices=1, base=base, offset=0))
        y = Array(7, 7, 7, 4, 4, 4, store,
                  offset_map(grid=grid, n_devices=1, base=base, offset=cap))
        with pytest.raises(StorageError, match="dot"):
            dot(x, y)


# --- shipped page functions for apply() ------------------------------------

def _negate(a):
    return -a


def _affine(a, scale, shift):
    return a * scale + shift


def _bad_shape(a):
    return a[:1]


class TestApply:
    def test_elementwise_at_the_data(self, siblings):
        import numpy as np

        from repro.array.ops import apply

        x, _ = siblings
        xv = np.random.default_rng(7).random((8, 8, 8))
        x.write(xv)
        apply(x, _negate)
        assert np.allclose(x.read(), -xv)

    def test_extra_args_travel(self, siblings):
        import numpy as np

        from repro.array.ops import apply

        x, _ = siblings
        x.fill(2.0)
        apply(x, _affine, 3.0, 1.0)
        assert np.allclose(x.read(), 7.0)

    def test_shape_changing_function_rejected(self, siblings):
        from repro.array.ops import apply
        from repro.errors import PageSizeError

        x, _ = siblings
        with pytest.raises(PageSizeError, match="changed shape"):
            apply(x, _bad_shape)

    def test_lambda_rejected_eagerly(self, siblings):
        from repro.array.ops import apply
        from repro.errors import RuntimeLayerError

        x, _ = siblings
        with pytest.raises(RuntimeLayerError, match="module-level"):
            apply(x, lambda a: a)

    def test_over_remote_devices(self, inline_cluster):
        import numpy as np

        from repro.array.array3d import Array
        from repro.array.ops import apply
        from repro.storage.blockstore import create_block_storage
        from repro.storage.pagemap import RoundRobinPageMap

        store = create_block_storage(inline_cluster, 2, NumberOfPages=5,
                                     n1=4, n2=4, n3=4,
                                     filename_prefix="apply")
        a = Array(8, 8, 8, 4, 4, 4, store,
                  RoundRobinPageMap(grid=(2, 2, 2), n_devices=2))
        ref = np.random.default_rng(8).random((8, 8, 8))
        a.write(ref)
        apply(a, _affine, -1.0, 0.5)
        assert np.allclose(a.read(), 0.5 - ref)
