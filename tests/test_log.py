"""Framework logging configuration."""

from __future__ import annotations

import logging

import pytest

from repro.util import log as oopp_log


@pytest.fixture(autouse=True)
def reset_logging():
    oopp_log.reset_for_tests()
    yield
    oopp_log.reset_for_tests()


class TestGetLogger:
    def test_namespaced(self):
        logger = oopp_log.get_logger("mp")
        assert logger.name == "oopp.mp"

    def test_silent_by_default(self, monkeypatch, capsys):
        monkeypatch.delenv("OOPP_LOG", raising=False)
        logger = oopp_log.get_logger("x")
        logger.error("should go nowhere")
        assert capsys.readouterr().err == ""

    def test_env_var_enables_stderr(self, monkeypatch, capsys):
        monkeypatch.setenv("OOPP_LOG", "debug")
        logger = oopp_log.get_logger("y")
        logger.debug("visible message")
        err = capsys.readouterr().err
        assert "visible message" in err
        assert "oopp.y" in err

    def test_level_filtering(self, monkeypatch, capsys):
        monkeypatch.setenv("OOPP_LOG", "warning")
        logger = oopp_log.get_logger("z")
        logger.info("hidden")
        logger.warning("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err and "shown" in err

    def test_bad_level_ignored(self, monkeypatch, capsys):
        monkeypatch.setenv("OOPP_LOG", "shouting")
        logger = oopp_log.get_logger("w")
        logger.error("quiet")
        assert capsys.readouterr().err == ""

    def test_configuration_is_cached(self, monkeypatch):
        monkeypatch.setenv("OOPP_LOG", "info")
        oopp_log.get_logger("a")
        handlers_before = list(logging.getLogger("oopp").handlers)
        oopp_log.get_logger("b")
        assert logging.getLogger("oopp").handlers == handlers_before


class TestIntegration:
    def test_dispatch_errors_logged_at_debug(self, monkeypatch, capsys,
                                             tmp_path):
        monkeypatch.setenv("OOPP_LOG", "debug")
        monkeypatch.setenv("OOPP_STORAGE_DIR", str(tmp_path))
        # configuration is read lazily at the first get_logger() after a
        # reset; module-level framework loggers already exist, so kick it
        oopp_log.get_logger("kick")
        import repro as oopp

        with oopp.Cluster(n_machines=1, backend="inline") as cluster:
            blk = cluster.new_block(4, machine=0)
            with pytest.raises(IndexError):
                _ = blk[99]
        assert "raised" in capsys.readouterr().err
