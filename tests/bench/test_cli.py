"""The ``python -m repro.bench`` command line."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main


@pytest.fixture(autouse=True)
def bench_storage(tmp_path, monkeypatch):
    monkeypatch.setenv("OOPP_STORAGE_DIR", str(tmp_path / "bench"))


class TestCli:
    def test_single_experiment_with_check(self, capsys):
        # A1 is pure wall clock — the fastest experiment to run for real.
        assert main(["A1"]) == 0
        out = capsys.readouterr().out
        assert "A1" in out and "shape check: PASS" in out

    def test_markdown_output(self, capsys):
        assert main(["A1", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| payload (doubles) |" in out

    def test_no_check_skips_assertions(self, capsys):
        assert main(["A1", "--no-check"]) == 0
        out = capsys.readouterr().out
        assert "shape check" not in out

    def test_quick_skips_assertions(self, capsys):
        assert main(["A1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "shape check" not in out

    def test_quick_rejects_full(self, capsys):
        with pytest.raises(SystemExit):
            main(["A1", "--quick", "--full"])

    def test_unknown_id_fails_cleanly(self, capsys):
        assert main(["E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_failed_check_returns_one(self, capsys, monkeypatch):
        # doctor A1's check to always fail
        import repro.bench.a01_serde_paths as a01

        def always_fails(table):
            raise AssertionError("forced failure")

        monkeypatch.setattr(a01, "check", always_fails)
        assert main(["A1"]) == 1
        assert "FAIL" in capsys.readouterr().out
