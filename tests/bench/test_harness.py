"""The benchmark harness itself: tables, registry, workloads."""

from __future__ import annotations

import pytest

from repro.bench.registry import EXPERIMENTS, _load_all, get_experiment
from repro.bench.report import Table, geometric_mean
from repro.bench.workloads import (
    page_addresses,
    random_array_page,
    random_page,
    random_volume,
)


class TestTable:
    def test_add_and_columns(self):
        t = Table("demo", ["a", "b"])
        t.add(1, 2.5)
        t.add(3, 4.0)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2.5, 4.0]

    def test_row_width_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_unknown_column(self):
        t = Table("demo", ["a"])
        with pytest.raises(ValueError):
            t.column("nope")

    def test_render_alignment(self):
        t = Table("demo", ["name", "value"], note="a note")
        t.add("short", 1)
        t.add("a-much-longer-name", 12345)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a note" in text
        header_idx = next(i for i, l in enumerate(lines) if "name" in l)
        widths = {len(l) for l in lines[header_idx:] if "|" in l}
        assert len(widths) == 1  # all rows align

    def test_markdown(self):
        t = Table("demo", ["x"])
        t.add(1.23456)
        md = t.to_markdown()
        assert "| x |" in md and "| 1.235 |" in md

    def test_float_formatting(self):
        t = Table("demo", ["v"])
        t.add(0.000123456)
        assert t.rows[0][0] == "0.0001235"

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0


class TestRegistry:
    def test_all_experiments_registered(self):
        _load_all()
        assert set(EXPERIMENTS) >= {f"E{i}" for i in range(1, 11)} | \
            {"A1", "A2", "A3", "A4"}

    def test_every_experiment_has_claim_anchor_and_check(self):
        _load_all()
        for exp in EXPERIMENTS.values():
            assert exp.claim and exp.anchor, exp.id
            assert exp.check is not None, f"{exp.id} has no shape check"

    def test_get_experiment(self):
        exp = get_experiment("E1")
        assert exp.title and callable(exp.run)

    def test_check_resolves_lazily(self):
        # regression: the decorator runs before the module defines check
        exp = get_experiment("E3")
        import repro.bench.e03_compute_vs_data as mod

        assert exp.check is mod.check


class TestWorkloads:
    def test_random_page_deterministic(self):
        assert random_page(64, seed=3) == random_page(64, seed=3)
        assert random_page(64, seed=3) != random_page(64, seed=4)

    def test_random_array_page_shape(self):
        p = random_array_page(2, 3, 4, seed=1)
        assert p.shape == (2, 3, 4)

    def test_random_volume(self):
        v = random_volume((4, 4, 4), seed=2, complex_=True)
        assert v.shape == (4, 4, 4) and v.dtype.kind == "c"

    def test_page_addresses_in_range(self):
        addrs = page_addresses(100, 10, seed=5)
        assert len(addrs) == 100
        assert all(0 <= a < 10 for a in addrs)
