"""The shipped tree is the linter's own first customer: examples/ and
the bundled apps must lint clean, and the suppressions they carry must
be real findings underneath (not stale comments)."""

import os

import pytest

from repro.lint import iter_python_files, lint_paths

from .conftest import REPO_ROOT

pytestmark = pytest.mark.lint

EXAMPLES = os.path.join(REPO_ROOT, "examples")
APPS = os.path.join(REPO_ROOT, "src", "repro", "apps")


def test_examples_and_apps_have_zero_findings():
    findings = lint_paths([EXAMPLES, APPS])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_example_suppressions_cover_live_findings():
    """`# oopp: ignore` in examples/ must hide real diagnostics —
    with suppressions off, the intentional sequential baselines
    resurface as OOPP201."""
    loud = lint_paths([EXAMPLES], honor_suppressions=False)
    assert any(
        f.code == "OOPP201" and
        f.path.endswith("autoparallel_loops.py")
        for f in loud)
    assert any(
        f.code == "OOPP201" and
        f.path.endswith("persistent_dataset.py")
        for f in loud)


def test_apps_carry_no_suppressions():
    """The apps were *fixed* (@readonly added), not silenced."""
    quiet = lint_paths([APPS])
    loud = lint_paths([APPS], honor_suppressions=False)
    assert quiet == loud == []


def test_corpus_covers_every_shipped_python_file():
    files = iter_python_files([EXAMPLES, APPS])
    assert len(files) >= 10
    assert all(f.endswith(".py") for f in files)
