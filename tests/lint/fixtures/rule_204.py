"""Seeded violations: OOPP204 (unpublished bulk broadcast payload)."""


def loop_reships_weights(cluster, n):
    weights = bytes(1 << 20)
    group = cluster.new_group(Worker, n)
    total = 0
    for i in range(n):
        total += group[i].load(weights)  # seeded: OOPP204
    return total


def fanout_reships_table(cluster, n):
    table = b"\x00" * (1 << 22)
    group = cluster.new_group(Worker, n)
    group.invoke("load", table)  # seeded: OOPP204


def constructor_fanout_reships(cluster, n):
    corpus = open("corpus.bin", "rb").read()
    cluster.new_group(Indexer, n, corpus)  # seeded: OOPP204


def published_handle_is_fine(cluster, n):
    weights = bytes(1 << 20)
    handle = cluster.publish(weights)
    group = cluster.new_group(Worker, n)
    group.invoke("load", handle)  # migrated: no finding


def published_by_value_is_fine(cluster, n):
    weights = bytes(1 << 20)
    cluster.publish(weights)
    group = cluster.new_group(Worker, n)
    group.invoke("load", weights)  # registry substitutes: no finding


def single_send_is_fine(cluster):
    blob = bytes(1 << 20)
    dev = cluster.new(Device)
    return dev.write(0, blob)  # one point-to-point send: no finding


def small_payload_is_fine(cluster, n):
    tag = b"hdr" * 4
    group = cluster.new_group(Worker, n)
    group.invoke("load", tag)  # 12 bytes: no finding


def rebound_per_iteration_is_fine(cluster, n):
    dev = cluster.new(Device)
    total = 0
    for i in range(n):
        page = bytes(1 << 20)
        total += dev.write(i, page)  # fresh data each send: no finding
    return total
