"""Rewriter corpus: suppressed loops are NEVER rewritten by default.

Under ``--no-suppress`` both loops are rewritten and the stale
``# oopp: ignore[...]`` comments stripped.
"""

import repro as oopp


def silent(cluster, group: "ObjectGroup"):
    for i in range(8):  # oopp: ignore[OOPP201] keep sequential
        group[0].ping(i)


def silent_comp(cluster, device: "ObjectGroup", n):
    pages = [device[i].read_page(i) for i in range(n)]  # oopp: ignore[OOPP201] baseline
    return pages
