"""Rewriter corpus: comprehension and subscript-store loops (OOPP201).

``read_into`` is the paper's §4 shape verbatim:
``device[i]->read(buffer[...], page_address[i])``.
"""

import repro as oopp


def read_all(cluster, device: "ObjectGroup", n):
    pages = [device[i].read_page(i) for i in range(n)]
    return pages


def read_into(cluster, device: "ObjectGroup", page_address):
    buffer = [None] * 4
    for i in range(4):
        buffer[i] = device[i].read_page(page_address[i])
    return buffer
