"""Rewriter corpus: flagged loops the dependence checker must REFUSE.

Every function here trips OOPP201 or OOPP202, but none can be proven
observation-equivalent under send/receive reordering — the transform
must leave this file byte-identical and give each loop a typed reason.
"""

import repro as oopp


def receiver_escape(cluster, n):
    # `dev` is both pipelined receiver and `persist` argument: an
    # observer could see persistence racing the in-flight writes
    dev = cluster.new(Device)
    for i in range(n):
        dev.write_page(i)
        cluster.persist(dev, str(i))


def loop_carried(cluster, dev: "Proxy", n):
    # receive k feeds send k+1
    total = 0
    for i in range(n):
        fut = dev.read.future(total)
        total = fut.value


def cross_iteration(cluster, dev: "Proxy", n):
    # a deliberate hand pipeline: forces the PREVIOUS iteration's value
    fut = None
    for i in range(n):
        if fut is not None:
            _ = fut.value
        fut = dev.read.future(i)


def order_sensitive(cluster, dev: "Proxy", n):
    # both phases write stdout; s1 r1 s2 r2 interleaving is observable
    for i in range(n):
        fut = dev.read.future(i)
        print("sending", i)
        print(fut.value)


def error_visibility(cluster, dev: "Proxy", n):
    # try/except changes where a remote error surfaces
    for i in range(n):
        try:
            dev.ping(i)
        except Exception:
            pass


def rebinds(cluster, dev: "Proxy", n):
    # `page = call` rebinds every iteration; no collector to force
    for i in range(n):
        page = dev.read_page(i)
