"""Rewriter corpus: send/receive splits of in-loop forces (OOPP202)."""

import repro as oopp


def totals(cluster, n):
    dev = cluster.new(Device)
    total = 0
    for i in range(n):
        fut = dev.read.future(i)
        total += fut.value
    return total


def forced_deferred(cluster, n):
    dev = cluster.new(Device)
    hits = []
    with oopp.autoparallel():
        for i in range(n):
            d = dev.read(i)
            hits.append(d.value)
    return hits
