"""Rewriter corpus: a wrappable append-collector loop (OOPP201)."""

import repro as oopp


def gather(cluster, device: "ObjectGroup", n):
    out = []
    for i in range(n):
        out.append(device[i].read_page(i))
    return out
