"""Rewriter corpus: loop-invariant receiver hoisting (OOPP201).

``group[0]`` resolves a remote pointer every iteration; the loop
provably runs (``range(8)``), so the rewrite binds it once.
"""

import repro as oopp


def pings(cluster, group: "ObjectGroup"):
    for i in range(8):
        group[0].ping(i)
