"""Seeded violations: OOPP201 (unpipelined sequential remote loop)."""


def write_all(cluster, n, payload):
    group = cluster.new_group(Device, n)
    for i in range(n):  # seeded: OOPP201
        group[i].write(i, payload)


def read_all(cluster, n):
    group = cluster.new_group(Device, n)
    pages = [group[i].read(i) for i in range(n)]  # seeded: OOPP201
    return pages


def consuming_loop_is_fine(cluster, n):
    dev = cluster.new(Device)
    total = 0
    for i in range(n):
        total += dev.read(i)  # result consumed: no finding
    return total


def already_parallel_is_fine(cluster, n, payload):
    import repro as oopp

    dev = cluster.new(Device)
    with oopp.autoparallel():
        for i in range(n):
            dev.write(i, payload)  # inside autoparallel: no finding
