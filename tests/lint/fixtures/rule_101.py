"""Seeded violations: OOPP101 (lambda / local function shipped remotely).

Never imported — parsed by the lint suite.  `# seeded: CODE` marks the
exact line each finding must anchor to.
"""


def ship(cluster):
    w = cluster.on(0).new(Worker, lambda x: x + 1)  # seeded: OOPP101
    w.apply(lambda v: v * 2)  # seeded: OOPP101
    fn = lambda v: v - 1  # noqa: E731 — the binding itself is legal
    w.apply(fn)  # seeded: OOPP101

    def local_step(v):
        return v + 1

    w.apply(local_step)  # seeded: OOPP101
    w.apply(abs)  # a module-level callable pickles fine: no finding
    return w
