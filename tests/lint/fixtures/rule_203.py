"""Seeded violations: OOPP203 (pending Deferred shipped as an argument)."""

import repro as oopp


def chained(cluster):
    a = cluster.new(Stage)
    b = cluster.new(Stage)
    with oopp.autoparallel():
        x = a.step(1)
        b.step(x)  # seeded: OOPP203
        b.step(a.step(2))  # seeded: OOPP203
        b.step(x.value)  # forced first: no finding
    b.step(x)  # after the block everything is flushed: no finding
