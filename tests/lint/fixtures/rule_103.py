"""Seeded violations: OOPP103 (synchronization primitive shipped)."""

import threading


def ship(cluster):
    w = cluster.new(Guard, threading.Lock())  # seeded: OOPP103
    lock = threading.RLock()
    w.guard(lock)  # seeded: OOPP103
    gate = threading.Event()
    group = cluster.new_group(Guard, 4)
    group.invoke("guard", gate)  # seeded: OOPP103
    return w
