"""Seeded violations, every one silenced by `# oopp: ignore` comments.

With suppressions honoured this file must lint clean; with
``honor_suppressions=False`` (or ``--no-suppress``) the seeded
findings reappear.
"""


def sweep(cluster, n, payload):
    dev = cluster.new(Device)
    for i in range(n):  # oopp: ignore[OOPP201]
        dev.write(i, payload)
    w = cluster.new(Worker, lambda x: x)  # oopp: ignore
    return w
