"""Seeded violations: OOPP301 (retry-unsafe method declared idempotent)."""


class Tally:
    __oopp_idempotent__ = frozenset({
        "bump", "log_event", "extend_log", "drop", "reset_to",
    })

    def __init__(self):
        self.count = 0
        self.events = []
        self.state = {}

    def bump(self):
        self.count += 1  # seeded: OOPP301
        return self.count

    def log_event(self, e):
        self.events.append(e)  # seeded: OOPP301

    def extend_log(self, e):
        self.events = self.events + [e]  # seeded: OOPP301

    def drop(self, key):
        del self.state[key]  # seeded: OOPP301

    def reset_to(self, n):
        self.count = n  # plain overwrite replays safely: no finding
        return True
