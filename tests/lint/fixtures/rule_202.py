"""Seeded violations: OOPP202 (future forced inside its creating loop)."""

import repro as oopp


def forced_future_value(cluster, n):
    dev = cluster.new(Device)
    total = 0
    for i in range(n):
        fut = dev.read.future(i)
        total += fut.value  # seeded: OOPP202
    return total


def forced_future_result(cluster, n):
    dev = cluster.new(Device)
    out = []
    for i in range(n):
        fut = dev.read.future(i)
        out.append(fut.result())  # seeded: OOPP202
    return out


def forced_deferred(cluster, n):
    dev = cluster.new(Device)
    hits = []
    with oopp.autoparallel():
        for i in range(n):
            d = dev.read(i)
            hits.append(d.value)  # seeded: OOPP202
    return hits


def forced_after_loop_is_fine(cluster, n):
    dev = cluster.new(Device)
    futures = []
    for i in range(n):
        futures.append(dev.read.future(i))
    return [f.result() for f in futures]  # forced after: no finding


def forced_in_separate_loop_is_fine(cluster, n):
    dev = cluster.new(Device)
    futs = []
    for i in range(n):
        fut = dev.read.future(i)
        futs.append(fut)
    total = 0
    for fut in futs:
        total += fut.value  # consumed in a later loop: no finding
    return total


def forced_in_loop_else_is_fine(cluster, n):
    # the for-else clause runs once, AFTER the loop completes; the
    # historical false positive counted it as inside the creating loop
    dev = cluster.new(Device)
    futs = []
    for i in range(n):
        fut = dev.read.future(i)
        futs.append(fut)
    else:
        for fut in futs:
            total = fut.value  # after the creating loop: no finding
    return total
