"""A realistic OOPP program with zero findings — the corpus control."""

import repro as oopp


class Grid:
    __oopp_idempotent__ = frozenset({"cell"})

    def __init__(self, n):
        self.cells = [0] * n
        self.version = 0

    def set_cell(self, i, v):
        self.cells[i] = v
        self.version = self.version + 1

    @oopp.readonly
    def cell(self, i):
        return self.cells[i]


def run(cluster, n):
    grid = cluster.new(Grid, n)
    with oopp.autoparallel():
        for i in range(n):
            grid.set_cell(i, i * i)
    total = 0
    for i in range(n):
        total += grid.cell(i)
    return total
