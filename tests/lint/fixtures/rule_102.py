"""Seeded violations: OOPP102 (open OS handle shipped remotely)."""


def ship(cluster):
    w = cluster.new(Logger, open("/tmp/x.log", "w"))  # seeded: OOPP102
    fh = open("data.bin", "rb")
    w.consume(fh)  # seeded: OOPP102
    w.consume("data.bin")  # shipping the *path* is the fix: no finding
    return w
