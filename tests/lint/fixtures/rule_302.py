"""Seeded violations: OOPP302 (provably-readonly method missing the
@readonly marker)."""


class Sensor:
    def __init__(self, sid):
        self.sid = sid
        self.samples = []

    def record(self, v):
        self.samples.append(v)  # writes self: no finding

    def last(self):  # seeded: OOPP302
        return self.samples[-1]

    def describe(self):  # seeded: OOPP302
        return {"id": self.sid, "n": len(self.samples)}


class PlainHelper:
    """Not constructed remotely: held to no readonly contract."""

    def __init__(self):
        self.x = 1

    def peek(self):
        return self.x  # no finding


def deploy(cluster):
    return cluster.new(Sensor, 7)
