"""Seeded violations: OOPP401 (synchronous inter-class call cycle)."""


class Ping:
    def __init__(self, cluster):
        self.peer = cluster.new(Pong, self)

    def hit(self):
        return self.peer.bounce()  # seeded: OOPP401


class Pong:
    def __init__(self, cluster):
        self.peer = cluster.new(Ping, self)

    def bounce(self):
        return self.peer.hit()  # the cycle's other edge (reported once)


class Safe:
    def __init__(self, cluster):
        self.peer = cluster.new(Pong, self)

    def poke(self):
        self.peer.bounce.oneway()  # oneway never blocks: no edge
