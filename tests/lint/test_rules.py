"""The seeded-violation corpus: every fixture must produce exactly the
findings its ``# seeded: CODE`` comments declare — same code, same
line, nothing extra."""

import glob
import os
import re

import pytest

from repro.lint import LintFinding, all_rules, lint_paths, lint_source

from .conftest import FIXTURES, fixture_path

pytestmark = pytest.mark.lint

_SEEDED = re.compile(r"# seeded: (OOPP\d+)")


def seeded_expectations(path: str) -> list:
    expected = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            for code in _SEEDED.findall(line):
                expected.append((code, lineno))
    return sorted(expected)


_FIXTURES = sorted(
    os.path.basename(p)
    for p in glob.glob(os.path.join(FIXTURES, "rule_*.py")))


def test_corpus_is_complete():
    """One seeded fixture per static rule code."""
    static_codes = {r.code for r in all_rules()
                    if r.scope in ("module", "corpus")}
    fixture_codes = {f"OOPP{name[5:8]}" for name in _FIXTURES}
    assert fixture_codes == static_codes


@pytest.mark.parametrize("name", _FIXTURES)
def test_fixture_findings_match_seeded_markers(name):
    path = fixture_path(name)
    expected = seeded_expectations(path)
    assert expected, f"{name} seeds nothing"
    got = sorted((f.code, f.line) for f in lint_paths([path]))
    assert got == expected


def test_clean_fixture_has_zero_findings():
    assert lint_paths([fixture_path("clean.py")]) == []


def test_suppressed_fixture_is_silent_until_no_suppress():
    path = fixture_path("suppressed.py")
    assert lint_paths([path]) == []
    loud = lint_paths([path], honor_suppressions=False)
    assert sorted(f.code for f in loud) == ["OOPP101", "OOPP201"]


def test_select_and_ignore_prefixes():
    path = fixture_path("rule_101.py")
    assert lint_paths([path], select=["OOPP2"]) == []
    assert {f.code for f in lint_paths([path], select=["OOPP1"])} == \
        {"OOPP101"}
    assert lint_paths([path], ignore=["OOPP101"]) == []


def test_findings_are_sorted_and_formatted():
    path = fixture_path("rule_101.py")
    findings = lint_paths([path])
    lines = [f.line for f in findings]
    assert lines == sorted(lines)
    rendered = findings[0].format()
    assert rendered.startswith(f"{path}:9:")
    assert "OOPP101" in rendered
    d = findings[0].to_dict()
    assert d["code"] == "OOPP101" and d["line"] == 9


def test_unparsable_source_reports_oopp900():
    findings = lint_source("def broken(:\n", path="bad.py")
    assert [f.code for f in findings] == ["OOPP900"]


def test_lint_source_on_memory_text():
    src = (
        "def f(cluster, n, data):\n"
        "    dev = cluster.new(Device)\n"
        "    for i in range(n):\n"
        "        dev.write(i, data)\n"
    )
    findings = lint_source(src)
    assert [(f.code, f.line) for f in findings] == [("OOPP201", 3)]
    assert isinstance(findings[0], LintFinding)


def test_rule_catalog_metadata():
    rules = all_rules()
    codes = [r.code for r in rules]
    for expected in ("OOPP101", "OOPP102", "OOPP103", "OOPP201",
                     "OOPP202", "OOPP203", "OOPP301", "OOPP302",
                     "OOPP401", "OOPP110", "OOPP111", "OOPP112",
                     "OOPP113", "OOPP114", "OOPP900"):
        assert expected in codes
    assert codes == sorted(codes)
    for r in rules:
        assert r.summary and r.paper
