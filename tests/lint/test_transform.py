"""The automatic §4 rewriter: exact before/after corpus, idempotency,
typed refusals, suppression interplay, and the CLI modes.

Every ``fixtures/transform/<name>.py`` with a ``<name>.expected``
sibling must rewrite to *exactly* that text; ``unsafe.py`` must come
back byte-identical with one typed refusal per flagged loop; the
suppressed corpus is only rewritten under ``--no-suppress``.
"""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.lint import lint_source
from repro.lint.transform import (
    FIXABLE,
    apply_edits,
    attach_fixes,
    fix_paths,
    main,
    plan_source,
)

from .conftest import FIXTURES, REPO_ROOT

pytestmark = pytest.mark.lint

TRANSFORM = os.path.join(FIXTURES, "transform")

#: fixture name -> honor_suppressions while planning
PAIRS = [
    ("wrap_for", True),
    ("wrap_compr", True),
    ("hoist_receiver", True),
    ("split_future", True),
    ("suppressed_loop", False),
]


def read(name: str) -> str:
    with open(os.path.join(TRANSFORM, name), encoding="utf-8") as fh:
        return fh.read()


# ---------------------------------------------------------------------------
# exact rewrites
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,honor", PAIRS)
def test_rewrite_matches_expected_exactly(name, honor):
    before = read(f"{name}.py")
    expected = read(f"{name}.expected")
    plan = plan_source(before, path=f"{name}.py",
                       honor_suppressions=honor)
    assert not plan.refusals, [r.refusal.format() for r in plan.refusals]
    assert plan.verify_error == ""
    assert plan.fixes
    assert plan.new_source == expected


@pytest.mark.parametrize("name,honor", PAIRS)
def test_rewrite_is_idempotent(name, honor):
    """--fix twice == --fix once: the second pass plans nothing."""
    first = plan_source(read(f"{name}.py"), honor_suppressions=honor)
    second = plan_source(first.new_source, honor_suppressions=honor)
    assert second.fixes == []
    assert second.new_source == first.new_source


@pytest.mark.parametrize("name,honor", PAIRS)
def test_rewritten_source_lints_clean_of_fixed_codes(name, honor):
    plan = plan_source(read(f"{name}.py"), honor_suppressions=honor)
    left = lint_source(plan.new_source, select=FIXABLE,
                       honor_suppressions=honor)
    assert left == []


# ---------------------------------------------------------------------------
# refusals
# ---------------------------------------------------------------------------


def test_unsafe_corpus_is_refused_byte_identical():
    before = read("unsafe.py")
    plan = plan_source(before, path="unsafe.py",
                       honor_suppressions=True)
    assert plan.fixes == []
    assert plan.new_source == before
    reasons = sorted(r.refusal.reason for r in plan.refusals)
    assert reasons == sorted([
        "receiver-escapes", "loop-carried-value", "cross-iteration-force",
        "order-sensitive-effect", "control-flow", "overwritten-binding",
    ])
    for r in plan.refusals:
        assert r.refusal.detail            # every reason carries prose
        assert r.code in FIXABLE


def test_refusals_are_typed_not_freeform():
    """Refusal slugs are stable machine-readable identifiers."""
    plan = plan_source(read("unsafe.py"))
    for r in plan.refusals:
        slug = r.refusal.reason
        assert slug == slug.lower() and " " not in slug
        assert r.refusal.format().startswith(slug + ": ")


# ---------------------------------------------------------------------------
# suppression interplay
# ---------------------------------------------------------------------------


def test_suppressed_loops_are_never_rewritten_by_default():
    before = read("suppressed_loop.py")
    plan = plan_source(before, honor_suppressions=True)
    assert plan.fixes == [] and plan.refusals == []
    assert plan.new_source == before


def test_no_suppress_rewrites_and_strips_stale_comments():
    plan = plan_source(read("suppressed_loop.py"),
                       honor_suppressions=False)
    assert len(plan.fixes) == 2
    assert "ignore[OOPP201]" not in plan.new_source


def test_mixed_code_suppressions_survive_the_rewrite():
    src = (
        "import repro as oopp\n"
        "\n"
        "\n"
        "def f(cluster, device: 'ObjectGroup', n):\n"
        "    pages = [device[i].read_page(i) for i in range(n)]"
        "  # oopp: ignore[OOPP201, OOPP101]\n"
        "    return pages\n"
    )
    plan = plan_source(src, honor_suppressions=False)
    assert len(plan.fixes) == 1
    # the comment also silences a non-fixable code: left in place
    assert "oopp: ignore[OOPP201, OOPP101]" in plan.new_source


# ---------------------------------------------------------------------------
# plumbing: imports, edits, metadata
# ---------------------------------------------------------------------------


def test_missing_runtime_import_is_inserted_once():
    src = (
        '"""doc."""\n'
        "\n"
        "\n"
        "def a(cluster, g: 'ObjectGroup', n):\n"
        "    for i in range(n):\n"
        "        g[i].ping(i)\n"
        "\n"
        "\n"
        "def b(cluster, g: 'ObjectGroup', n):\n"
        "    for i in range(n):\n"
        "        g[i].ping(i)\n"
    )
    plan = plan_source(src)
    assert len(plan.fixes) == 2
    assert plan.new_source.count("import repro as oopp") == 1
    assert plan.new_source.splitlines()[1] == "import repro as oopp"


def test_existing_alias_is_reused():
    src = (
        "import repro as rt\n"
        "\n"
        "\n"
        "def a(cluster, g: 'ObjectGroup', n):\n"
        "    for i in range(n):\n"
        "        g[i].ping(i)\n"
    )
    plan = plan_source(src)
    assert "with rt.autoparallel():" in plan.new_source
    assert "import repro as oopp" not in plan.new_source


def test_apply_edits_is_bottom_up_and_dedupes_insertions():
    from repro.lint.findings import Edit

    src = "a\nb\nc\n"
    out = apply_edits(src, [
        Edit(1, 0, "I"),          # insertion before line 1
        Edit(1, 0, "I"),          # duplicate: applied once
        Edit(2, 2, "B1\nB2"),
    ])
    assert out == "I\na\nB1\nB2\nc\n"


def test_fix_metadata_attaches_to_findings(tmp_path):
    target = tmp_path / "prog.py"
    target.write_text(read("wrap_for.py"))
    findings = lint_source(read("wrap_for.py"), path=str(target))
    enriched = attach_fixes(findings)
    (f201,) = [f for f in enriched if f.code == "OOPP201"]
    assert f201.fix is not None
    d = f201.to_dict()
    assert d["fix"]["edits"][0]["start_line"] >= 1
    assert "autoparallel" in d["fix"]["edits"][-1]["replacement"]

    target.write_text(read("unsafe.py"))
    findings = lint_source(read("unsafe.py"), path=str(target))
    enriched = attach_fixes(findings)
    refused = [f for f in enriched if f.code in FIXABLE]
    assert refused and all(f.fix_refusal for f in refused)
    assert any("receiver-escapes" in f.fix_refusal for f in refused)
    assert all("fix_refusal" in f.to_dict() for f in refused)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _copy_corpus(tmp_path):
    for name in os.listdir(TRANSFORM):
        if name.endswith(".py"):
            shutil.copy(os.path.join(TRANSFORM, name), tmp_path / name)
    return tmp_path


def test_fix_paths_writes_and_converges(tmp_path):
    _copy_corpus(tmp_path)
    plans = fix_paths([str(tmp_path)], honor_suppressions=False)
    changed = {os.path.basename(p.path) for p in plans if p.changed}
    assert changed == {"wrap_for.py", "wrap_compr.py",
                       "hoist_receiver.py", "split_future.py",
                       "suppressed_loop.py"}
    assert (tmp_path / "wrap_for.py").read_text() == \
        read("wrap_for.expected")
    assert (tmp_path / "unsafe.py").read_text() == read("unsafe.py")
    # a second --fix run changes nothing on disk
    again = fix_paths([str(tmp_path)], honor_suppressions=False)
    assert not any(p.changed for p in again)


def test_cli_gate_passes_on_corpus(tmp_path, capsys):
    _copy_corpus(tmp_path)
    rc = main(["--gate", "--no-suppress", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "0 failure(s)" in out
    # gate mode never writes
    assert (tmp_path / "wrap_for.py").read_text() == read("wrap_for.py")


def test_cli_json_reports_plans(tmp_path, capsys):
    _copy_corpus(tmp_path)
    rc = main(["--json", "--no-suppress", str(tmp_path)])
    assert rc == 0
    data = json.loads(capsys.readouterr().out)
    by_name = {os.path.basename(d["path"]): d for d in data}
    assert by_name["wrap_for.py"]["changed"] is True   # plan, not written
    assert by_name["wrap_for.py"]["fixes"]
    # --json never writes
    assert (tmp_path / "wrap_for.py").read_text() == read("wrap_for.py")
    assert {r["reason"] for r in by_name["unsafe.py"]["refusals"]} >= \
        {"receiver-escapes", "loop-carried-value"}


def test_cli_diff_mode_prints_unified_diff(tmp_path, capsys):
    _copy_corpus(tmp_path)
    rc = main(["--diff", str(tmp_path / "wrap_for.py")])
    out = capsys.readouterr().out
    assert rc == 0
    assert out.startswith("---")
    assert "+    with oopp.autoparallel():" in out
    assert (tmp_path / "wrap_for.py").read_text() == read("wrap_for.py")


def test_oopp_lint_fix_flag_applies_rewrites(tmp_path):
    target = tmp_path / "prog.py"
    target.write_text(read("wrap_for.py"))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--fix", str(target)],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "applied 1 fix(es)" in proc.stderr
    assert target.read_text() == read("wrap_for.expected")


def test_shipped_baselines_are_rewritable():
    """The acceptance criterion's subjects: at least two suppressed
    sequential-baseline loops in the shipped examples rewrite under
    --no-suppress, and the order-dependent one refuses."""
    example = os.path.join(REPO_ROOT, "examples", "autoparallel_loops.py")
    with open(example, encoding="utf-8") as fh:
        source = fh.read()
    plan = plan_source(source, path=example, honor_suppressions=False)
    assert len(plan.fixes) >= 2, \
        [r.refusal.format() for r in plan.refusals]
    assert plan.verify_error == ""

    dataset = os.path.join(REPO_ROOT, "examples", "persistent_dataset.py")
    with open(dataset, encoding="utf-8") as fh:
        source = fh.read()
    plan = plan_source(source, path=dataset, honor_suppressions=False)
    assert plan.fixes == []
    assert [r.refusal.reason for r in plan.refusals] == \
        ["receiver-escapes"]
    assert plan.new_source == source
