import os

import pytest

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


@pytest.fixture
def fixtures_dir() -> str:
    return FIXTURES


def fixture_path(name: str) -> str:
    return os.path.join(FIXTURES, name)
