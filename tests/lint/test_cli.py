"""The ``python -m repro.lint`` CLI: output formats, exit codes,
selection flags, and the console-script entry point."""

import json
import os
import subprocess
import sys

import pytest

from repro.lint.__main__ import main

from .conftest import REPO_ROOT, fixture_path

pytestmark = pytest.mark.lint


def run_cli(*args: str):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        timeout=120)


class TestExitCodes:
    def test_findings_exit_nonzero(self):
        proc = run_cli(fixture_path("rule_201.py"))
        assert proc.returncode == 1
        assert "OOPP201" in proc.stdout

    def test_clean_file_exits_zero(self):
        proc = run_cli(fixture_path("clean.py"))
        assert proc.returncode == 0
        assert proc.stdout == ""

    def test_no_paths_is_usage_error(self):
        proc = run_cli()
        assert proc.returncode == 2

    def test_shipped_tree_lints_clean(self):
        proc = run_cli("examples/", "src/repro/apps/")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestOutput:
    def test_flake8_style_lines(self):
        proc = run_cli(fixture_path("rule_101.py"))
        first = proc.stdout.splitlines()[0]
        path, line, col, rest = first.split(":", 3)
        assert path.endswith("rule_101.py")
        assert int(line) == 9 and int(col) >= 1
        assert rest.strip().startswith("OOPP101")

    def test_json_output(self):
        proc = run_cli("--json", fixture_path("rule_301.py"))
        assert proc.returncode == 1
        data = json.loads(proc.stdout)
        assert [d["code"] for d in data] == ["OOPP301"] * 4
        assert all(d["path"].endswith("rule_301.py") for d in data)
        assert all("symbol" in d and "suggestion" in d for d in data)

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for code in ("OOPP101", "OOPP201", "OOPP301", "OOPP401",
                     "OOPP110", "OOPP900"):
            assert code in proc.stdout


class TestFlags:
    def test_select_prefix(self):
        assert main(["--select", "OOPP2", fixture_path("rule_101.py")]) == 0
        assert main(["--select", "OOPP1", fixture_path("rule_101.py")]) == 1

    def test_ignore_prefix(self):
        assert main(["--ignore", "OOPP101",
                     fixture_path("rule_101.py")]) == 0

    def test_no_suppress_resurfaces_findings(self):
        assert main([fixture_path("suppressed.py")]) == 0
        assert main(["--no-suppress", fixture_path("suppressed.py")]) == 1

    def test_directory_expansion(self, fixtures_dir):
        # the whole corpus has findings: nonzero
        assert main([fixtures_dir]) == 1


class TestConsoleScript:
    def test_pyproject_declares_oopp_lint(self):
        text = open(os.path.join(REPO_ROOT, "pyproject.toml")).read()
        assert 'oopp-lint = "repro.lint.__main__:run"' in text

    def test_run_raises_systemexit(self, monkeypatch, capsys):
        from repro.lint.__main__ import run

        monkeypatch.setattr(sys, "argv", ["oopp-lint", "--list-rules"])
        with pytest.raises(SystemExit) as exc:
            run()
        assert exc.value.code == 0
        assert "OOPP201" in capsys.readouterr().out
