"""Runtime class checks (OOPP110-114) and the ``validate_remote_class``
compatibility shim."""

import pytest

import repro as oopp
from repro.lint import lint_class
from repro.runtime.protocol import validate_remote_class

pytestmark = pytest.mark.lint


class TestLintClass:
    def test_shipped_classes_are_clean(self):
        assert lint_class(oopp.PageDevice) == []
        assert lint_class(oopp.ArrayPageDevice) == []
        assert lint_class(oopp.Block) == []

    def test_not_a_class_raises(self):
        from repro.errors import RuntimeLayerError

        with pytest.raises(RuntimeLayerError):
            lint_class(42)

    def test_reserved_name_oopp110(self):
        Bad = type("Bad", (), {"__oopp_custom": 1})
        findings = lint_class(Bad)
        assert [f.code for f in findings] == ["OOPP110"]
        assert "reserved" in findings[0].message

    def test_reserved_name_found_across_mro(self):
        # the old validate_remote_class scanned vars(cls) only, so an
        # inherited collision slipped through — the classic gap.
        Base = type("Base", (), {"__oopp_custom": 1})
        Child = type("Child", (Base,), {})
        findings = [f for f in lint_class(Child) if f.code == "OOPP110"]
        assert findings and "inherited from Base" in findings[0].message

    def test_implicit_operation_names_flagged(self):
        from repro.runtime.proxy import GETATTR_METHOD

        Bad = type("Bad", (), {GETATTR_METHOD: lambda self: None})
        assert any(f.code == "OOPP110" for f in lint_class(Bad))

    def test_idempotent_attr_itself_is_sanctioned(self):
        Good = type("Good", (), {
            "__oopp_idempotent__": frozenset({"get"}),
            "get": lambda self: 1,
        })
        assert lint_class(Good) == []

    def test_shadowed_annotation_oopp111(self):
        class Shadow:
            value: int = 0

            def value(self):  # type: ignore[no-redef] # noqa: F811
                return 1

        findings = [f for f in lint_class(Shadow) if f.code == "OOPP111"]
        assert findings and "method stub" in findings[0].message

    def test_unpicklable_default_oopp112(self):
        class Bad:
            def __init__(self, callback=lambda x: x):
                self.callback = callback

        findings = [f for f in lint_class(Bad) if f.code == "OOPP112"]
        assert len(findings) == 1
        assert "callback" in findings[0].message
        assert "not picklable" in findings[0].message

    def test_local_class_oopp113(self):
        class Local:
            pass

        findings = [f for f in lint_class(Local) if f.code == "OOPP113"]
        assert findings and "local class" in findings[0].message

    def test_registry_plain_string_oopp114(self):
        Bad = type("Bad", (), {"__oopp_idempotent__": "get",
                               "get": lambda self: 1})
        findings = [f for f in lint_class(Bad) if f.code == "OOPP114"]
        assert findings and "plain string" in findings[0].message

    def test_registry_non_string_entry_oopp114(self):
        Bad = type("Bad", (), {"__oopp_idempotent__": frozenset({7})})
        findings = [f for f in lint_class(Bad) if f.code == "OOPP114"]
        assert len(findings) == 1

    def test_registry_missing_method_oopp114(self):
        Bad = type("Bad", (), {"__oopp_idempotent__": frozenset({"nope"})})
        findings = [f for f in lint_class(Bad) if f.code == "OOPP114"]
        assert findings and "nope" in findings[0].message

    def test_registry_method_on_subclass_is_sanctioned(self):
        # PageDevice pre-registers read_page for ArrayPageDevice; the
        # missing-method check must look through loaded subclasses.
        Base = type("Base", (), {"__oopp_idempotent__": frozenset({"go"})})
        impl = type("Impl", (Base,), {"go": lambda self: 1})
        assert [f for f in lint_class(Base) if f.code == "OOPP114"] == []
        assert impl.__oopp_idempotent__ == frozenset({"go"})

    def test_registry_wrong_container_oopp114(self):
        Bad = type("Bad", (), {"__oopp_idempotent__": 42})
        findings = [f for f in lint_class(Bad) if f.code == "OOPP114"]
        assert len(findings) == 1

    def test_findings_carry_location_for_real_classes(self):
        findings = lint_class(oopp.PageDevice)
        assert findings == []
        # a class with source: location resolves to its file
        class Local:
            pass

        f = [x for x in lint_class(Local) if x.code == "OOPP113"][0]
        assert f.path.endswith("test_classlint.py")
        assert f.line > 0


class TestValidateShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="lint_class"):
            validate_remote_class(oopp.Block)

    def test_returns_messages_of_lint_class(self):
        Bad = type("Bad", (), {"__oopp_custom": 1})
        with pytest.warns(DeprecationWarning):
            old = validate_remote_class(Bad)
        assert old == [f.message for f in lint_class(Bad)]

    def test_clean_class_is_empty_list(self):
        with pytest.warns(DeprecationWarning):
            assert validate_remote_class(oopp.PageDevice) == []
