"""Property-based serialization tests over numpy arrays."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.transport import serde

DTYPES = st.sampled_from(["float64", "float32", "int64", "int32", "uint8",
                          "complex128", "bool"])

def _elements(dt: str):
    kind = np.dtype(dt).kind
    if kind == "b":
        return st.booleans()
    if kind in "iu":
        return st.integers(0, 100)
    if kind == "f":
        return st.floats(-1e6, 1e6, width=32 if dt == "float32" else 64)
    assert kind == "c"
    return st.complex_numbers(max_magnitude=1e6, allow_nan=False,
                              allow_infinity=False)


arrays = DTYPES.flatmap(lambda dt: hnp.arrays(
    dtype=np.dtype(dt),
    shape=hnp.array_shapes(min_dims=0, max_dims=3, max_side=16),
    elements=_elements(dt),
))


class TestNumpyRoundTrips:
    @given(arrays)
    @settings(max_examples=80, deadline=None)
    def test_array_round_trip_exact(self, a):
        header, buffers = serde.dumps(a)
        b = serde.loads(header, [bytes(x) for x in buffers])
        assert b.dtype == a.dtype
        assert b.shape == a.shape
        assert np.array_equal(a, b)

    @given(arrays)
    @settings(max_examples=40, deadline=None)
    def test_arrays_inside_containers(self, a):
        value = {"payload": a, "meta": (1, "x"), "more": [a]}
        header, buffers = serde.dumps(value)
        back = serde.loads(header, [bytes(x) for x in buffers])
        assert np.array_equal(back["payload"], a)
        assert np.array_equal(back["more"][0], a)
        assert back["meta"] == (1, "x")

    @given(arrays)
    @settings(max_examples=40, deadline=None)
    def test_non_contiguous_views_survive(self, a):
        if a.ndim == 0 or a.shape[0] < 2:
            return
        view = a[::2]
        header, buffers = serde.dumps(view)
        back = serde.loads(header, [bytes(x) for x in buffers])
        assert np.array_equal(back, view)

    @given(arrays)
    @settings(max_examples=40, deadline=None)
    def test_encoded_size_at_least_payload(self, a):
        # C-contiguous numeric data must not be inflated or truncated.
        if a.flags.c_contiguous:
            assert serde.encoded_size(a) >= a.nbytes

    @given(st.integers(1, 3), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_fortran_order_preserved(self, ndim, seed):
        rng = np.random.default_rng(seed)
        shape = tuple([3] * ndim)
        a = np.asfortranarray(rng.random(shape))
        header, buffers = serde.dumps(a)
        back = serde.loads(header, [bytes(x) for x in buffers])
        assert np.array_equal(back, a)
