"""CoalescingSender: batching semantics, flush, error latching."""

from __future__ import annotations

import threading
import time
from typing import Optional

import pytest

from repro.errors import ChannelClosedError
from repro.transport.channel import Channel
from repro.transport.coalesce import CoalescingSender
from repro.transport.message import Response


class RecordingChannel(Channel):
    """Records every send/send_batch; optionally blocks or fails."""

    def __init__(self, block_s: float = 0.0,
                 fail_after: Optional[int] = None) -> None:
        self.calls: list[list[Response]] = []
        self.block_s = block_s
        self.fail_after = fail_after
        self._lock = threading.Lock()

    def _record(self, msgs: list) -> None:
        with self._lock:
            if self.fail_after is not None and len(self.calls) >= self.fail_after:
                raise ChannelClosedError("injected send failure")
            self.calls.append(list(msgs))
        if self.block_s:
            time.sleep(self.block_s)

    def send(self, msg) -> None:
        self._record([msg])

    def send_batch(self, msgs, max_bytes=None) -> None:
        self._record(msgs)

    def recv(self, timeout=None):  # pragma: no cover - not used
        raise NotImplementedError

    def close(self) -> None:
        pass


def msgs_of(channel: RecordingChannel) -> list[int]:
    return [m.request_id for call in channel.calls for m in call]


class TestCoalescing:
    def test_single_send_goes_through(self):
        ch = RecordingChannel()
        sender = CoalescingSender(ch)
        sender.send(Response(request_id=1))
        assert sender.flush(timeout=5)
        sender.close()
        assert msgs_of(ch) == [1]

    def test_burst_batches_while_writer_is_busy(self):
        # A slow channel keeps the writer inside one flush while the
        # producer floods the queue: the next flush must pick the whole
        # backlog up as one send_batch call.
        ch = RecordingChannel(block_s=0.05)
        sender = CoalescingSender(ch, max_msgs=100)
        for i in range(40):
            sender.send(Response(request_id=i))
        assert sender.flush(timeout=10)
        sender.close()
        assert msgs_of(ch) == list(range(40)), "order preserved"
        assert len(ch.calls) < 40, "backlog coalesced into fewer flushes"
        assert any(len(c) > 1 for c in ch.calls)
        assert sender.batched_flushes >= 1

    def test_max_msgs_bounds_one_flush(self):
        ch = RecordingChannel(block_s=0.05)
        sender = CoalescingSender(ch, max_msgs=8)
        for i in range(30):
            sender.send(Response(request_id=i))
        assert sender.flush(timeout=10)
        sender.close()
        assert msgs_of(ch) == list(range(30))
        assert all(len(c) <= 8 for c in ch.calls)

    def test_many_producer_threads_no_loss_no_dupes(self):
        ch = RecordingChannel(block_s=0.002)
        sender = CoalescingSender(ch, max_msgs=64)
        n_threads, per_thread = 8, 50

        def produce(tid):
            for i in range(per_thread):
                sender.send(Response(request_id=tid * 1000 + i))

        threads = [threading.Thread(target=produce, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert sender.flush(timeout=10)
        sender.close()
        got = msgs_of(ch)
        assert len(got) == len(set(got)) == n_threads * per_thread
        # Per-producer order is preserved even across batches.
        for tid in range(n_threads):
            mine = [r - tid * 1000 for r in got if r // 1000 == tid]
            assert mine == sorted(mine)

    def test_error_latches_and_invokes_callback(self):
        errors = []
        ch = RecordingChannel(fail_after=0)
        sender = CoalescingSender(ch, on_error=errors.append)
        sender.send(Response(request_id=1))
        deadline = time.monotonic() + 5
        while not sender.failed and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sender.failed
        assert len(errors) == 1 and isinstance(errors[0], ChannelClosedError)
        with pytest.raises(ChannelClosedError):
            sender.send(Response(request_id=2))

    def test_close_drains_pending(self):
        ch = RecordingChannel(block_s=0.01)
        sender = CoalescingSender(ch)
        for i in range(10):
            sender.send(Response(request_id=i))
        sender.close()
        assert msgs_of(ch) == list(range(10))
        with pytest.raises(ChannelClosedError):
            sender.send(Response(request_id=99))
