"""Protocol message flattening/reconstruction."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.transport.message import (
    KERNEL_OID,
    ErrorResponse,
    Goodbye,
    Hello,
    Request,
    Response,
    message_to_payload,
    payload_to_message,
)


class TestRoundTrip:
    def test_request(self):
        req = Request(request_id=7, object_id=3, method="read",
                      args=(1, 2), kwargs={"k": 9}, oneway=True, caller=2)
        kind, fields = message_to_payload(req)
        assert kind == "req"
        back = payload_to_message(kind, fields)
        assert back == req

    def test_response(self):
        res = Response(request_id=7, value=[1, 2, 3])
        back = payload_to_message(*message_to_payload(res))
        assert back == res

    def test_error_response_with_exception(self):
        err = ErrorResponse(request_id=1, type_name="builtins.ValueError",
                            message="boom", remote_traceback="tb",
                            exception=ValueError("boom"))
        kind, fields = message_to_payload(err)
        back = payload_to_message(kind, fields)
        assert isinstance(back.exception, ValueError)
        assert back.remote_traceback == "tb"

    def test_hello_goodbye(self):
        assert payload_to_message(*message_to_payload(Hello(caller=5))) == \
            Hello(caller=5)
        assert isinstance(payload_to_message(*message_to_payload(Goodbye())),
                          Goodbye)


class TestErrors:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            payload_to_message("nope", {})

    def test_bad_fields_rejected(self):
        with pytest.raises(ProtocolError):
            payload_to_message("req", {"bogus_field": 1})

    def test_unknown_message_type_rejected(self):
        class Fake:
            __dict__ = {}

        with pytest.raises(ProtocolError):
            message_to_payload(Fake())  # type: ignore[arg-type]


def test_kernel_oid_is_zero():
    # Object id 0 is reserved protocol-wide for the machine kernel.
    assert KERNEL_OID == 0
