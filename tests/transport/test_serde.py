"""Serialization: round trips, buffer path, nominal sizes."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.transport import serde


class TestDumpsLoads:
    def test_round_trip_scalars(self):
        for value in [None, True, 0, -17, 3.5, "text", b"bytes",
                      (1, 2), [3, 4], {"k": "v"}, {1, 2, 3}]:
            header, buffers = serde.dumps(value)
            assert serde.loads(header, buffers) == value

    def test_round_trip_nested(self):
        value = {"a": [(1, "x"), {"b": b"\x00\xff"}], "c": {"d": [None]}}
        header, buffers = serde.dumps(value)
        assert serde.loads(header, buffers) == value

    def test_numpy_arrays_round_trip(self):
        a = np.arange(1000, dtype=np.float64).reshape(10, 100)
        header, buffers = serde.dumps(a)
        b = serde.loads(header, [bytes(x) for x in buffers])
        assert np.array_equal(a, b)
        assert b.dtype == a.dtype

    def test_large_array_goes_out_of_band(self):
        a = np.zeros(1 << 16)
        header, buffers = serde.dumps(a)
        # the 512 KiB of data must not be inside the pickle header
        assert len(header) < 10_000
        assert sum(memoryview(b).nbytes for b in buffers) >= a.nbytes

    def test_out_of_band_is_zero_copy_view(self):
        a = np.arange(64, dtype=np.float64)
        _header, buffers = serde.dumps(a)
        assert len(buffers) == 1
        view = memoryview(buffers[0])
        assert view.nbytes == a.nbytes

    def test_complex_arrays(self):
        a = (np.arange(32) + 1j * np.arange(32)).astype(np.complex128)
        header, buffers = serde.dumps(a)
        assert np.array_equal(serde.loads(header, [bytes(b) for b in buffers]), a)

    def test_protocol_below_5_keeps_everything_inline(self):
        a = np.arange(256, dtype=np.float64)
        header, buffers = serde.dumps(a, protocol=4)
        assert buffers == []
        assert np.array_equal(serde.loads(header), a)

    def test_unpicklable_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            serde.dumps(lambda x: x)

    def test_corrupt_header_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            serde.loads(b"not a pickle")

    def test_missing_buffers_raise(self):
        a = np.arange(16, dtype=np.float64)
        header, buffers = serde.dumps(a)
        if buffers:  # buffer-expecting header without the buffers
            with pytest.raises(SerializationError):
                serde.loads(header, [])

    @given(st.recursive(
        st.none() | st.booleans() | st.integers(-2**63, 2**63 - 1)
        | st.floats(allow_nan=False) | st.text(max_size=30)
        | st.binary(max_size=30),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=20))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, value):
        header, buffers = serde.dumps(value)
        assert serde.loads(header, [bytes(b) for b in buffers]) == value


class TestSizes:
    def test_encoded_size_counts_header_and_buffers(self):
        a = np.zeros(1000)
        assert serde.encoded_size(a) >= 8000

    def test_nominal_defaults_to_encoded(self):
        v = [1, 2, 3]
        assert serde.nominal_size_of(v) == serde.encoded_size(list(v))

    def test_declared_nominal_wins(self):
        class Big:
            __oopp_nominal_bytes__ = 1 << 30

        assert serde.nominal_size_of(Big()) == 1 << 30

    def test_nominal_scans_tuple_elements(self):
        class Big:
            __oopp_nominal_bytes__ = 1000

        size = serde.nominal_size_of((Big(), "x"))
        assert 1000 < size < 1200

    def test_nominal_scans_dict_values(self):
        class Big:
            __oopp_nominal_bytes__ = 5000

        assert serde.nominal_size_of({"page": Big()}) > 5000

    def test_nominal_none_attribute_ignored(self):
        # A property raising AttributeError means "undeclared".
        from repro.storage.page import Page

        p = Page(64)
        assert serde.nominal_size_of(p) == serde.encoded_size(p)
        p.with_nominal_size(12345)
        assert serde.nominal_size_of(p) == 12345


class TestBufferContract:
    """``dumps`` returns memoryviews, never bytes — the settled contract.

    Regression for the old annotation claiming ``list[bytes]`` while the
    frames layer actually received ``pb.raw()`` memoryviews.
    """

    def test_out_of_band_buffers_are_flat_memoryviews(self):
        a = np.arange(256, dtype=np.float64)
        _, buffers = serde.dumps(a)
        assert buffers, "contiguous array should go out of band"
        for view in buffers:
            assert isinstance(view, memoryview)
            assert view.format == "B" and view.ndim == 1

    def test_buffers_alias_sender_memory_no_copy(self):
        a = np.arange(64, dtype=np.float64)
        _, buffers = serde.dumps(a)
        a[0] = 123.0  # mutate after dumps: the view must see it
        assert np.frombuffer(buffers[0], dtype=np.float64)[0] == 123.0

    def test_readonly_buffer_accepted(self):
        # Readonly views (e.g. over bytes) must serialize fine.
        ro = np.frombuffer(bytes(range(16)), dtype=np.uint8)
        assert not ro.flags.writeable
        header, buffers = serde.dumps(ro)
        got = serde.loads(header, [bytes(b) for b in buffers])
        assert np.array_equal(got, ro)

    def test_readonly_picklebuffer_round_trips(self):
        payload = b"immutable-payload" * 10
        value = pickle.PickleBuffer(payload)
        header, buffers = serde.dumps(value)
        assert buffers and buffers[0].readonly
        assert bytes(serde.loads(header, buffers)) == payload

    def test_non_contiguous_buffer_rejected_loudly(self):
        # A strided view has no flat raw form; lifting it out of band
        # would silently change its layout, so dumps must refuse.
        a = np.arange(100, dtype=np.float64)[::2]
        assert not a.flags.c_contiguous
        with pytest.raises(SerializationError, match="contiguous"):
            serde.dumps(pickle.PickleBuffer(a))

    def test_contiguous_slice_of_array_accepted(self):
        a = np.arange(100, dtype=np.float64)[10:20]
        header, buffers = serde.dumps(a)
        got = serde.loads(header, [bytes(b) for b in buffers])
        assert np.array_equal(got, a)
