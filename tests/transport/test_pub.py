"""Publication layer: descriptors, registry, attach table, cleanup.

Covers the zero-copy broadcast transport in isolation (no cluster):
descriptor round trips, digest/generation staleness detection,
identity-dedupe, one-decode-per-machine caching, counter accounting,
publisher-owned unlink, and the serde substitution that ships published
objects as descriptors wherever they appear.
"""

from __future__ import annotations

import gc
import pickle

import pytest

import repro as oopp
from repro.errors import PublicationError, TransportError
from repro.obs.metrics import counters
from repro.runtime.futures import RETRYABLE_ERRORS
from repro.transport import pub, serde, shm


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Publications must never leak /dev/shm segments past a test."""
    before = set(shm.host_shm_names())
    yield
    pub.registry().shutdown()
    gc.collect()
    shm._reclaim_exported()
    leaked = set(shm.host_shm_names()) - before
    assert leaked == set(), f"leaked shm segments: {leaked}"


class Payload:
    """A publishable object (custom class: by-value substitution works)."""

    def __init__(self, blob: bytes) -> None:
        self.blob = blob

    def __eq__(self, other) -> bool:
        return isinstance(other, Payload) and other.blob == self.blob


class TestDescriptor:
    def test_round_trip(self):
        desc = pub.pack_pub_descriptor("oopp-pub-x", 123, 7, b"d" * 16)
        assert pub.unpack_pub_descriptor(desc) == \
            ("oopp-pub-x", 123, 7, b"d" * 16)

    def test_is_descriptor(self):
        desc = pub.pack_pub_descriptor("oopp-pub-x", 123, 7, b"d" * 16)
        assert pub.is_descriptor(desc)
        assert not pub.is_descriptor(b"not a descriptor at all....")
        assert not pub.is_descriptor(b"")
        assert not pub.is_descriptor(pub.PUB_MAGIC)  # truncated
        assert not pub.is_descriptor(desc + bytes(pub._MAX_DESC_LEN))

    def test_malformed_rejected(self):
        with pytest.raises(PublicationError):
            pub.unpack_pub_descriptor(b"XXXXXXXX" + bytes(40))
        with pytest.raises(PublicationError):
            pub.unpack_pub_descriptor(pub.PUB_MAGIC + b"\x01")

    def test_foreign_segment_name_rejected(self):
        desc = pub.pack_pub_descriptor("oopp-pub-x", 1, 1, bytes(16))
        alien = desc.replace(b"oopp-pub-x", b"psm_aaaaaa")
        with pytest.raises(PublicationError, match="foreign"):
            pub.unpack_pub_descriptor(alien)


class TestRegistry:
    def test_publish_resolve_shm(self):
        obj = Payload(b"x" * 100_000)
        handle = pub.registry().publish(obj, backing="shm")
        assert handle.nbytes > 100_000
        assert handle.name in shm.host_shm_names()
        got = handle.get()
        assert got == obj
        assert handle.get() is got  # attach table caches one decode

    def test_publish_resolve_local(self):
        obj = Payload(b"y" * 50_000)
        handle = pub.registry().publish(obj, backing="local")
        assert handle.name not in shm.host_shm_names()
        assert handle.get() == obj

    def test_identity_dedupe(self):
        obj = Payload(b"z" * 1000)
        reg = pub.registry()
        assert reg.publish(obj) is reg.publish(obj)
        # An equal-but-distinct object pins its own payload.
        other = Payload(b"z" * 1000)
        assert reg.publish(other) is not reg.publish(obj)

    def test_publish_a_handle_is_a_noop(self):
        reg = pub.registry()
        handle = reg.publish(Payload(b"w" * 64))
        assert reg.publish(handle) is handle

    def test_unpublish_idempotent_and_unlinks(self):
        handle = pub.registry().publish(Payload(b"q" * 8192), backing="shm")
        assert handle.name in shm.host_shm_names()
        assert handle.unpublish()
        assert handle.name not in shm.host_shm_names()
        assert not handle.unpublish()

    def test_resolve_after_unpublish_raises_retryable(self):
        handle = pub.registry().publish(Payload(b"r" * 8192), backing="shm")
        handle.unpublish()
        with pytest.raises(PublicationError) as err:
            handle.get()
        # The attach failure must be retryable per docs/FAILURES.md.
        assert isinstance(err.value, TransportError)
        assert isinstance(err.value, RETRYABLE_ERRORS)

    def test_stale_descriptor_detected(self):
        # A descriptor whose digest disagrees with the pinned payload
        # (corruption, or a recycled name from an older generation) must
        # fail fast, not decode garbage.
        reg = pub.registry()
        handle = reg.publish(Payload(b"s" * 4096), backing="shm")
        tampered = bytearray(handle.descriptor)
        tampered[-len(handle.name) - 1] ^= 0xFF  # flip a digest byte
        with pytest.raises(PublicationError, match="stale"):
            reg.resolve(bytes(tampered), machine=0)

    def test_counters(self):
        c = counters()
        base_pub = c.get("pub.published")
        base_miss = c.get("pub.attach_misses")
        base_hit = c.get("pub.attach_hits")
        handle = pub.registry().publish(Payload(b"c" * 2048))
        assert c.get("pub.published") == base_pub + 1
        handle.get()
        handle.get()
        handle.get()
        assert c.get("pub.attach_misses") == base_miss + 1
        assert c.get("pub.attach_hits") == base_hit + 2
        assert c.get("pub.pinned_bytes") >= handle.nbytes

    def test_pinned_bytes_is_a_peak_gauge(self):
        reg = pub.registry()
        h1 = reg.publish(Payload(b"a" * 10_000))
        h2 = reg.publish(Payload(b"b" * 10_000))
        peak = counters().get("pub.pinned_bytes")
        assert peak >= h1.nbytes + h2.nbytes
        h1.unpublish()
        h2.unpublish()
        assert reg.pinned_bytes == 0
        # record_max: the peak survives the unpublish.
        assert counters().get("pub.pinned_bytes") == peak

    def test_shutdown_sweeps_everything(self):
        reg = pub.registry()
        names = [reg.publish(Payload(bytes([i]) * 4096), backing="shm").name
                 for i in range(3)]
        reg.shutdown()
        live = set(shm.host_shm_names())
        assert not (set(names) & live)


class TestSerdeSubstitution:
    def test_published_object_ships_as_descriptor(self):
        obj = Payload(b"big" * 100_000)
        pub.registry().publish(obj)
        header, bufs = serde.dumps((1, obj, "x"), 5)
        sizes = [memoryview(b).nbytes for b in bufs]
        assert len(header) + sum(sizes) < 1000  # payload did not ship
        assert any(pub.is_descriptor(b) for b in bufs)
        decoded = serde.loads(header, [bytes(b) for b in bufs])
        assert decoded[0] == 1 and decoded[2] == "x"
        assert decoded[1] == obj

    def test_nested_published_object_substitutes(self):
        obj = Payload(b"n" * 50_000)
        pub.registry().publish(obj)
        value = {"deep": [(obj,), {"k": obj}]}
        header, bufs = serde.dumps(value, 5)
        assert len(header) + sum(memoryview(b).nbytes for b in bufs) < 1000
        decoded = serde.loads(header, [bytes(b) for b in bufs])
        inner = decoded["deep"][0][0]
        assert inner == obj
        assert decoded["deep"][1]["k"] is inner  # one decode, shared

    def test_handle_unpickles_to_the_value(self):
        obj = Payload(b"h" * 9000)
        handle = pub.registry().publish(obj)
        header, bufs = serde.dumps(handle, 5)
        assert serde.loads(header, [bytes(b) for b in bufs]) == obj

    def test_handle_protocol4_fallback(self):
        obj = Payload(b"p4" * 4000)
        handle = pub.registry().publish(obj)
        assert pickle.loads(pickle.dumps(handle, protocol=4)) == obj

    def test_unpublished_objects_pickle_normally(self):
        # With no live publication the hook stays out of the way.
        obj = Payload(b"plain" * 2000)
        header, bufs = serde.dumps(obj, 5)
        assert serde.loads(header, [bytes(b) for b in bufs]) == obj

    def test_forwarding_reships_the_descriptor(self):
        # A process that *received* a published object re-ships the
        # descriptor when the object is forwarded onward, not a fresh
        # payload — the attach table registers decoded objects by id.
        obj = Payload(b"f" * 80_000)
        handle = pub.registry().publish(obj)
        received = handle.get()  # the attach-table decode (same process)
        header, bufs = serde.dumps([received], 5)
        assert len(header) + sum(memoryview(b).nbytes for b in bufs) < 1000
        assert serde.loads(header, [bytes(b) for b in bufs])[0] is received

    def test_nominal_size_counts_descriptor_not_payload(self):
        obj = Payload(b"nom" * 100_000)
        handle = pub.registry().publish(obj)
        assert serde.nominal_size_of(handle, 5) == len(handle.descriptor)
        # By value, the substitution makes the true encoded size small.
        assert serde.nominal_size_of(obj, 5) < 1000


class TestFabricSweep:
    def test_cluster_shutdown_unpins(self, tmp_path):
        with oopp.Cluster(n_machines=2, backend="inline",
                          storage_root=str(tmp_path / "r")) as cluster:
            handle = cluster.publish(Payload(b"sw" * 5000))
            assert pub.registry().is_published(handle.get())
        with pytest.raises(PublicationError):
            handle.get()  # unpinned at shutdown
