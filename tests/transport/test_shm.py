"""Shared-memory segments: export/attach, refcounts, no /dev/shm leaks."""

from __future__ import annotations

import gc
import os

import pytest

from repro.errors import TransportError
from repro.transport import shm


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(shm.host_shm_names())
    yield
    gc.collect()
    shm.manager().shutdown()
    after = set(shm.host_shm_names())
    assert after - before == set(), "test leaked shm segments"


class TestDescriptor:
    def test_round_trip(self):
        desc = shm.pack_descriptor("oopp-abc", 12345)
        assert shm.unpack_descriptor(desc) == ("oopp-abc", 12345)

    def test_truncated_rejected(self):
        with pytest.raises(TransportError):
            shm.unpack_descriptor(b"\x01\x02")

    def test_foreign_name_rejected(self):
        desc = shm.pack_descriptor("oopp-x", 1).replace(b"oopp-", b"evil-")
        with pytest.raises(TransportError, match="foreign"):
            shm.unpack_descriptor(desc)

    def test_non_ascii_rejected(self):
        with pytest.raises(TransportError):
            shm.unpack_descriptor(shm.pack_descriptor("oopp-x", 1)[:-1]
                                  + b"\xff")


class TestExportAttach:
    def test_payload_round_trips(self):
        payload = os.urandom(4096)
        out = shm.export_buffer(memoryview(payload))
        try:
            name, size = shm.unpack_descriptor(out.descriptor)
            assert size == 4096
            view = shm.manager().attach(name, size)
            assert bytes(view) == payload
        finally:
            out.commit()
            shm.manager().release(name)

    def test_attached_view_is_writable(self):
        out = shm.export_buffer(memoryview(bytes(64)))
        name, size = shm.unpack_descriptor(out.descriptor)
        view = shm.manager().attach(name, size)
        try:
            view[:4] = b"abcd"
            assert bytes(view[:4]) == b"abcd"
        finally:
            out.commit()
            shm.manager().release(name)

    def test_abort_removes_segment(self):
        out = shm.export_buffer(memoryview(bytes(128)))
        name, _ = shm.unpack_descriptor(out.descriptor)
        assert name in shm.host_shm_names()
        out.abort()
        assert name not in shm.host_shm_names()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(TransportError, match="attach"):
            shm.manager().attach("oopp-no-such-segment", 16)

    def test_attach_rejects_undersized_segment(self):
        out = shm.export_buffer(memoryview(bytes(16)))
        name, _ = shm.unpack_descriptor(out.descriptor)
        try:
            with pytest.raises(TransportError, match="claims"):
                shm.manager().attach(name, 1 << 20)
        finally:
            out.abort()


class TestRefcounting:
    def make_segment(self, n=256):
        out = shm.export_buffer(memoryview(bytes(n)))
        out.commit()
        return shm.unpack_descriptor(out.descriptor)

    def test_release_at_zero_unlinks(self):
        name, size = self.make_segment()
        shm.manager().attach(name, size)
        assert name in shm.host_shm_names()
        shm.manager().release(name)
        assert name not in shm.host_shm_names()

    def test_addref_keeps_segment_alive(self):
        mgr = shm.manager()
        name, size = self.make_segment()
        mgr.attach(name, size)
        assert mgr.addref(name)
        mgr.release(name)
        assert name in shm.host_shm_names(), "one ref still held"
        mgr.release(name)
        assert name not in shm.host_shm_names()

    def test_double_attach_is_one_mapping_two_refs(self):
        mgr = shm.manager()
        name, size = self.make_segment()
        v1 = mgr.attach(name, size)
        v2 = mgr.attach(name, size)
        assert v1 is v2
        mgr.release(name)
        assert name in shm.host_shm_names()
        mgr.release(name)
        assert name not in shm.host_shm_names()

    def test_addref_after_release_fails(self):
        mgr = shm.manager()
        name, size = self.make_segment()
        mgr.attach(name, size)
        mgr.release(name)
        assert not mgr.addref(name)

    def test_adopt_ties_lifetime_to_owner(self):
        mgr = shm.manager()
        name, size = self.make_segment()
        view = mgr.attach(name, size)

        class Owner:
            pass

        owner = Owner()
        assert mgr.adopt(owner, view)
        mgr.release(name)  # the message's reference goes away...
        assert name in shm.host_shm_names()
        del owner          # ...and the adopter's with its GC
        gc.collect()
        assert name not in shm.host_shm_names()

    def test_adopt_foreign_view_is_noop(self):
        mgr = shm.manager()
        assert not mgr.adopt(object(), memoryview(b"plain bytes"))

    def test_consumer_view_survives_unlink(self):
        # POSIX semantics: memory stays valid after unlink while mapped.
        mgr = shm.manager()
        name, size = self.make_segment()
        view = mgr.attach(name, size)
        alias = memoryview(view)  # a numpy-style alias pinning the mapping
        mgr.release(name)
        assert name not in shm.host_shm_names()
        assert bytes(alias[:8]) == bytes(8)  # still readable
        del alias
        gc.collect()
        mgr._sweep_zombies()
        assert mgr.stats()["zombie_mappings"] == 0

    def test_stats_track_copies(self):
        mgr = shm.manager()
        before = mgr.stats()["bytes_copied"]
        out = shm.export_buffer(memoryview(bytes(1000)))
        out.abort()
        assert mgr.stats()["bytes_copied"] == before + 1000
