"""SocketChannel fast path: CALL frames, BATCH send/recv, shm buffers."""

from __future__ import annotations

import gc
import threading

import numpy as np
import pytest

from repro.transport import shm
from repro.transport.message import Hello, Request, Response
from repro.transport.socket_channel import (
    SocketChannel,
    WireOptions,
    listen_socket,
)


def make_pair(client_options=None, server_options=None):
    listener = listen_socket()
    port = listener.getsockname()[1]
    accepted = {}

    def accept():
        sock, _ = listener.accept()
        accepted["chan"] = SocketChannel(sock, options=server_options)

    t = threading.Thread(target=accept, daemon=True)
    t.start()
    client = SocketChannel.connect("127.0.0.1", port, timeout=5,
                                   options=client_options)
    t.join(timeout=5)
    return client, accepted["chan"], listener


@pytest.fixture
def closer():
    resources = []
    yield resources
    for r in resources:
        r.close()


class TestCallFrames:
    def test_request_round_trips_through_header_cache(self, closer):
        client, server, listener = make_pair(
            client_options=WireOptions(header_cache=True))
        closer.extend([client, server, listener])
        for i in range(5):
            client.send(Request(request_id=i, object_id=7, method="sum",
                                args=(i, "x"), kwargs={"k": i}, caller=3))
        for i in range(5):
            msg = server.recv(timeout=5)
            assert isinstance(msg, Request)
            assert (msg.request_id, msg.object_id, msg.method) == (i, 7, "sum")
            assert msg.args == (i, "x") and msg.kwargs == {"k": i}
            assert msg.caller == 3 and msg.oneway is False

    def test_cache_hits_accumulate(self, closer):
        from repro.runtime.protocol import call_header_cache

        client, server, listener = make_pair(
            client_options=WireOptions(header_cache=True))
        closer.extend([client, server, listener])
        before = call_header_cache.stats()["hits"]
        for i in range(10):
            client.send(Request(request_id=i, object_id=901234,
                                method="unique_method_for_cache_test"))
        for _ in range(10):
            server.recv(timeout=5)
        assert call_header_cache.stats()["hits"] >= before + 9

    def test_non_request_messages_unaffected(self, closer):
        client, server, listener = make_pair(
            client_options=WireOptions(header_cache=True))
        closer.extend([client, server, listener])
        client.send(Hello(caller=2))
        assert server.recv(timeout=5).caller == 2


class TestBatchOnTheWire:
    def test_send_batch_arrives_in_order(self, closer):
        client, server, listener = make_pair()
        closer.extend([client, server, listener])
        msgs = [Response(request_id=i, value=i * 10) for i in range(20)]
        client.send_batch(msgs)
        got = [server.recv(timeout=5) for _ in range(20)]
        assert [m.request_id for m in got] == list(range(20))
        assert [m.value for m in got] == [i * 10 for i in range(20)]
        # One physical frame for the whole burst.
        assert client.stats["frames_out"] == 1

    def test_max_bytes_splits_into_several_frames(self, closer):
        client, server, listener = make_pair()
        closer.extend([client, server, listener])
        msgs = [Response(request_id=i, value=bytes(1000)) for i in range(10)]
        client.send_batch(msgs, max_bytes=2500)
        got = [server.recv(timeout=5).request_id for _ in range(10)]
        assert got == list(range(10))
        assert 1 < client.stats["frames_out"] <= 10

    def test_batch_of_requests_with_header_cache(self, closer):
        client, server, listener = make_pair(
            client_options=WireOptions(header_cache=True))
        closer.extend([client, server, listener])
        msgs = [Request(request_id=i, object_id=1, method="m", args=(i,))
                for i in range(8)]
        client.send_batch(msgs)
        got = [server.recv(timeout=5) for _ in range(8)]
        assert [m.args[0] for m in got] == list(range(8))

    def test_batch_with_numpy_buffers(self, closer):
        client, server, listener = make_pair()
        closer.extend([client, server, listener])
        arrays = [np.arange(100.0) * i for i in range(4)]
        client.send_batch([Response(request_id=i, value=a)
                           for i, a in enumerate(arrays)])
        for i in range(4):
            got = server.recv(timeout=5)
            assert np.array_equal(got.value, arrays[i])


class TestShmOnTheWire:
    THRESHOLD = 1 << 12  # 4 KiB, small enough to test quickly

    def options(self):
        return WireOptions(shm_enabled=True, shm_threshold=self.THRESHOLD)

    def test_big_buffer_rides_shm_not_socket(self, closer):
        client, server, listener = make_pair(client_options=self.options())
        closer.extend([client, server, listener])
        payload = np.arange(1 << 14, dtype=np.float64)  # 128 KiB
        before = set(shm.host_shm_names())
        client.send(Response(request_id=1, value=payload))
        msg = server.recv(timeout=5)
        assert np.array_equal(msg.value, payload)
        # The socket carried only the pickle header and a descriptor.
        assert client.stats["bytes_out"] < payload.nbytes // 2
        del msg
        gc.collect()
        assert set(shm.host_shm_names()) == before, "segment leaked"

    def test_small_buffer_stays_inline(self, closer):
        client, server, listener = make_pair(client_options=self.options())
        closer.extend([client, server, listener])
        payload = np.arange(16, dtype=np.float64)  # far below threshold
        before = set(shm.host_shm_names())
        client.send(Response(request_id=1, value=payload))
        msg = server.recv(timeout=5)
        assert np.array_equal(msg.value, payload)
        assert set(shm.host_shm_names()) == before
        del msg

    def test_shm_disabled_ships_inline(self, closer):
        client, server, listener = make_pair(
            client_options=WireOptions(shm_enabled=False))
        closer.extend([client, server, listener])
        payload = np.arange(1 << 14, dtype=np.float64)
        client.send(Response(request_id=1, value=payload))
        msg = server.recv(timeout=5)
        assert np.array_equal(msg.value, payload)
        assert client.stats["bytes_out"] > payload.nbytes

    def test_mixed_options_interoperate(self, closer):
        # A fast-path sender and a plain receiver (and vice versa) must
        # interoperate: decode always understands everything.
        client, server, listener = make_pair(
            client_options=WireOptions(header_cache=True, shm_enabled=True,
                                       shm_threshold=self.THRESHOLD))
        closer.extend([client, server, listener])
        big = np.arange(1 << 13, dtype=np.float64)
        client.send(Request(request_id=5, object_id=2, method="write",
                            args=(big,)))
        msg = server.recv(timeout=5)
        assert np.array_equal(msg.args[0], big)
        # plain server replies to fast client
        server.send(Response(request_id=5, value="ok"))
        assert client.recv(timeout=5).value == "ok"
        del msg
        gc.collect()

    def test_send_failure_reclaims_segment(self, closer):
        client, server, listener = make_pair(client_options=self.options())
        closer.extend([listener])
        server.close()
        client_before = set(shm.host_shm_names())
        payload = np.arange(1 << 14, dtype=np.float64)
        import time

        from repro.errors import ChannelClosedError, TransportError

        # The kernel may buffer the first writes; keep sending until the
        # broken pipe surfaces.  Failed sends abort their segments on the
        # spot; "successful" sends the dead peer never decoded are swept
        # by the sender's exit hook — run it and verify nothing is left.
        with pytest.raises((ChannelClosedError, TransportError)):
            for _ in range(200):
                client.send(Response(request_id=1, value=payload))
                time.sleep(0.005)
        client.close()
        gc.collect()
        shm._reclaim_exported()
        assert set(shm.host_shm_names()) <= client_before
