"""Channels: in-process pair and localhost sockets."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ChannelClosedError, ChannelTimeoutError
from repro.transport.channel import inproc_pair
from repro.transport.message import Goodbye, Hello, Request, Response
from repro.transport.socket_channel import SocketChannel, listen_socket


class TestInprocChannel:
    def test_send_recv_both_directions(self):
        a, b = inproc_pair()
        a.send(Request(request_id=1, object_id=0, method="ping"))
        msg = b.recv(timeout=5)
        assert isinstance(msg, Request) and msg.method == "ping"
        b.send(Response(request_id=1, value="pong"))
        assert a.recv(timeout=5).value == "pong"

    def test_numpy_payload_is_copied_not_aliased(self):
        a, b = inproc_pair()
        arr = np.arange(100.0)
        a.send(Response(request_id=1, value=arr))
        arr[:] = -1  # mutate after send; receiver must see the snapshot
        got = b.recv(timeout=5).value
        assert np.array_equal(got, np.arange(100.0))

    def test_close_unblocks_peer(self):
        a, b = inproc_pair()
        a.close()
        with pytest.raises(ChannelClosedError):
            b.recv(timeout=5)

    def test_send_after_close_raises(self):
        a, _b = inproc_pair()
        a.close()
        with pytest.raises(ChannelClosedError):
            a.send(Goodbye())

    def test_recv_timeout(self):
        a, _b = inproc_pair()
        # A timeout is distinct from a closed peer and leaves the
        # channel usable.
        with pytest.raises(ChannelTimeoutError):
            a.recv(timeout=0.05)
        with pytest.raises(ChannelTimeoutError):
            a.recv(timeout=0.05)

    def test_messages_keep_order(self):
        a, b = inproc_pair()
        for i in range(20):
            a.send(Response(request_id=i))
        got = [b.recv(timeout=5).request_id for _ in range(20)]
        assert got == list(range(20))


class TestSocketChannel:
    @pytest.fixture
    def pair(self):
        listener = listen_socket()
        port = listener.getsockname()[1]
        accepted = {}

        def accept():
            sock, _ = listener.accept()
            accepted["chan"] = SocketChannel(sock)

        t = threading.Thread(target=accept, daemon=True)
        t.start()
        client = SocketChannel.connect("127.0.0.1", port, timeout=5)
        t.join(timeout=5)
        server = accepted["chan"]
        yield client, server
        client.close()
        server.close()
        listener.close()

    def test_round_trip(self, pair):
        client, server = pair
        client.send(Hello(caller=-1))
        assert isinstance(server.recv(timeout=5), Hello)
        server.send(Response(request_id=0, value={"x": 1}))
        assert client.recv(timeout=5).value == {"x": 1}

    def test_bulk_numpy_payload(self, pair):
        client, server = pair
        a = np.arange(1 << 15, dtype=np.float64)
        client.send(Request(request_id=2, object_id=1, method="write",
                            args=(a,)))
        msg = server.recv(timeout=10)
        assert np.array_equal(msg.args[0], a)

    def test_close_surfaces_as_channel_closed(self, pair):
        client, server = pair
        client.close()
        with pytest.raises(ChannelClosedError):
            server.recv(timeout=5)

    def test_stats_counters(self, pair):
        client, server = pair
        client.send(Hello())
        server.recv(timeout=5)
        assert client.stats["frames_out"] == 1
        assert client.stats["bytes_out"] > 0
        assert server.stats["frames_in"] == 1

    def test_concurrent_senders_do_not_interleave_frames(self, pair):
        client, server = pair
        n_threads, per_thread = 4, 25

        def send_many(tid):
            for i in range(per_thread):
                client.send(Response(request_id=tid * 1000 + i,
                                     value=bytes(100)))

        threads = [threading.Thread(target=send_many, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        got = [server.recv(timeout=10).request_id
               for _ in range(n_threads * per_thread)]
        for t in threads:
            t.join(timeout=5)
        assert len(got) == len(set(got)) == n_threads * per_thread

    def test_connect_refused_raises_transport_error(self):
        from repro.errors import TransportError

        listener = listen_socket()
        port = listener.getsockname()[1]
        listener.close()
        with pytest.raises(TransportError):
            SocketChannel.connect("127.0.0.1", port, timeout=1.0)
