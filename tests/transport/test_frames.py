"""Framing: wire format, truncation, corruption, limits, batches."""

from __future__ import annotations

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChannelClosedError, FramingError
from repro.transport.frames import (
    BUF_INLINE,
    BUF_SHM,
    KIND_BATCH,
    KIND_CALL,
    KIND_MSG,
    MAGIC,
    VERSION,
    FrameReader,
    FrameWriter,
    pack_batch,
    read_frame,
    split_batch,
    write_frame,
)


def round_trip(header: bytes, buffers=(), kind=KIND_MSG, flags=None):
    sink = io.BytesIO()
    write_frame(sink.write, header, list(buffers), kind=kind,
                buffer_flags=flags)
    sink.seek(0)
    reader = FrameReader(sink)
    return reader.read()


class TestRoundTrip:
    def test_header_only(self):
        kind, h, bufs, flags = round_trip(b"hello")
        assert kind == KIND_MSG and h == b"hello"
        assert bufs == [] and flags == []

    def test_empty_header(self):
        kind, h, bufs, flags = round_trip(b"")
        assert h == b"" and bufs == []

    def test_with_buffers(self):
        kind, h, bufs, flags = round_trip(
            b"hdr", [b"abc", b"", b"0123456789" * 100])
        assert h == b"hdr"
        assert bufs == [b"abc", b"", b"0123456789" * 100]
        assert flags == [BUF_INLINE] * 3

    def test_kind_and_flags_round_trip(self):
        kind, h, bufs, flags = round_trip(
            b"call", [b"descriptor", b"inline"], kind=KIND_CALL,
            flags=[BUF_SHM, BUF_INLINE])
        assert kind == KIND_CALL
        assert flags == [BUF_SHM, BUF_INLINE]
        assert bufs == [b"descriptor", b"inline"]

    def test_unknown_kind_rejected_on_write(self):
        with pytest.raises(FramingError, match="kind"):
            write_frame(lambda b: None, b"h", kind=77)

    def test_mismatched_flags_rejected(self):
        with pytest.raises(FramingError, match="flags"):
            write_frame(lambda b: None, b"h", [b"x"], buffer_flags=[0, 0])

    def test_multiple_frames_in_sequence(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"one", [b"x"])
        write_frame(sink.write, b"two", [])
        sink.seek(0)
        reader = FrameReader(sink)
        assert reader.read() == (KIND_MSG, b"one", [b"x"], [BUF_INLINE])
        assert reader.read() == (KIND_MSG, b"two", [], [])
        assert reader.frames_in == 2

    @given(st.binary(max_size=200),
           st.lists(st.binary(max_size=200), max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, header, buffers):
        _, h, bufs, flags = round_trip(header, buffers)
        assert h == header and bufs == list(buffers)
        assert flags == [BUF_INLINE] * len(buffers)


class TestBatch:
    def items(self):
        return [
            (KIND_MSG, b"first", [b"aa", b"bb"], [BUF_INLINE, BUF_INLINE]),
            (KIND_CALL, b"second", [], []),
            (KIND_MSG, b"", [b"shm-desc"], [BUF_SHM]),
        ]

    def test_pack_split_round_trip(self):
        items = self.items()
        header, bufs, flags = pack_batch(items)
        assert split_batch(header, bufs, flags) == items

    def test_batch_survives_the_wire(self):
        items = self.items()
        header, bufs, flags = pack_batch(items)
        kind, h, b, f = round_trip(header, bufs, kind=KIND_BATCH, flags=flags)
        assert kind == KIND_BATCH
        assert split_batch(h, b, f) == items

    def test_empty_batch_rejected(self):
        with pytest.raises(FramingError):
            pack_batch([])

    def test_nested_batch_rejected(self):
        inner = pack_batch(self.items())
        with pytest.raises(FramingError, match="nest"):
            pack_batch([(KIND_BATCH, inner[0], inner[1], inner[2])])

    def test_truncated_index_rejected(self):
        header, bufs, flags = pack_batch(self.items())
        with pytest.raises(FramingError):
            split_batch(header[:3], bufs, flags)

    def test_missing_buffers_rejected(self):
        header, bufs, flags = pack_batch(self.items())
        with pytest.raises(FramingError):
            split_batch(header, bufs[:-1], flags[:-1])

    def test_trailing_garbage_rejected(self):
        header, bufs, flags = pack_batch(self.items())
        with pytest.raises(FramingError, match="trailing"):
            split_batch(header + b"junk", bufs, flags)
        with pytest.raises(FramingError, match="trailing"):
            split_batch(header, bufs + [b"extra"], flags + [BUF_INLINE])

    @given(st.lists(st.tuples(st.binary(max_size=60),
                              st.lists(st.binary(max_size=40), max_size=3)),
                    min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_batch_property(self, raw_items):
        items = [(KIND_MSG, h, list(bufs), [BUF_INLINE] * len(bufs))
                 for h, bufs in raw_items]
        header, bufs, flags = pack_batch(items)
        assert split_batch(header, bufs, flags) == items


class TestErrors:
    def test_clean_eof_raises_channel_closed(self):
        reader = FrameReader(io.BytesIO(b""))
        with pytest.raises(ChannelClosedError):
            reader.read()

    def test_truncated_prefix_raises_framing_error(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"payload")
        data = sink.getvalue()
        reader = FrameReader(io.BytesIO(data[:5]))
        with pytest.raises(FramingError):
            reader.read()

    def test_truncated_header_raises_framing_error(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"a-long-header")
        data = sink.getvalue()
        reader = FrameReader(io.BytesIO(data[:-4]))
        with pytest.raises(FramingError):
            reader.read()

    def test_truncated_buffer_raises_framing_error(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"h", [b"0123456789"])
        data = sink.getvalue()
        reader = FrameReader(io.BytesIO(data[:-3]))
        with pytest.raises(FramingError):
            reader.read()

    def test_bad_magic_rejected(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"h")
        data = bytearray(sink.getvalue())
        data[0] ^= 0xFF
        reader = FrameReader(io.BytesIO(bytes(data)))
        with pytest.raises(FramingError, match="magic"):
            reader.read()

    def test_bad_version_rejected(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"h")
        data = bytearray(sink.getvalue())
        data[4] = 99  # version byte
        reader = FrameReader(io.BytesIO(bytes(data)))
        with pytest.raises(FramingError, match="version"):
            reader.read()

    def test_v1_frames_rejected(self):
        # A v1 stream (no kind byte, "<IBHQ" prefix) must fail loudly,
        # not be misparsed.
        prefix = struct.pack("<IBHQ", MAGIC, 1, 0, 5) + b"hello"
        reader = FrameReader(io.BytesIO(prefix))
        with pytest.raises(FramingError):
            reader.read()

    def test_unknown_kind_rejected_on_read(self):
        prefix = struct.pack("<IBBHQ", MAGIC, VERSION, 42, 0, 0)
        reader = FrameReader(io.BytesIO(prefix))
        with pytest.raises(FramingError, match="kind"):
            reader.read()

    def test_unknown_buffer_flag_rejected(self):
        prefix = struct.pack("<IBBHQ", MAGIC, VERSION, KIND_MSG, 1, 0)
        blens = struct.pack("<Q", 3)
        reader = FrameReader(io.BytesIO(prefix + blens + b"\x07" + b"abc"))
        with pytest.raises(FramingError, match="flag"):
            reader.read()

    def test_oversized_header_length_rejected_before_allocation(self):
        # Hand-craft a prefix claiming an absurd header size.
        prefix = struct.pack("<IBBHQ", MAGIC, VERSION, KIND_MSG, 0, 1 << 40)
        reader = FrameReader(io.BytesIO(prefix))
        with pytest.raises(FramingError, match="MAX_FRAME"):
            reader.read()

    def test_oversized_buffers_rejected(self):
        prefix = struct.pack("<IBBHQ", MAGIC, VERSION, KIND_MSG, 2, 10)
        blens = struct.pack("<2Q", 1 << 40, 1 << 40)
        reader = FrameReader(io.BytesIO(prefix + blens))
        with pytest.raises(FramingError, match="MAX_FRAME"):
            reader.read()

    def test_writer_rejects_oversized_frame(self):
        with pytest.raises(FramingError):
            write_frame(lambda b: None, b"h" * (2 << 30))


class TestCounters:
    def test_writer_counts_bytes_and_frames(self):
        sink = io.BytesIO()
        writer = FrameWriter(sink)
        writer.write(b"header", [b"buf"])
        assert writer.frames_out == 1
        assert writer.bytes_out == len(sink.getvalue())

    def test_reader_counts_bytes(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"header", [b"buf"])
        sink.seek(0)
        reader = FrameReader(sink)
        reader.read()
        assert reader.bytes_in == len(sink.getvalue())


class TestFuzzing:
    """Corrupted prefixes must fail loudly, never hang or over-allocate."""

    @given(st.integers(0, 15), st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_prefix_corruption_is_detected(self, position, xor):
        sink = io.BytesIO()
        write_frame(sink.write, b"header-bytes", [b"payload"])
        data = bytearray(sink.getvalue())
        original = data[position]
        data[position] ^= xor
        if data[position] == original:
            return
        reader = FrameReader(io.BytesIO(bytes(data)))
        try:
            _, header, buffers, _ = reader.read()
        except (FramingError, ChannelClosedError):
            return  # loud and typed: exactly what we want
        # A flip inside the length words may still parse (e.g. shorter
        # header length) — but then content must differ or lengths moved,
        # and no read may return *more* data than the stream held.
        assert len(header) + sum(len(b) for b in buffers) <= len(data)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_random_garbage_never_parses_silently(self, garbage):
        reader = FrameReader(io.BytesIO(garbage))
        with pytest.raises((FramingError, ChannelClosedError)):
            reader.read()
            # a random stream virtually never starts with the magic; if
            # hypothesis ever crafts one, the length checks still bound it
            reader.read()
