"""Framing: wire format, truncation, corruption, limits."""

from __future__ import annotations

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChannelClosedError, FramingError
from repro.transport.frames import (
    MAGIC,
    FrameReader,
    FrameWriter,
    read_frame,
    write_frame,
)


def round_trip(header: bytes, buffers=()):
    sink = io.BytesIO()
    write_frame(sink.write, header, list(buffers))
    sink.seek(0)
    reader = FrameReader(sink)
    return reader.read()


class TestRoundTrip:
    def test_header_only(self):
        h, bufs = round_trip(b"hello")
        assert h == b"hello" and bufs == []

    def test_empty_header(self):
        h, bufs = round_trip(b"")
        assert h == b"" and bufs == []

    def test_with_buffers(self):
        h, bufs = round_trip(b"hdr", [b"abc", b"", b"0123456789" * 100])
        assert h == b"hdr"
        assert bufs == [b"abc", b"", b"0123456789" * 100]

    def test_multiple_frames_in_sequence(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"one", [b"x"])
        write_frame(sink.write, b"two", [])
        sink.seek(0)
        reader = FrameReader(sink)
        assert reader.read() == (b"one", [b"x"])
        assert reader.read() == (b"two", [])
        assert reader.frames_in == 2

    @given(st.binary(max_size=200),
           st.lists(st.binary(max_size=200), max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, header, buffers):
        h, bufs = round_trip(header, buffers)
        assert h == header and bufs == list(buffers)


class TestErrors:
    def test_clean_eof_raises_channel_closed(self):
        reader = FrameReader(io.BytesIO(b""))
        with pytest.raises(ChannelClosedError):
            reader.read()

    def test_truncated_prefix_raises_framing_error(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"payload")
        data = sink.getvalue()
        reader = FrameReader(io.BytesIO(data[:5]))
        with pytest.raises(FramingError):
            reader.read()

    def test_truncated_header_raises_framing_error(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"a-long-header")
        data = sink.getvalue()
        reader = FrameReader(io.BytesIO(data[:-4]))
        with pytest.raises(FramingError):
            reader.read()

    def test_truncated_buffer_raises_framing_error(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"h", [b"0123456789"])
        data = sink.getvalue()
        reader = FrameReader(io.BytesIO(data[:-3]))
        with pytest.raises(FramingError):
            reader.read()

    def test_bad_magic_rejected(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"h")
        data = bytearray(sink.getvalue())
        data[0] ^= 0xFF
        reader = FrameReader(io.BytesIO(bytes(data)))
        with pytest.raises(FramingError, match="magic"):
            reader.read()

    def test_bad_version_rejected(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"h")
        data = bytearray(sink.getvalue())
        data[4] = 99  # version byte
        reader = FrameReader(io.BytesIO(bytes(data)))
        with pytest.raises(FramingError, match="version"):
            reader.read()

    def test_oversized_header_length_rejected_before_allocation(self):
        # Hand-craft a prefix claiming an absurd header size.
        prefix = struct.pack("<IBHQ", MAGIC, 1, 0, 1 << 40)
        reader = FrameReader(io.BytesIO(prefix))
        with pytest.raises(FramingError, match="MAX_FRAME"):
            reader.read()

    def test_oversized_buffers_rejected(self):
        prefix = struct.pack("<IBHQ", MAGIC, 1, 2, 10)
        blens = struct.pack("<2Q", 1 << 40, 1 << 40)
        reader = FrameReader(io.BytesIO(prefix + blens))
        with pytest.raises(FramingError, match="MAX_FRAME"):
            reader.read()

    def test_writer_rejects_oversized_frame(self):
        class FakeBig:
            def __len__(self):
                return 1 << 31

        with pytest.raises(FramingError):
            write_frame(lambda b: None, b"h" * (2 << 30))


class TestCounters:
    def test_writer_counts_bytes_and_frames(self):
        sink = io.BytesIO()
        writer = FrameWriter(sink)
        writer.write(b"header", [b"buf"])
        assert writer.frames_out == 1
        assert writer.bytes_out == len(sink.getvalue())

    def test_reader_counts_bytes(self):
        sink = io.BytesIO()
        write_frame(sink.write, b"header", [b"buf"])
        sink.seek(0)
        reader = FrameReader(sink)
        reader.read()
        assert reader.bytes_in == len(sink.getvalue())


class TestFuzzing:
    """Corrupted prefixes must fail loudly, never hang or over-allocate."""

    @given(st.integers(0, 14), st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_prefix_corruption_is_detected(self, position, xor):
        sink = io.BytesIO()
        write_frame(sink.write, b"header-bytes", [b"payload"])
        data = bytearray(sink.getvalue())
        original = data[position]
        data[position] ^= xor
        if data[position] == original:
            return
        reader = FrameReader(io.BytesIO(bytes(data)))
        try:
            header, buffers = reader.read()
        except (FramingError, ChannelClosedError):
            return  # loud and typed: exactly what we want
        # A flip inside the length words may still parse (e.g. shorter
        # header length) — but then content must differ or lengths moved,
        # and no read may return *more* data than the stream held.
        assert len(header) + sum(len(b) for b in buffers) <= len(data)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_random_garbage_never_parses_silently(self, garbage):
        reader = FrameReader(io.BytesIO(garbage))
        with pytest.raises((FramingError, ChannelClosedError)):
            reader.read()
            # a random stream virtually never starts with the magic; if
            # hypothesis ever crafts one, the length checks still bound it
            reader.read()
