"""Host failure on the tcp backend: a killed daemon surfaces as
MachineDownError for every machine it hosted — discovered by the
heartbeat, not by a hung call — and idempotent calls recover after the
host restarts."""

from __future__ import annotations

import time

import pytest

import repro as oopp
from repro.check.examples import SharedCounter
from repro.errors import MachineDownError

pytestmark = [pytest.mark.tcp, pytest.mark.chaos]


def wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.02)


class TestHostDeath:
    def test_kill_mid_call_raises_machine_down(self, two_host_cluster):
        counter = two_host_cluster.on(2).new(SharedCounter)
        assert counter.add(1) == 1
        two_host_cluster.fabric.kill_host(1, hard=True)
        with pytest.raises(MachineDownError):
            counter.add(1)

    def test_heartbeat_discovers_a_quiet_death(self, two_host_cluster):
        """SIGKILL with no declaration: only the heartbeat can notice.
        The bound is heartbeat_misses * heartbeat_interval_s plus one
        poll tick, with slack for a loaded CI box."""
        fabric = two_host_cluster.fabric
        topo = two_host_cluster.config.topology
        budget = (topo.heartbeat_interval_s * (topo.heartbeat_misses + 2)
                  + 2.0)
        t0 = time.monotonic()
        fabric.kill_host(1, hard=True, quiet=True)
        wait_for(lambda: fabric.host_down(1), budget,
                 "heartbeat to declare host 1 down")
        assert time.monotonic() - t0 <= budget

    def test_every_machine_of_the_host_goes_down(self, two_host_cluster):
        fabric = two_host_cluster.fabric
        fabric.kill_host(1, hard=True)
        for machine in (2, 3):
            assert fabric.machine_down(machine)
            with pytest.raises(MachineDownError, match="down"):
                fabric.ping(machine)

    def test_surviving_host_is_unaffected(self, two_host_cluster):
        counter = two_host_cluster.on(0).new(SharedCounter)
        two_host_cluster.fabric.kill_host(1, hard=True)
        assert counter.add(1) == 1            # daemon A still serves
        assert two_host_cluster.on(1).ping() == 1

    def test_down_errors_name_the_machine(self, two_host_cluster):
        fabric = two_host_cluster.fabric
        fabric.kill_host(1, hard=True)
        try:
            fabric.ping(3)
        except MachineDownError as exc:
            assert exc.machine == 3
        else:
            pytest.fail("expected MachineDownError")


class TestRecovery:
    def test_idempotent_calls_recover_after_restart(self, two_host_cluster):
        fabric = two_host_cluster.fabric
        fabric.kill_host(1, hard=True)
        with pytest.raises(MachineDownError):
            fabric.ping(2)
        fabric.restart_host(1)
        # Fresh daemon, fresh object tables — but the machines answer
        # idempotent traffic again, which is what retry needs.
        assert fabric.ping(2) == 2
        assert fabric.ping(3) == 3
        counter = two_host_cluster.on(2).new(SharedCounter)
        assert counter.add(4) == 4

    def test_restart_preserves_the_surviving_hosts_objects(
            self, two_host_cluster):
        counter = two_host_cluster.on(0).new(SharedCounter)
        counter.add(7)
        two_host_cluster.fabric.kill_host(1, hard=True)
        two_host_cluster.fabric.restart_host(1)
        assert counter.get() == 7

    def test_cross_host_calls_work_after_restart(self, two_host_cluster):
        from repro.check.examples import Bumper

        fabric = two_host_cluster.fabric
        fabric.kill_host(1, hard=True)
        fabric.restart_host(1)
        counter = two_host_cluster.on(0).new(SharedCounter)
        bumper = two_host_cluster.on(3).new(Bumper)
        assert bumper.bump(counter) == 1      # restarted B -> A


class TestFaultInjectionRidesAlong:
    def test_dropped_ping_retried_to_success(self, tmp_path):
        """The chaos layer needs no tcp-specific code: FaultPlan wraps
        the driver's channels exactly as on mp, so a dropped idempotent
        call burns its deadline and succeeds on the retry."""
        plan = oopp.FaultPlan(seed=5, rules=[
            oopp.FaultRule(action="drop", direction="send",
                           kinds=("req",), methods=("ping",), nth=1)])
        with oopp.Cluster(n_machines=2, backend="tcp",
                          call_timeout_s=1.0, call_retries=2,
                          retry_backoff_s=0.05, fault_plan=plan,
                          storage_root=str(tmp_path / "root")) as cluster:
            t0 = time.monotonic()
            assert cluster.fabric.ping(1) == 1
            assert time.monotonic() - t0 >= 1.0  # one burnt deadline
            assert cluster.fabric.ping(1) == 1   # rule exhausted
