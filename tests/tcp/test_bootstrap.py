"""Daemon bootstrap: spawn, ready line, handshake, log forwarding,
pre-started daemons, and shutdown's reconnect-refused semantics."""

from __future__ import annotations

import json
import logging
import os
import socket
import subprocess
import sys
import time

import pytest

import repro as oopp
from repro.backends.tcp import (
    PROTOCOL_REV,
    READY_PREFIX,
    _LineReader,
    _send_json,
)
from repro.check.examples import SharedCounter
from repro.errors import HandshakeError, MachineDownError

pytestmark = pytest.mark.tcp

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "src")


class TestBootstrap:
    def test_calls_round_trip(self, tcp_cluster):
        counter = tcp_cluster.on(1).new(SharedCounter)
        assert counter.add(5) == 5
        assert counter.get() == 5

    def test_every_machine_answers(self, tcp_cluster):
        assert tcp_cluster.ping_all() == [0, 1, 2]

    def test_daemon_is_a_separate_process(self, tcp_cluster):
        pids = tcp_cluster.fabric.host_pids()
        assert len(pids) == 1
        assert pids[0] not in (None, os.getpid())

    def test_handshake_records_fingerprint(self, tcp_cluster):
        # Loopback daemons run on this box, so their fingerprint is ours
        # — which is exactly why shm/pub stay enabled toward them.
        from repro.util.hostid import host_fingerprint

        host = tcp_cluster.fabric._host_clients[0]
        assert host.fingerprint == host_fingerprint()

    def test_machine_to_machine_calls_cross_daemons(self, two_host_cluster):
        from repro.check.examples import Bumper

        counter = two_host_cluster.on(0).new(SharedCounter)   # daemon A
        bumper = two_host_cluster.on(3).new(Bumper)           # daemon B
        assert bumper.bump(counter) == 1                      # B -> A call
        assert counter.get() == 1

    def test_daemon_stdout_is_forwarded_to_driver_logging(
            self, tmp_path, caplog):
        with caplog.at_level(logging.INFO, logger="oopp.tcp.host0"):
            with oopp.Cluster(n_machines=1, backend="tcp",
                              storage_root=str(tmp_path / "root")):
                pass
        forwarded = [r.message for r in caplog.records
                     if r.name == "oopp.tcp.host0"]
        assert any("machine 0 listening" in m for m in forwarded)


class TestShutdown:
    def test_calls_after_shutdown_fail_cleanly(self, tmp_path):
        cluster = oopp.Cluster(n_machines=2, backend="tcp",
                               storage_root=str(tmp_path / "root"))
        counter = cluster.on(0).new(SharedCounter)
        cluster.shutdown()
        with pytest.raises(MachineDownError, match="shut down"):
            cluster.fabric.ping(0)
        with pytest.raises(MachineDownError, match="shut down"):
            counter.get()

    def test_daemon_process_exits_on_shutdown(self, tmp_path):
        cluster = oopp.Cluster(n_machines=1, backend="tcp",
                               storage_root=str(tmp_path / "root"))
        host = cluster.fabric._host_clients[0]
        proc = host.proc
        cluster.shutdown()
        assert proc.poll() is not None  # reaped: reconnects are refused

    def test_machine_port_refuses_after_shutdown(self, tmp_path):
        cluster = oopp.Cluster(n_machines=1, backend="tcp",
                               storage_root=str(tmp_path / "root"))
        addr = cluster.fabric._addrs[0]
        cluster.shutdown()
        with pytest.raises(OSError):
            socket.create_connection(addr, timeout=2.0).close()


def _spawn_raw_daemon():
    """A daemon outside any fabric, for protocol-level poking."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.backends.tcp", "--daemon"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        text=True, bufsize=1)
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise AssertionError("daemon died before its ready line")
        if line.startswith(READY_PREFIX):
            fields = dict(p.split("=", 1) for p in line.split() if "=" in p)
            return proc, int(fields["port"])
        assert time.monotonic() < deadline


class TestControlProtocol:
    def test_ready_line_names_port_fingerprint_pid(self):
        proc, port = _spawn_raw_daemon()
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=10)
            sock.close()  # EOF without handshake: daemon self-terminates
            assert proc.wait(timeout=10) is not None
        finally:
            proc.kill()

    def test_protocol_rev_mismatch_is_refused(self):
        proc, port = _spawn_raw_daemon()
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=10)
            _send_json(sock, {"type": "handshake", "rev": PROTOCOL_REV + 1})
            reply = json.loads(_LineReader(sock).readline(timeout=10))
            assert reply["type"] == "error"
            assert "rev" in reply["message"]
            sock.close()
            assert proc.wait(timeout=10) is not None
        finally:
            proc.kill()

    def test_pre_started_daemon_attach(self, tmp_path):
        """HostSpec(port=...) attaches instead of spawning — the path
        for daemons the operator starts out of band."""
        proc, port = _spawn_raw_daemon()
        try:
            with oopp.Cluster(
                    hosts=[oopp.HostSpec("localhost", machines=2,
                                         port=port)],
                    storage_root=str(tmp_path / "root")) as cluster:
                # The cluster did not spawn anything itself ...
                assert cluster.fabric._host_clients[0].proc is None
                assert cluster.ping_all() == [0, 1]
            # ... and cluster shutdown stops the external daemon too.
            assert proc.wait(timeout=10) is not None
        finally:
            proc.kill()

    def test_host_spec_port_string_form(self):
        spec = oopp.HostSpec.parse("localhost:7777/2")
        assert (spec.addr, spec.port, spec.machines) == ("localhost", 7777, 2)


class TestHandshakeErrors:
    def test_welcome_must_echo_digest(self, monkeypatch, tmp_path):
        """A daemon answering with a different config digest aborts
        bootstrap with HandshakeError (not an obscure first-call crash)."""
        from repro.backends import tcp as tcp_mod

        real = tcp_mod._recv_json

        def corrupt(reader, timeout=None):
            msg = real(reader, timeout)
            if msg.get("type") == "welcome":
                msg["config_digest"] = "0" * 64
            return msg

        monkeypatch.setattr(tcp_mod, "_recv_json", corrupt)
        with pytest.raises(HandshakeError, match="digest"):
            oopp.Cluster(n_machines=1, backend="tcp",
                         storage_root=str(tmp_path / "root"))
