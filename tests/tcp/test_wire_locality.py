"""Host-locality on the wire: shm/pub descriptors never cross hosts.

Loopback daemons share the driver's host fingerprint, so zero-copy
stays on; a peer with a *different* fingerprint must get inline
payloads.  The cross-host cases are driven by faking fingerprints —
the descriptor-refusal backstop for a descriptor that slips through
anyway lives in the transport suites (test_shm/test_pub)."""

from __future__ import annotations

import dataclasses

import pytest

import repro as oopp
from repro.check.examples import SharedCounter
from repro.transport.socket_channel import WireOptions
from repro.util.hostid import host_fingerprint

pytestmark = pytest.mark.tcp


class Echo:
    @oopp.readonly
    def size(self, blob) -> int:
        return len(blob)

    @oopp.readonly
    def roundtrip(self, blob) -> bytes:
        return bytes(blob)


class TestSameHostKeepsZeroCopy:
    def test_driver_options_toward_loopback_daemon(self, tcp_cluster):
        options = tcp_cluster.fabric._options_for(0)
        base = WireOptions.from_config(tcp_cluster.config)
        assert options.shm_enabled == base.shm_enabled
        assert options.pub_descriptors is True

    def test_large_payloads_round_trip(self, two_host_cluster):
        echo = two_host_cluster.on(3).new(Echo)
        blob = bytes(range(256)) * 4096  # 1 MiB: over any shm threshold
        assert echo.size(blob) == len(blob)
        assert echo.roundtrip(blob) == blob

    def test_publication_descriptors_cross_codaemons(self, two_host_cluster):
        """Both daemons run on this box, so a published value still
        ships as a descriptor and attaches via shm on each daemon."""
        payload = list(range(50_000))
        handle = two_host_cluster.publish(payload)
        try:
            sizes = [two_host_cluster.on(m).new(Echo).size(handle)
                     for m in (0, 3)]
            assert sizes == [len(payload)] * 2
        finally:
            handle.unpublish()


class TestForeignHostDowngrades:
    def test_driver_downgrades_for_foreign_fingerprint(self, tcp_cluster):
        fabric = tcp_cluster.fabric
        fabric._fingerprints[1] = "f" * 16  # pretend m1 is on another box
        try:
            options = fabric._options_for(1)
            assert options.shm_enabled is False
            assert options.pub_descriptors is False
            # Other machines keep the local fast path.
            assert fabric._options_for(0).pub_descriptors is True
        finally:
            fabric._fingerprints[1] = host_fingerprint()

    def test_machine_server_downgrades_for_foreign_peer(self, tmp_path):
        from repro.backends.mp import MachineServer

        config = oopp.Config(n_machines=2, backend="mp")
        server = MachineServer(0, config)
        try:
            server.peer_fingerprints[1] = "f" * 16
            foreign = server.options_for_peer(1)
            assert foreign.shm_enabled is False
            assert foreign.pub_descriptors is False
            server.peer_fingerprints[1] = host_fingerprint()
            local = server.options_for_peer(1)
            assert local.pub_descriptors is True
        finally:
            server.kernel.stop_event.set()
            server.listener.close()

    def test_suppressed_publication_encodes_by_value(self):
        """The downgrade path: with descriptors suppressed the handle
        pickles to the published value itself, so a foreign host gets a
        plain payload it can always decode."""
        import pickle

        from repro.transport import pub

        value = {"k": list(range(100))}
        handle = pub.registry().publish(value, protocol=5, backing="local")
        try:
            with pub.suppress_descriptors():
                clone = pickle.loads(pickle.dumps(handle, protocol=5))
            assert clone == value
            assert not isinstance(clone, pub.Publication)
        finally:
            handle.unpublish()

    def test_wire_options_field_defaults_on(self):
        assert WireOptions().pub_descriptors is True
        off = dataclasses.replace(WireOptions(), pub_descriptors=False)
        assert off.pub_descriptors is False


class TestObservabilityRidesAlong:
    def test_trace_spans_cross_the_tcp_wire(self, tmp_path):
        with oopp.Cluster(n_machines=2, backend="tcp",
                          trace=True,
                          storage_root=str(tmp_path / "root")) as cluster:
            counter = cluster.on(1).new(SharedCounter)
            counter.add(1)
            spans = cluster.trace_spans()
        kinds = {(s.kind, s.machine) for s in spans}
        # Client spans recorded at the driver, server spans on the
        # daemon's machine — gathered over the wire via take_spans.
        assert ("client", -1) in kinds
        assert ("server", 1) in kinds

    def test_race_reports_cross_the_tcp_wire(self, tmp_path):
        with oopp.Cluster(n_machines=3, backend="tcp",
                          check=oopp.CheckConfig(race_detect=True),
                          storage_root=str(tmp_path / "root")) as cluster:
            from repro.check.examples import atomic_increments

            atomic_increments(cluster)
            reports = cluster.race_reports()
        assert reports, "pipelined adds must be flagged on tcp too"
        assert reports[0]["machine"] == 0
