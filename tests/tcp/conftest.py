"""Fixtures for the tcp-backend suite: loopback daemon clusters."""

from __future__ import annotations

import pytest

import repro as oopp


@pytest.fixture
def tcp_cluster(tmp_path):
    """One loopback daemon hosting three machines."""
    with oopp.Cluster(n_machines=3, backend="tcp", call_timeout_s=60.0,
                      storage_root=str(tmp_path / "root")) as cluster:
        yield cluster


@pytest.fixture
def two_host_cluster(tmp_path):
    """Two loopback daemons (separate OS processes), two machines each —
    the smallest cluster where host-level failure is distinct from
    machine-level failure."""
    with oopp.Cluster(hosts=["localhost/2", "localhost/2"],
                      call_timeout_s=60.0,
                      storage_root=str(tmp_path / "root")) as cluster:
        yield cluster
