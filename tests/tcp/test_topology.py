"""Host-aware addressing: ``Cluster(hosts=...)``, ``on("host/k")``,
``MachineHandle.host``, and the topology config surface."""

from __future__ import annotations

import warnings

import pytest

import repro as oopp
from repro.config import Config, TopologyConfig
from repro.errors import ConfigError, NoSuchMachineError

pytestmark = pytest.mark.tcp


class TestHostSpecParsing:
    def test_bare_addr(self):
        spec = oopp.HostSpec.parse("hostA")
        assert (spec.addr, spec.machines) == ("hostA", 1)

    def test_addr_with_count(self):
        spec = oopp.HostSpec.parse("hostA/3")
        assert (spec.addr, spec.machines) == ("hostA", 3)

    def test_existing_spec_passes_through(self):
        spec = oopp.HostSpec("hostB", machines=2)
        assert oopp.HostSpec.parse(spec) is spec

    def test_resolved_hosts_defaults_to_one_local_host(self):
        assert TopologyConfig().resolved_hosts(4) == [
            oopp.HostSpec("localhost", machines=4)]

    def test_resolved_hosts_must_cover_n_machines(self):
        topo = TopologyConfig(hosts=[oopp.HostSpec("a", machines=2)])
        with pytest.raises(ConfigError):
            topo.resolved_hosts(5)


class TestClusterHostsKwarg:
    def test_hosts_implies_tcp_and_machine_total(self, tmp_path):
        with oopp.Cluster(hosts=["localhost/2", "localhost"],
                          storage_root=str(tmp_path / "root")) as cluster:
            assert cluster.config.backend == "tcp"
            assert cluster.n_machines == 3

    def test_explicit_backend_wins_over_hosts_default(self, tmp_path):
        with oopp.Cluster(hosts=["localhost/3"], backend="inline",
                          storage_root=str(tmp_path / "root")) as cluster:
            assert cluster.config.backend == "inline"
            assert cluster.n_machines == 3

    def test_n_machines_must_agree_with_hosts(self):
        with pytest.raises(ConfigError, match="disagrees"):
            oopp.Cluster(n_machines=5, hosts=["a/2", "b/2"])

    def test_legacy_flat_hosts_kwarg_still_works_with_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cfg = Config(hosts=[oopp.HostSpec("localhost", machines=2)],
                         n_machines=2)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert cfg.topology.hosts[0].machines == 2


class TestAddressing:
    def test_handles_report_their_host(self, two_host_cluster):
        assert [two_host_cluster.on(i).host for i in range(4)] == [
            "localhost"] * 4

    def test_on_accepts_host_strings(self, two_host_cluster):
        # Two topology entries share the addr, so "localhost/k" indexes
        # across both daemons' machines in placement order.
        assert [two_host_cluster.on(f"localhost/{k}").id
                for k in range(4)] == [0, 1, 2, 3]

    def test_local_alias_pools_local_hosts(self, two_host_cluster):
        # "127.0.0.1" isn't spelled in the topology but is local, so it
        # falls back to the pooled local machines.
        assert two_host_cluster.on("127.0.0.1/3").id == 3

    def test_unknown_host_is_rejected(self, two_host_cluster):
        with pytest.raises(NoSuchMachineError, match="not part of this"):
            two_host_cluster.on("hostZ/0")

    def test_out_of_range_index_is_rejected(self, two_host_cluster):
        with pytest.raises(NoSuchMachineError, match="out of range"):
            two_host_cluster.on("localhost/4")

    def test_single_host_backends_accept_local_strings(self, tmp_path):
        with oopp.Cluster(n_machines=3, backend="inline",
                          storage_root=str(tmp_path / "root")) as cluster:
            assert cluster.on("localhost/2").id == 2
            assert cluster.on(1).host == "localhost"
            with pytest.raises(NoSuchMachineError):
                cluster.on("hostZ/0")


class TestBackendRegistry:
    def test_all_four_backends_registered(self):
        assert set(oopp.available_backends()) >= {"inline", "mp", "sim",
                                                  "tcp"}

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(ConfigError, match="registered backends"):
            Config(backend="carrier-pigeon").validate()

    def test_custom_backend_plugs_in(self):
        from repro.backends.registry import unregister_backend

        calls = []

        def factory(config):
            calls.append(config.backend)
            from repro.backends.inline import InlineFabric
            return InlineFabric(config)

        oopp.register_backend("custom-test", factory)
        try:
            with oopp.Cluster(n_machines=2,
                              backend="custom-test") as cluster:
                assert cluster.ping_all() == [0, 1]
            assert calls == ["custom-test"]
        finally:
            unregister_backend("custom-test")

    def test_duplicate_registration_is_refused(self):
        with pytest.raises(ConfigError, match="already registered"):
            oopp.register_backend("tcp", lambda cfg: None)


class TestPerHostMetrics:
    def test_metrics_carry_host_rollups(self, two_host_cluster):
        from repro.check.examples import SharedCounter

        counter = two_host_cluster.on(2).new(SharedCounter)
        counter.add(1)
        metrics = two_host_cluster.metrics()
        host_keys = [k for k in metrics if k.startswith("host ")]
        assert len(host_keys) == 2
        rollup = metrics["host 1 (localhost)"]
        assert rollup["machines"] == [2, 3]
        assert rollup["fingerprint"]
        assert isinstance(rollup["totals"], dict)
