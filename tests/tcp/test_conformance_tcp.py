"""tcp is the fourth implementation of the one semantics: the examples
corpus must digest identically across inline/sim/mp/tcp."""

from __future__ import annotations

import pytest

from repro.check.conformance import ALL_BACKENDS, conformance, run_program
from repro.check.examples import atomic_increments, safe_increments

pytestmark = pytest.mark.tcp

KW = {"call_timeout_s": 60.0}


def test_tcp_is_in_the_default_backend_set():
    assert ALL_BACKENDS == ("inline", "sim", "mp", "tcp")


@pytest.mark.parametrize("program", [safe_increments, atomic_increments])
def test_examples_corpus_digests_match(program):
    report = conformance(program, **KW)
    assert report.consistent, report.summary()
    digests = {o.digest for o in report.outcomes}
    assert len(digests) == 1
    assert [o.backend for o in report.outcomes] == list(ALL_BACKENDS)


def test_tcp_outcome_matches_inline_outcome():
    tcp = run_program(safe_increments, "tcp", **KW)
    inline = run_program(safe_increments, "inline", **KW)
    assert tcp.digest == inline.digest
    assert tcp.result_repr == "2"
    assert tcp.objects_per_machine == [1, 1, 1]
