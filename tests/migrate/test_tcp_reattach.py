"""Cross-host migration on tcp: state, publications and shm re-attach.

Two loopback daemons (separate OS processes) stand in for two boxes.
After an object migrates from one daemon's machine to the other's, the
wire-locality layer must re-validate zero-copy resources against the
*new* host's fingerprint: published arguments still attach, large
payloads still round-trip, and a daemon faked to be "foreign" ships
inline payloads instead of descriptors — exactly as for a freshly
created object there.
"""

from __future__ import annotations

import pytest

import repro as oopp

pytestmark = pytest.mark.tcp


@pytest.fixture
def two_host_cluster(tmp_path):
    with oopp.Cluster(hosts=["localhost/2", "localhost/2"],
                      call_timeout_s=60.0,
                      storage_root=str(tmp_path / "root")) as cluster:
        yield cluster


class Keeper:
    def __init__(self, tag):
        self.tag = tag
        self.seen = 0

    def measure(self, blob):
        self.seen += 1
        return (self.tag, len(blob))

    def echo(self, blob):
        return bytes(blob)

    def hits(self):
        return self.seen


class TestCrossHostMigration:
    def test_state_survives_the_host_boundary(self, two_host_cluster):
        p = two_host_cluster.on(0).new(Keeper, "roam")  # host A
        p.measure(b"x" * 10)
        two_host_cluster.migrate(p, 3)                  # host B
        assert oopp.ref_of(p).machine == 3
        assert two_host_cluster.on(3).host == "localhost"
        assert p.measure(b"y" * 5) == ("roam", 5)
        assert p.hits() == 2

    def test_publication_reattaches_on_new_host(self, two_host_cluster):
        payload = list(range(50_000))
        handle = two_host_cluster.publish(payload)
        try:
            p = two_host_cluster.on(0).new(Keeper, "pub")
            assert p.measure(handle) == ("pub", len(payload))
            two_host_cluster.migrate(p, 2)  # across the daemon boundary
            # the descriptor must attach on the destination daemon too
            assert p.measure(handle) == ("pub", len(payload))
        finally:
            handle.unpublish()

    def test_large_payload_roundtrip_after_migration(self, two_host_cluster):
        p = two_host_cluster.on(1).new(Keeper, "shm")
        blob = bytes(range(256)) * 4096  # 1 MiB: over any shm threshold
        assert p.echo(blob) == blob
        two_host_cluster.migrate(p, 3)
        assert p.echo(blob) == blob

    def test_stale_proxy_hops_across_daemons(self, two_host_cluster):
        p = two_host_cluster.on(0).new(Keeper, "hop")
        stale = oopp.Proxy(oopp.ref_of(p), two_host_cluster.fabric)
        two_host_cluster.migrate(p, 3)
        assert stale.measure(b"z") == ("hop", 1)
        assert oopp.ref_of(stale).machine == 3

    def test_foreign_fingerprint_downgrades_after_move(self, two_host_cluster):
        """Migrating toward a machine whose host reads as foreign must
        fall back to inline payloads — same downgrade as at creation."""
        from repro.util.hostid import host_fingerprint

        fabric = two_host_cluster.fabric
        p = two_host_cluster.on(0).new(Keeper, "foreign")
        two_host_cluster.migrate(p, 3)
        fabric._fingerprints[3] = "f" * 16  # pretend host B is remote
        try:
            options = fabric._options_for(3)
            assert options.pub_descriptors is False
            assert options.shm_enabled is False
            # inline payloads still reach the migrated object
            assert p.measure(b"q" * 3) == ("foreign", 3)
        finally:
            fabric._fingerprints[3] = host_fingerprint()
