"""Live migration: quiesce-drain, forwarding hops, group fan-out.

The contract under test (docs/MIGRATION.md): ``cluster.migrate`` moves
an object between machines while calls are in flight, and no caller
can tell — in-flight calls drain before the snapshot, calls landing in
the freeze window park and re-resolve, stale proxies pay one
forwarding hop and rebind.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro as oopp
from repro.errors import (
    ConfigError,
    NoSuchObjectError,
    ObjectDestroyedError,
)


class Counter:
    def __init__(self, n=0):
        self.n = n

    def add(self, d=1):
        self.n += d
        return self.n

    def get(self):
        return self.n


class SlowCounter(Counter):
    def add(self, d=1):
        time.sleep(0.05)
        self.n += d
        return self.n


class TestTransparency:
    def test_migrate_preserves_state_and_rebinds(self, any_cluster):
        p = any_cluster.on(0).new(Counter, 10)
        p.add(5)
        q = any_cluster.migrate(p, 2)
        assert q is p  # the passed proxy is rebound in place
        assert oopp.ref_of(p).machine == 2
        assert p.get() == 15
        p.add(1)
        assert p.get() == 16

    def test_stale_proxy_pays_one_hop_then_rebinds(self, any_cluster):
        p = any_cluster.on(0).new(Counter)
        stale = oopp.Proxy(oopp.ref_of(p), any_cluster.fabric)
        any_cluster.migrate(p, 1)
        assert oopp.ref_of(stale).machine == 0  # not rebound yet
        assert stale.add(7) == 7                # hop re-resolves the call
        assert oopp.ref_of(stale).machine == 1  # and rebinds the proxy
        assert p.get() == 7

    def test_stale_future_re_resolves(self, any_cluster):
        p = any_cluster.on(0).new(Counter)
        stale = oopp.Proxy(oopp.ref_of(p), any_cluster.fabric)
        any_cluster.migrate(p, 2)
        f = stale.add.future(3)
        assert f.result() == 3
        assert oopp.ref_of(stale).machine == 2

    def test_migrate_to_same_machine_is_noop(self, any_cluster):
        p = any_cluster.on(1).new(Counter, 4)
        assert any_cluster.migrate(p, 1) is p
        assert oopp.ref_of(p).machine == 1
        assert p.get() == 4

    def test_chained_migrations_bounded_hops(self, any_cluster):
        p = any_cluster.on(0).new(Counter)
        stale = oopp.Proxy(oopp.ref_of(p), any_cluster.fabric)
        # two moves: the stale proxy must chase a two-entry forward chain
        any_cluster.migrate(p, 1)
        any_cluster.migrate(p, 2)
        assert stale.add(1) == 1
        assert oopp.ref_of(stale).machine == 2

    def test_destroy_follows_forward(self, any_cluster):
        p = any_cluster.on(0).new(Counter)
        stale = oopp.Proxy(oopp.ref_of(p), any_cluster.fabric)
        any_cluster.migrate(p, 1)
        oopp.destroy(stale)  # addressed to the old home; must hop
        with pytest.raises(ObjectDestroyedError):
            p.get()

    def test_migrate_by_bare_ref(self, any_cluster):
        p = any_cluster.on(0).new(Counter, 1)
        ref = oopp.ref_of(p)
        bare = oopp.ObjectRef(machine=ref.machine, oid=ref.oid, spec=None)
        q = any_cluster.migrate(bare, 2)
        assert oopp.ref_of(q).machine == 2
        assert q.get() == 1


class TestQuiesce:
    def test_inflight_writers_land_exactly_once(self, mp_cluster):
        """Racing writers across two migrations: every add lands once."""
        p = mp_cluster.on(0).new(SlowCounter)
        errors = []

        def writer():
            prox = oopp.Proxy(oopp.ref_of(p), mp_cluster.fabric)
            try:
                for _ in range(8):
                    prox.add()
            except Exception as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.1)  # land some calls mid-flight
        mp_cluster.migrate(p, 1)
        mp_cluster.migrate(p, 2)
        for t in threads:
            t.join()
        assert errors == []
        assert p.get() == 32

    def test_migrate_during_group_fanout(self, mp_cluster):
        """A pipelined group fan-out survives a member migrating away."""
        group = mp_cluster.new_group(SlowCounter, 6)
        futures = group.futures("add", 5)
        # move the machine-0 members while their adds are in flight
        for member in list(group):
            if oopp.ref_of(member).machine == 0:
                mp_cluster.migrate(member, 1)
        assert [f.result() for f in futures] == [5] * 6
        assert group.invoke("get") == [5] * 6


class TestErrors:
    def test_kernel_cannot_migrate(self, any_cluster):
        with pytest.raises(ConfigError):
            any_cluster.migrate(any_cluster.fabric.kernel_ref(0), 1)

    def test_unknown_oid(self, any_cluster):
        with pytest.raises(NoSuchObjectError):
            any_cluster.migrate(
                oopp.ObjectRef(machine=0, oid=999999, spec=None), 1)

    def test_destroyed_object_cannot_migrate(self, any_cluster):
        p = any_cluster.on(0).new(Counter)
        ref = oopp.ref_of(p)
        oopp.destroy(p)
        with pytest.raises(ObjectDestroyedError):
            any_cluster.migrate(ref, 1)

    def test_migrate_counters_surface(self, any_cluster):
        p = any_cluster.on(0).new(Counter)
        stale = oopp.Proxy(oopp.ref_of(p), any_cluster.fabric)
        any_cluster.migrate(p, 1)
        stale.get()
        metrics = any_cluster.metrics()
        driver = metrics.get("driver", {})
        assert driver.get("migrate", {}).get("moves", 0) >= 1


class TestPersistence:
    def test_persisted_object_follows_migration(self, any_cluster):
        p = any_cluster.on(0).new(Counter, 9)
        addr = any_cluster.persist(p, "roaming")
        any_cluster.migrate(p, 2)
        again = any_cluster.lookup(addr)
        assert oopp.ref_of(again).machine == 2
        assert again.get() == 9
