"""Every test under tests/migrate/ carries the ``migrate`` marker.

Run only the live-migration suite with ``pytest -m migrate``, or
exclude it from a quick pass with ``pytest -m "not migrate"``.
"""

from __future__ import annotations

import pathlib

import pytest

_MIGRATE_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    for item in items:
        if _MIGRATE_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.migrate)
