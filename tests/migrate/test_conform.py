"""The migration-interleaved conformance gate, as a pytest.

CI also runs the CLI form (``python -m repro.check conform
--migrations N``) against mp and loopback tcp; here the cheap backends
prove the harness itself — including that it *can* fail: a program
that leaks placement into its result must diverge from baseline.
"""

from __future__ import annotations

import repro as oopp
from repro.check.examples import counter_farm, safe_increments
from repro.check.migrate import migrate_conformance


class TestGate:
    def test_counter_farm_consistent(self):
        report = migrate_conformance(
            counter_farm, backends=("inline", "sim"), seeds=(0, 1),
            migrations=3)
        assert report.consistent, report.summary()
        migrated = [o for o in report.outcomes if o.seed is not None]
        assert migrated and all(o.migrations == 3 for o in migrated)

    def test_safe_increments_consistent(self):
        report = migrate_conformance(
            safe_increments, backends=("inline",), seeds=(0, 1, 2),
            migrations=2)
        assert report.consistent, report.summary()

    def test_baseline_measures_call_count(self):
        # counter_farm: 12 adds + 4 gets = 16 driver object calls, so
        # requesting more migrations than calls clamps, not crashes.
        report = migrate_conformance(
            counter_farm, backends=("inline",), seeds=(0,),
            migrations=99)
        assert report.consistent, report.summary()
        migrated = [o for o in report.outcomes if o.seed is not None]
        assert migrated[0].migrations > 3


def placement_leaker(cluster):
    """Anti-program: returns *where* the object lives — the one thing
    migration legitimately changes."""
    p = cluster.on(0).new(oopp.Block, 4, "float64", 0)
    for _ in range(4):
        len(p)
    return oopp.ref_of(p).machine


class TestGateCanFail:
    def test_placement_leak_diverges(self):
        report = migrate_conformance(
            placement_leaker, backends=("inline",), seeds=(0, 1, 2, 3),
            migrations=3)
        assert not report.consistent, report.summary()
