"""Property: any migrate/call/destroy interleaving leaves one replica.

Hypothesis drives random operation sequences against one object on an
inline cluster (real tables, real kernels, full serde — just no extra
processes) and checks the lifecycle invariants after every step:

* the object is hosted by **exactly one** machine while alive, and by
  none after a destroy — migration can never fork or lose a replica;
* observed state equals a model counter — calls land exactly once no
  matter how many forwards they chased;
* after a destroy every proxy raises ``ObjectDestroyedError`` and
  nothing stays parked in a migration freeze;
* no shared-memory segments leak, whatever order moves and destroys
  interleave in.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro as oopp
from repro.errors import ObjectDestroyedError
from repro.transport import shm

N_MACHINES = 3

#: one step: migrate to machine k, call through a (possibly stale)
#: proxy snapshot, refresh the stale proxy, or destroy the object.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("migrate"),
                  st.integers(min_value=0, max_value=N_MACHINES - 1)),
        st.tuples(st.just("call"), st.just(0)),
        st.tuples(st.just("call_stale"), st.just(0)),
        st.tuples(st.just("destroy"), st.just(0)),
    ),
    min_size=1, max_size=12)


class Cell:
    def __init__(self):
        self.n = 0

    def add(self):
        self.n += 1
        return self.n

    def get(self):
        return self.n


def _replica_count(cluster) -> int:
    """Hosted (non-kernel) objects across the whole cluster — with a
    single test object, its replica count.  Counting every table (not
    just the proxy's current machine) is what catches a fork: a move
    that copied instead of moved shows up as 2."""
    return sum(len(cluster.fabric.table_of(m).oids())
               for m in range(N_MACHINES))


def _frozen_count(cluster) -> int:
    """Objects parked mid-migration anywhere in the cluster."""
    return sum(len(cluster.fabric.table_of(m)._migrating)
               for m in range(N_MACHINES))


class TestLifecycleInvariants:
    @given(ops=OPS)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_exactly_one_replica_and_no_lost_updates(self, ops):
        segments_before = shm.manager().stats().get("segments", 0)
        with oopp.Cluster(n_machines=N_MACHINES, backend="inline") as cluster:
            proxy = cluster.on(0).new(Cell)
            stale = oopp.Proxy(oopp.ref_of(proxy), cluster.fabric)
            model = 0
            alive = True
            for op, arg in ops:
                if op == "migrate" and alive:
                    dest = arg
                    cluster.migrate(proxy, dest)
                    assert oopp.ref_of(proxy).machine == dest
                elif op == "call":
                    if alive:
                        model += 1
                        assert proxy.add() == model
                    else:
                        with pytest.raises(ObjectDestroyedError):
                            proxy.add()
                elif op == "call_stale":
                    if alive:
                        model += 1
                        assert stale.add() == model
                        # the hop rebinds: refresh our stale snapshot
                        stale = oopp.Proxy(oopp.ref_of(proxy),
                                           cluster.fabric)
                    else:
                        with pytest.raises(ObjectDestroyedError):
                            stale.add()
                elif op == "destroy" and alive:
                    oopp.destroy(proxy)
                    alive = False
                # the core invariant, after every single step:
                assert _replica_count(cluster) == (1 if alive else 0)
                if alive:
                    ref = oopp.ref_of(proxy)
                    table = cluster.fabric.table_of(ref.machine)
                    assert ref.oid in table.oids()
                assert _frozen_count(cluster) == 0
            if alive:
                assert proxy.get() == model
        segments_after = shm.manager().stats().get("segments", 0)
        assert segments_after <= segments_before  # nothing leaked
