"""The Rebalancer: per-object gauges in, hot-spot moves out."""

from __future__ import annotations

import time

import pytest

import repro as oopp
from repro.runtime.rebalance import Move, Rebalancer


class Worker:
    def __init__(self):
        self.calls = 0

    def work(self):
        self.calls += 1
        return self.calls


def _hammer(proxy, n):
    for _ in range(n):
        proxy.work()


class TestGauges:
    def test_per_object_gauges_reach_stats(self, any_cluster):
        p = any_cluster.on(0).new(Worker)
        oid = oopp.ref_of(p).oid
        _hammer(p, 5)
        serve = any_cluster.on(0).stats().get("serve") or {}
        gauges = (serve.get("per_object") or {}).get(oid)
        assert gauges is not None
        assert gauges["admitted"] >= 5
        assert gauges["shed"] == 0

    def test_observe_returns_deltas(self, inline_cluster):
        p = inline_cluster.on(0).new(Worker)
        rb = inline_cluster.rebalancer()
        _hammer(p, 4)
        first = rb.observe()
        assert sum(first[0].values()) >= 4
        # no traffic since: the next window must be empty for machine 0
        assert sum(rb.observe()[0].values()) == 0


class TestProposals:
    def test_hot_machine_sheds_an_object(self, inline_cluster):
        hot_a = inline_cluster.on(0).new(Worker)
        hot_b = inline_cluster.on(0).new(Worker)
        inline_cluster.on(1).new(Worker)  # idle elsewhere
        rb = inline_cluster.rebalancer(min_calls=8, threshold=1.5)
        _hammer(hot_a, 20)
        _hammer(hot_b, 10)
        moves = rb.propose()
        assert len(moves) == 1
        mv = moves[0]
        assert mv.src == 0 and mv.dest != 0
        assert mv.oid in {oopp.ref_of(hot_a).oid, oopp.ref_of(hot_b).oid}

    def test_balanced_load_proposes_nothing(self, inline_cluster):
        workers = [inline_cluster.on(m).new(Worker)
                   for m in range(inline_cluster.n_machines)]
        rb = inline_cluster.rebalancer(min_calls=8)
        for w in workers:
            _hammer(w, 10)
        assert rb.propose() == []

    def test_tiny_samples_ignored(self, inline_cluster):
        p = inline_cluster.on(0).new(Worker)
        rb = inline_cluster.rebalancer(min_calls=50)
        _hammer(p, 10)  # hot in ratio, but under the sample floor
        assert rb.propose() == []

    def test_apply_moves_the_object(self, inline_cluster):
        hot = inline_cluster.on(0).new(Worker)
        rb = inline_cluster.rebalancer(min_calls=4)
        _hammer(hot, 12)
        applied = rb.apply()
        assert len(applied) == 1
        table = inline_cluster.fabric.table_of(applied[0].dest)
        assert applied[0].oid in table.oids()
        # the stale driver proxy still works, via the forwarding hop
        assert hot.work() == 13

    def test_apply_tolerates_vanished_object(self, inline_cluster):
        applied = inline_cluster.rebalancer().apply(
            [Move(oid=424242, src=0, dest=1, load=99)])
        assert applied == []


class TestBackgroundLoop:
    def test_start_stop(self, mp_cluster):
        def moves() -> int:
            driver = mp_cluster.metrics().get("driver") or {}
            return int((driver.get("migrate") or {}).get("moves", 0))

        hot = mp_cluster.on(0).new(Worker)
        rb = mp_cluster.rebalancer(min_calls=4)
        rb.start(interval_s=0.1)
        try:
            _hammer(hot, 20)
            deadline = time.time() + 5.0
            while time.time() < deadline and moves() < 1:
                hot.work()  # keep the object hot until the loop fires
                time.sleep(0.02)
            assert moves() >= 1
            assert hot.work() > 20  # still serving, wherever it lives
        finally:
            rb.stop()
        assert rb._thread is None

    def test_double_start_rejected(self, inline_cluster):
        rb = inline_cluster.rebalancer()
        rb.start(interval_s=10.0)
        try:
            with pytest.raises(oopp.errors.RuntimeLayerError):
                rb.start(interval_s=10.0)
        finally:
            rb.stop()

    def test_bad_knobs_rejected(self, inline_cluster):
        with pytest.raises(ValueError):
            inline_cluster.rebalancer(threshold=0.5)
        with pytest.raises(ValueError):
            inline_cluster.rebalancer(min_calls=0)
        with pytest.raises(ValueError):
            Rebalancer(inline_cluster, max_moves=0)
