"""Domain algebra: geometry, intersection, tiling — with properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DomainError
from repro.storage.domain import Domain, full_domain

bounds = st.tuples(st.integers(-20, 20), st.integers(0, 25)).map(
    lambda t: (t[0], t[0] + t[1]))


@st.composite
def domains(draw):
    (l1, h1), (l2, h2), (l3, h3) = draw(bounds), draw(bounds), draw(bounds)
    return Domain(l1, h1, l2, h2, l3, h3)


page_shapes = st.tuples(st.integers(1, 7), st.integers(1, 7),
                        st.integers(1, 7))


class TestBasics:
    def test_paper_constructor_order(self):
        d = Domain(1, 4, 2, 8, 3, 9)
        assert d.lo == (1, 2, 3) and d.hi == (4, 8, 9)
        assert d.shape == (3, 6, 6)
        assert d.size == 108

    def test_inverted_bounds_rejected(self):
        with pytest.raises(DomainError):
            Domain(4, 1, 0, 1, 0, 1)

    def test_from_shape(self):
        d = Domain.from_shape((2, 3, 4), origin=(1, 1, 1))
        assert d == Domain(1, 3, 1, 4, 1, 5)

    def test_negative_shape_rejected(self):
        with pytest.raises(DomainError):
            Domain.from_shape((-1, 2, 2))

    def test_empty(self):
        assert Domain(0, 0, 0, 5, 0, 5).empty
        assert not full_domain(1, 1, 1).empty

    def test_contains_point(self):
        d = Domain(0, 2, 0, 2, 0, 2)
        assert d.contains_point(1, 1, 1)
        assert not d.contains_point(2, 0, 0)

    def test_slices_select_numpy_region(self):
        a = np.arange(4 * 4 * 4).reshape(4, 4, 4)
        d = Domain(1, 3, 0, 2, 2, 4)
        assert a[d.slices].shape == d.shape

    def test_shift_and_relative(self):
        d = Domain(2, 4, 2, 4, 2, 4)
        assert d.shift(1, -1, 0) == Domain(3, 5, 1, 3, 2, 4)
        assert d.relative_to((2, 2, 2)) == Domain(0, 2, 0, 2, 0, 2)


class TestAlgebra:
    def test_intersect_overlapping(self):
        a = Domain(0, 4, 0, 4, 0, 4)
        b = Domain(2, 6, 1, 3, 0, 4)
        assert a.intersect(b) == Domain(2, 4, 1, 3, 0, 4)

    def test_intersect_disjoint_is_empty(self):
        a = Domain(0, 2, 0, 2, 0, 2)
        b = Domain(5, 7, 0, 2, 0, 2)
        assert a.intersect(b).empty
        assert not a.overlaps(b)

    def test_contains_domain(self):
        big = full_domain(10, 10, 10)
        assert big.contains(Domain(1, 2, 3, 4, 5, 6))
        assert not big.contains(Domain(5, 11, 0, 1, 0, 1))
        assert big.contains(Domain(0, 0, 0, 0, 0, 0))  # empty always fits

    @given(domains(), domains())
    @settings(max_examples=80, deadline=None)
    def test_intersection_properties(self, a, b):
        inter = a.intersect(b)
        assert a.intersect(b) == b.intersect(a)
        assert a.contains(inter) and b.contains(inter)
        for p in list(inter.points())[:20]:
            assert a.contains_point(*p) and b.contains_point(*p)

    @given(domains())
    @settings(max_examples=50, deadline=None)
    def test_self_intersection_is_identity(self, d):
        if not d.empty:
            assert d.intersect(d) == d


class TestTiling:
    @given(domains(), page_shapes)
    @settings(max_examples=80, deadline=None)
    def test_tiles_partition_domain_exactly(self, d, page):
        """Tiles are disjoint, non-empty, and cover the domain exactly."""
        seen = set()
        total = 0
        for (pi, pj, pk), piece in d.tiles(page):
            assert not piece.empty
            assert d.contains(piece)
            # piece lies inside its page
            page_dom = Domain(pi * page[0], (pi + 1) * page[0],
                              pj * page[1], (pj + 1) * page[1],
                              pk * page[2], (pk + 1) * page[2])
            assert page_dom.contains(piece)
            for p in piece.points():
                assert p not in seen
                seen.add(p)
            total += piece.size
        assert total == d.size

    def test_tiles_aligned_case(self):
        d = full_domain(4, 4, 4)
        tiles = list(d.tiles((2, 2, 2)))
        assert len(tiles) == 8
        assert all(piece.size == 8 for _, piece in tiles)

    def test_page_range_negative_page_shape_rejected(self):
        with pytest.raises(DomainError):
            full_domain(2, 2, 2).page_range((0, 1, 1))


class TestSplit:
    @given(domains(), st.integers(0, 2), st.integers(1, 9))
    @settings(max_examples=80, deadline=None)
    def test_split_axis_partitions(self, d, axis, parts):
        slabs = d.split_axis(axis, parts)
        assert len(slabs) == parts
        assert sum(s.size for s in slabs) == d.size
        # slabs are contiguous and ordered along the axis
        cursor = d.lo[axis]
        for s in slabs:
            assert s.lo[axis] == cursor
            cursor = s.hi[axis]
        assert cursor == d.hi[axis]

    def test_split_balances_within_one(self):
        widths = [s.shape[0] for s in full_domain(10, 1, 1).split_axis(0, 3)]
        assert widths == [4, 3, 3]

    def test_bad_axis_rejected(self):
        with pytest.raises(DomainError):
            full_domain(2, 2, 2).split_axis(3, 2)

    def test_bad_parts_rejected(self):
        with pytest.raises(DomainError):
            full_domain(2, 2, 2).split_axis(0, 0)
