"""PageDevice / ArrayPageDevice: file-backed storage, regions, adoption."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import PageIndexError, PageSizeError, StorageError
from repro.storage.device import ArrayPageDevice, PageDevice, default_storage_dir
from repro.storage.page import ArrayPage, Page


class TestPageDevice:
    def test_creates_sized_file(self, tmp_path):
        path = str(tmp_path / "dev.dat")
        PageDevice(path, 10, 128)
        assert os.path.getsize(path) == 1280

    def test_relative_names_go_to_storage_dir(self):
        d = PageDevice("rel.dat", 2, 64)
        assert d.path.startswith(default_storage_dir())
        assert os.path.exists(d.path)

    def test_write_read_round_trip(self, tmp_path):
        d = PageDevice(str(tmp_path / "d.dat"), 4, 8)
        d.write(Page(8, b"ABCDEFGH"), 2)
        assert d.read(2).to_bytes() == b"ABCDEFGH"
        assert d.read(0).to_bytes() == bytes(8)  # untouched pages zero

    def test_read_into_matches_paper_signature(self, tmp_path):
        d = PageDevice(str(tmp_path / "d.dat"), 4, 4)
        d.write(Page(4, b"wxyz"), 1)
        out = Page(4)
        d.read_into(out, 1)
        assert out.to_bytes() == b"wxyz"

    def test_page_index_bounds(self, tmp_path):
        d = PageDevice(str(tmp_path / "d.dat"), 4, 8)
        for bad in (-1, 4, 100):
            with pytest.raises(PageIndexError):
                d.read(bad)
            with pytest.raises(PageIndexError):
                d.write(Page(8), bad)

    def test_wrong_page_size_rejected(self, tmp_path):
        d = PageDevice(str(tmp_path / "d.dat"), 4, 8)
        with pytest.raises(PageSizeError):
            d.write(Page(4), 0)

    def test_bad_geometry_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            PageDevice(str(tmp_path / "x"), -1, 8)
        with pytest.raises(StorageError):
            PageDevice(str(tmp_path / "x"), 4, 0)
        with pytest.raises(StorageError):
            PageDevice(str(tmp_path / "x"), 4, 8, nominal_page_size=4)

    def test_io_stats(self, tmp_path):
        d = PageDevice(str(tmp_path / "d.dat"), 4, 8)
        d.write(Page(8), 0)
        d.read(0)
        d.read(1)
        assert d.io_stats() == {"reads": 2, "writes": 1}

    def test_data_survives_reopen(self, tmp_path):
        path = str(tmp_path / "d.dat")
        d1 = PageDevice(path, 4, 8)
        d1.write(Page(8, b"persist!"), 3)
        d1.close()
        d2 = PageDevice(path, 4, 8)
        assert d2.read(3).to_bytes() == b"persist!"

    def test_pickle_reopens_file(self, tmp_path):
        import pickle

        path = str(tmp_path / "d.dat")
        d = PageDevice(path, 4, 8)
        d.write(Page(8, b"snapshot"), 0)
        d2 = pickle.loads(pickle.dumps(d))
        assert d2.read(0).to_bytes() == b"snapshot"
        assert d2.disk_key == d.disk_key

    def test_destructor_closes_but_keeps_file(self, tmp_path):
        path = str(tmp_path / "d.dat")
        d = PageDevice(path, 2, 8)
        d.oopp_destructor()
        assert os.path.exists(path)

    def test_delete_backing_file(self, tmp_path):
        path = str(tmp_path / "d.dat")
        d = PageDevice(path, 2, 8)
        d.delete_backing_file()
        assert not os.path.exists(path)
        d.delete_backing_file()  # idempotent

    def test_nominal_page_size_tags_read_pages(self, tmp_path):
        d = PageDevice(str(tmp_path / "d.dat"), 2, 8,
                       nominal_page_size=1 << 20)
        page = d.read(0)
        assert page.nominal_nbytes == 1 << 20


class TestArrayPageDevice:
    def test_page_size_derived_from_block_shape(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "a.dat"), 4, 2, 3, 4)
        assert d.PageSize == 2 * 3 * 4 * 8
        assert d.block_shape == (2, 3, 4)

    def test_write_read_page(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "a.dat"), 4, 2, 2, 2)
        page = ArrayPage(2, 2, 2, np.arange(8.0))
        d.write_page(page, 1)
        got = d.read_page(1)
        assert np.array_equal(got.array, page.array)

    def test_write_wrong_shape_rejected(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "a.dat"), 4, 2, 2, 2)
        with pytest.raises(PageSizeError):
            d.write_page(ArrayPage(2, 2, 3), 0)

    def test_remote_style_sum(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "a.dat"), 4, 2, 2, 2)
        d.write_page(ArrayPage(2, 2, 2, np.arange(8.0)), 2)
        assert d.sum(2) == 28.0

    def test_reductions_over_regions(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "a.dat"), 2, 4, 4, 4)
        data = np.arange(64.0).reshape(4, 4, 4)
        d.write_page(ArrayPage(4, 4, 4, data), 0)
        lo, hi = (1, 0, 2), (3, 2, 4)
        region = data[1:3, 0:2, 2:4]
        assert d.reduce_region(0, lo, hi, "sum") == region.sum()
        assert d.reduce_region(0, lo, hi, "min") == region.min()
        assert d.reduce_region(0, lo, hi, "max") == region.max()
        assert d.reduce_region(0, lo, hi, "sumsq") == (region ** 2).sum()
        with pytest.raises(StorageError):
            d.reduce_region(0, lo, hi, "median")

    def test_region_read_write(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "a.dat"), 2, 4, 4, 4)
        patch = np.full((2, 2, 2), 9.0)
        d.write_region(0, (1, 1, 1), (3, 3, 3), patch)
        assert np.array_equal(d.read_region(0, (1, 1, 1), (3, 3, 3)), patch)
        assert d.read_page(0).sum() == 72.0

    def test_region_bounds_checked(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "a.dat"), 2, 4, 4, 4)
        with pytest.raises(PageIndexError):
            d.read_region(0, (0, 0, 0), (5, 1, 1))
        with pytest.raises(PageSizeError):
            d.write_region(0, (0, 0, 0), (2, 2, 2), np.zeros((3, 3, 3)))

    def test_fill_region(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "a.dat"), 2, 2, 2, 2)
        d.fill_region(1, (0, 0, 0), (2, 2, 2), 3.0)
        assert d.sum(1) == 24.0

    def test_page_local_linear_algebra(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "a.dat"), 4, 2, 2, 2)
        d.write_page(ArrayPage(2, 2, 2, np.arange(8.0)), 0)
        d.copy_page(0, 1)
        assert d.sum(1) == 28.0
        d.scale_page(2.0, 1)
        assert d.sum(1) == 56.0
        d.axpy_page(-1.0, 0, 1)  # page1 -= page0
        assert d.sum(1) == 28.0
        assert d.dot_pages(0, 0) == float((np.arange(8.0) ** 2).sum())


class TestAdoption:
    def test_adopt_existing_page_device(self, tmp_path):
        raw = PageDevice(str(tmp_path / "shared.dat"), 4, 2 * 2 * 2 * 8)
        arr = ArrayPageDevice(raw, 2, 2, 2)
        arr.write_page(ArrayPage(2, 2, 2, np.ones(8)), 0)
        # the raw device sees the same bytes (co-existence, §5)
        assert raw.read(0).to_bytes() == np.ones(8).tobytes()
        assert arr.disk_key == raw.disk_key  # same simulated spindle

    def test_adopt_classmethod_alias(self, tmp_path):
        raw = PageDevice(str(tmp_path / "s2.dat"), 4, 64)
        arr = ArrayPageDevice.adopt(raw, 2, 2, 2)
        assert arr.NumberOfPages == 4

    def test_adopt_size_mismatch_rejected(self, tmp_path):
        raw = PageDevice(str(tmp_path / "s3.dat"), 4, 100)
        with pytest.raises(PageSizeError):
            ArrayPageDevice(raw, 2, 2, 2)

    def test_adopt_bad_shape_rejected(self, tmp_path):
        raw = PageDevice(str(tmp_path / "s4.dat"), 4, 64)
        with pytest.raises(StorageError):
            ArrayPageDevice(raw, 0, 2, 2)

    def test_string_form_still_validates_shape(self, tmp_path):
        with pytest.raises(StorageError):
            ArrayPageDevice(str(tmp_path / "s5.dat"), 4, 2, 0, 2)
