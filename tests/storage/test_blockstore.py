"""BlockStorage and the local/remote device call bridge."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.errors import StorageError
from repro.storage.blockstore import (
    BlockStorage,
    call_on_device,
    create_block_storage,
)
from repro.storage.device import ArrayPageDevice
from repro.storage.page import ArrayPage


class TestBlockStorage:
    def test_indexing(self, tmp_path):
        devices = [ArrayPageDevice(str(tmp_path / f"d{i}.dat"), 2, 2, 2, 2)
                   for i in range(3)]
        store = BlockStorage(devices)
        assert len(store) == 3
        assert store.device(1) is devices[1]
        assert store[2] is devices[2]
        assert list(store) == devices

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            BlockStorage([])

    def test_bad_device_id(self, tmp_path):
        store = BlockStorage([ArrayPageDevice(str(tmp_path / "d.dat"),
                                              2, 2, 2, 2)])
        with pytest.raises(StorageError):
            store.device(5)

    def test_io_stats_aggregation(self, tmp_path):
        devices = [ArrayPageDevice(str(tmp_path / f"d{i}.dat"), 2, 2, 2, 2)
                   for i in range(2)]
        devices[0].read_page(0)
        stats = BlockStorage(devices).io_stats()
        assert stats[0]["reads"] == 1 and stats[1]["reads"] == 0


class TestCallOnDevice:
    def test_local_device_gets_completed_future(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "d.dat"), 2, 2, 2, 2)
        f = call_on_device(d, "sum", 0)
        assert f.done() and f.result() == 0.0

    def test_local_failure_becomes_failed_future(self, tmp_path):
        d = ArrayPageDevice(str(tmp_path / "d.dat"), 2, 2, 2, 2)
        f = call_on_device(d, "sum", 99)
        assert f.done()
        with pytest.raises(oopp.errors.PageIndexError):
            f.result()

    def test_remote_device_goes_through_proxy(self, inline_cluster):
        d = inline_cluster.new(ArrayPageDevice, "remote.dat", 2, 2, 2, 2,
                               machine=1)
        f = call_on_device(d, "sum", 0)
        assert f.result(10) == 0.0


class TestCreateBlockStorage:
    def test_round_robin_over_machines(self, inline_cluster):
        store = create_block_storage(inline_cluster, 6, NumberOfPages=2,
                                     n1=2, n2=2, n3=2)
        machines = [oopp.ref_of(d).machine for d in store]
        assert machines == [0, 1, 2, 3, 0, 1]

    def test_explicit_machines(self, inline_cluster):
        store = create_block_storage(inline_cluster, 2, NumberOfPages=2,
                                     n1=2, n2=2, n3=2, machines=[3, 3])
        assert [oopp.ref_of(d).machine for d in store] == [3, 3]

    def test_machines_length_mismatch(self, inline_cluster):
        with pytest.raises(StorageError):
            create_block_storage(inline_cluster, 3, NumberOfPages=2,
                                 n1=2, n2=2, n3=2, machines=[0])

    def test_devices_usable_end_to_end(self, inline_cluster):
        store = create_block_storage(inline_cluster, 2, NumberOfPages=2,
                                     n1=2, n2=2, n3=2)
        page = ArrayPage(2, 2, 2, np.arange(8.0))
        store[0].write_page(page, 1)
        assert store[0].sum(1) == 28.0

    def test_shared_disk_option(self, inline_cluster):
        store = create_block_storage(inline_cluster, 2, NumberOfPages=2,
                                     n1=2, n2=2, n3=2, machines=[1, 1],
                                     shared_disk=True)
        keys = {store[i].describe()["disk_key"] for i in range(2)}
        assert keys == {"shared-disk-m1"}

    def test_nominal_page_size_option(self, inline_cluster):
        store = create_block_storage(inline_cluster, 1, NumberOfPages=2,
                                     n1=2, n2=2, n3=2,
                                     nominal_page_size=1 << 20)
        assert store[0].describe()["nominal_page_size"] == 1 << 20
