"""Page maps: bijectivity and layout characteristics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.storage.pagemap import (
    BlockedPageMap,
    PageAddress,
    PageMap,
    PencilPageMap,
    RoundRobinPageMap,
)

ALL_MAPS = [RoundRobinPageMap, BlockedPageMap, PencilPageMap]

grids = st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
device_counts = st.integers(1, 9)


class TestGeometry:
    def test_linear_is_c_order(self):
        m = RoundRobinPageMap(grid=(2, 3, 4), n_devices=1)
        assert m.linear(0, 0, 0) == 0
        assert m.linear(0, 0, 1) == 1
        assert m.linear(0, 1, 0) == 4
        assert m.linear(1, 0, 0) == 12

    def test_out_of_grid_rejected(self):
        m = RoundRobinPageMap(grid=(2, 2, 2), n_devices=2)
        with pytest.raises(LayoutError):
            m.physical(2, 0, 0)
        with pytest.raises(LayoutError):
            m.physical(0, -1, 0)

    def test_bad_construction_rejected(self):
        with pytest.raises(LayoutError):
            RoundRobinPageMap(grid=(0, 1, 1), n_devices=1)
        with pytest.raises(LayoutError):
            RoundRobinPageMap(grid=(1, 1, 1), n_devices=0)

    def test_n_pages(self):
        m = BlockedPageMap(grid=(2, 3, 4), n_devices=5)
        assert m.n_pages == 24
        assert m.pages_per_device == 5  # ceil(24/5)


class TestConcreteLayouts:
    def test_round_robin_spreads_consecutive_pages(self):
        m = RoundRobinPageMap(grid=(1, 1, 6), n_devices=3)
        devices = [m.physical(0, 0, k).device_id for k in range(6)]
        assert devices == [0, 1, 2, 0, 1, 2]

    def test_blocked_keeps_runs_together(self):
        m = BlockedPageMap(grid=(1, 1, 6), n_devices=3)
        devices = [m.physical(0, 0, k).device_id for k in range(6)]
        assert devices == [0, 0, 1, 1, 2, 2]

    def test_pencil_colocates_axis0(self):
        m = PencilPageMap(grid=(4, 2, 2), n_devices=3)
        for j in range(2):
            for k in range(2):
                devs = {m.physical(i, j, k).device_id for i in range(4)}
                assert len(devs) == 1

    def test_pencil_distributes_distinct_pencils(self):
        m = PencilPageMap(grid=(2, 3, 3), n_devices=9)
        devs = {m.physical(0, j, k).device_id
                for j in range(3) for k in range(3)}
        assert len(devs) == 9


class TestBijectivity:
    @pytest.mark.parametrize("MapCls", ALL_MAPS)
    @given(grid=grids, n_devices=device_counts)
    @settings(max_examples=40, deadline=None)
    def test_every_layout_is_bijective(self, MapCls, grid, n_devices):
        MapCls(grid=grid, n_devices=n_devices).validate()

    @pytest.mark.parametrize("MapCls", ALL_MAPS)
    def test_validate_catches_broken_map(self, MapCls):
        class Broken(MapCls):
            def physical(self, i1, i2, i3):
                return PageAddress(0, 0)  # everything collides

        broken = Broken(grid=(2, 2, 2), n_devices=2)
        with pytest.raises(LayoutError):
            broken.validate()

    def test_base_class_is_abstract(self):
        m = PageMap(grid=(1, 1, 1), n_devices=1)
        with pytest.raises(NotImplementedError):
            m.physical(0, 0, 0)
