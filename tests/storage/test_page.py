"""Pages and ArrayPages."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import PageSizeError
from repro.storage.page import ArrayPage, Page


class TestPage:
    def test_zero_filled_by_default(self):
        p = Page(16)
        assert p.to_bytes() == bytes(16)
        assert p.nbytes == len(p) == 16

    def test_data_must_match_declared_size(self):
        with pytest.raises(PageSizeError):
            Page(4, b"too long for four")

    def test_negative_size_rejected(self):
        with pytest.raises(PageSizeError):
            Page(-1)

    def test_update_fixed_size(self):
        p = Page(4, b"abcd")
        p.update(b"wxyz")
        assert p.to_bytes() == b"wxyz"
        with pytest.raises(PageSizeError):
            p.update(b"short")

    def test_equality_by_content(self):
        assert Page(3, b"abc") == Page(3, b"abc")
        assert Page(3, b"abc") != Page(3, b"abd")

    def test_pickle_round_trip(self):
        p = Page(8, b"12345678").with_nominal_size(1 << 20)
        q = pickle.loads(pickle.dumps(p))
        assert q == p
        assert q.nominal_nbytes == 1 << 20

    def test_nominal_declaration(self):
        p = Page(8)
        assert p.nominal_nbytes == 8
        assert getattr(p, "__oopp_nominal_bytes__", None) is None
        p.with_nominal_size(4096)
        assert p.__oopp_nominal_bytes__ == 4096
        with pytest.raises(PageSizeError):
            p.with_nominal_size(-1)

    def test_raw_buffer_is_live(self):
        p = Page(4)
        p.raw[0] = 0xFF
        assert p.to_bytes()[0] == 0xFF


class TestArrayPage:
    def test_shape_and_bytes(self):
        p = ArrayPage(2, 3, 4)
        assert p.shape == (2, 3, 4)
        assert p.nbytes == 2 * 3 * 4 * 8
        assert np.allclose(p.array, 0.0)

    def test_from_data(self):
        data = np.arange(24.0).reshape(2, 3, 4)
        p = ArrayPage(2, 3, 4, data)
        assert np.array_equal(p.array, data)

    def test_wrong_element_count_rejected(self):
        with pytest.raises(PageSizeError):
            ArrayPage(2, 2, 2, np.zeros(9))

    def test_array_view_is_writable_and_backed_by_page(self):
        p = ArrayPage(2, 2, 2)
        p.array[1, 1, 1] = 5.0
        assert ArrayPage(2, 2, 2, p.array) == p
        assert p.sum() == 5.0

    def test_computations(self):
        p = ArrayPage(2, 2, 2, np.arange(8.0))
        assert p.sum() == 28.0
        assert p.min() == 0.0 and p.max() == 7.0
        assert p.mean() == 3.5
        p.scale(2.0)
        assert p.sum() == 56.0
        p.fill(1.0)
        assert p.sum() == 8.0

    def test_pickle_preserves_shape_and_data(self):
        p = ArrayPage(2, 3, 4, np.arange(24.0))
        q = pickle.loads(pickle.dumps(p))
        assert q.shape == (2, 3, 4)
        assert np.array_equal(q.array, p.array)

    def test_is_a_page(self):
        # §3: ArrayPage derives from Page; raw-page interfaces accept it.
        p = ArrayPage(2, 2, 2)
        assert isinstance(p, Page)


class TestOutOfBandTransfer:
    """Pages ship their buffer out of band (pickle-5) and adopt shm views."""

    def test_proto5_lifts_buffer_out_of_band(self):
        from repro.transport import serde

        p = ArrayPage(4, 4, 4, np.arange(64.0))
        header, buffers = serde.dumps(p)
        assert len(buffers) == 1
        assert buffers[0].nbytes == 64 * 8

    def test_serde_round_trip_copies_not_aliases(self):
        from repro.transport import serde

        p = ArrayPage(2, 2, 2, np.arange(8.0))
        header, buffers = serde.dumps(p)
        q = serde.loads(header, buffers)
        assert q == p and q.shape == p.shape
        q.array[0, 0, 0] = 99.0  # must not write through to p
        assert p.array[0, 0, 0] == 0.0

    def test_proto4_still_works(self):
        p = ArrayPage(2, 3, 4, np.arange(24.0))
        q = pickle.loads(pickle.dumps(p, protocol=4))
        assert q == p and q.shape == (2, 3, 4)

    def test_plain_page_round_trips(self):
        from repro.transport import serde

        p = Page(100, bytes(range(100)))
        header, buffers = serde.dumps(p)
        q = serde.loads(header, [bytes(b) for b in buffers])
        assert q == p and q.nominal_nbytes == 100

    def test_nominal_size_survives_out_of_band(self):
        from repro.transport import serde

        p = Page(16).with_nominal_size(1 << 30)
        header, buffers = serde.dumps(p)
        q = serde.loads(header, [bytes(b) for b in buffers])
        assert q.nominal_nbytes == 1 << 30

    def test_deepcopy_independent(self):
        import copy

        p = ArrayPage(2, 2, 2, np.arange(8.0))
        q = copy.deepcopy(p)
        q.fill(0.0)
        assert p.sum() == 28.0

    def test_rebuilt_page_is_mutable(self):
        from repro.transport import serde

        p = Page(32)
        header, buffers = serde.dumps(p)
        q = serde.loads(header, [bytes(b) for b in buffers])
        q.update(b"\x01" * 32)
        assert q.to_bytes() == b"\x01" * 32

    def test_adopts_shm_view_zero_copy(self):
        import gc

        from repro.transport import serde, shm

        p = ArrayPage(8, 8, 8, np.arange(512.0))
        header, buffers = serde.dumps(p)
        out = shm.export_buffer(buffers[0])
        name, size = shm.unpack_descriptor(out.descriptor)
        view = shm.manager().attach(name, size)
        out.commit()
        q = serde.loads(header, [view])
        shm.manager().release(name)  # the "message" reference goes away
        assert name in shm.host_shm_names(), "page still pins the segment"
        # Zero copy: the page's array is a view over the segment memory.
        q.array[0, 0, 0] = -1.0
        assert np.frombuffer(view, dtype=np.float64)[0] == -1.0
        assert q.sum() == float(np.arange(512.0)[1:].sum()) - 1.0
        del q
        gc.collect()
        assert name not in shm.host_shm_names(), "segment leaked"
