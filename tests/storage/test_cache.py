"""The write-through LRU page cache."""

from __future__ import annotations

import pytest

import repro as oopp
from repro.errors import StorageError
from repro.storage.cache import CachingPageDevice
from repro.storage.device import PageDevice
from repro.storage.page import Page


def make_device(tmp_path, n_pages=6, page_size=32, name="c.dat"):
    dev = PageDevice(str(tmp_path / name), n_pages, page_size)
    for i in range(n_pages):
        dev.write(Page(page_size, bytes([i]) * page_size), i)
    return dev


class TestCorrectness:
    def test_reads_match_device(self, tmp_path):
        dev = make_device(tmp_path)
        cache = CachingPageDevice(dev, capacity_pages=3)
        for i in range(6):
            assert cache.read(i).to_bytes() == bytes([i]) * 32

    def test_repeat_read_hits(self, tmp_path):
        cache = CachingPageDevice(make_device(tmp_path), 3)
        cache.read(0)
        cache.read(0)
        cache.read(0)
        stats = cache.cache_stats()
        assert stats == {"hits": 2, "misses": 1, "evictions": 0,
                         "resident": 1, "hit_rate": 2 / 3}

    def test_write_through_visible_underneath(self, tmp_path):
        dev = make_device(tmp_path)
        cache = CachingPageDevice(dev, 3)
        cache.write(Page(32, b"Z" * 32), 1)
        assert dev.read(1).to_bytes() == b"Z" * 32   # device updated
        assert cache.read(1).to_bytes() == b"Z" * 32  # cache agrees
        assert cache.cache_stats()["hits"] == 1       # served from cache

    def test_cached_page_is_a_copy(self, tmp_path):
        cache = CachingPageDevice(make_device(tmp_path), 3)
        page = cache.read(0)
        page.raw[0] = 0xFF  # mutate the returned page
        assert cache.read(0).to_bytes() == bytes([0]) * 32

    def test_device_reads_counted_only_on_miss(self, tmp_path):
        dev = make_device(tmp_path)
        cache = CachingPageDevice(dev, 6)
        for _ in range(5):
            cache.read(2)
        assert dev.reads == 1


class TestLRU:
    def test_eviction_order(self, tmp_path):
        cache = CachingPageDevice(make_device(tmp_path), 2)
        cache.read(0)
        cache.read(1)
        cache.read(2)  # evicts 0
        assert cache.cached_pages == [1, 2]
        assert cache.evictions == 1

    def test_touch_refreshes_recency(self, tmp_path):
        cache = CachingPageDevice(make_device(tmp_path), 2)
        cache.read(0)
        cache.read(1)
        cache.read(0)  # 0 becomes most recent
        cache.read(2)  # evicts 1, not 0
        assert cache.cached_pages == [0, 2]

    def test_write_installs(self, tmp_path):
        cache = CachingPageDevice(make_device(tmp_path), 2)
        cache.write(Page(32, b"A" * 32), 4)
        assert cache.cached_pages == [4]

    def test_invalidate(self, tmp_path):
        cache = CachingPageDevice(make_device(tmp_path), 4)
        cache.read(0)
        cache.read(1)
        assert cache.invalidate(0) == 1
        assert cache.invalidate(0) == 0
        assert cache.invalidate() == 1  # clears the rest
        assert cache.cached_pages == []

    def test_capacity_validation(self, tmp_path):
        with pytest.raises(StorageError):
            CachingPageDevice(make_device(tmp_path), 0)


class TestOverRemoteDevice:
    def test_client_side_cache_skips_network(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        remote = sim_cluster.new(oopp.PageDevice, "cached.dat", 4, 64,
                                 machine=1)
        remote.write(oopp.Page(64, b"\x05" * 64), 0)
        cache = CachingPageDevice(remote, 2)
        assert cache.is_remote

        t0 = eng.now
        cache.read(0)            # miss: full round trip + disk
        t_miss = eng.now - t0
        t0 = eng.now
        cache.read(0)            # hit: no simulated time at all
        t_hit = eng.now - t0
        assert t_hit == 0.0
        assert t_miss > 0.0

    def test_cache_hosted_on_device_machine(self, inline_cluster):
        # server-side placement: the cache object co-locates with the
        # device; clients talk to the cache proxy.
        remote_dev = inline_cluster.new(oopp.PageDevice, "srv.dat", 4, 16,
                                        machine=2)
        cache = inline_cluster.new(CachingPageDevice, remote_dev, 2,
                                   machine=2)
        cache.write(oopp.Page(16, b"y" * 16), 3)
        assert cache.read(3).to_bytes() == b"y" * 16
        assert cache.cache_stats()["hits"] == 1

    def test_structured_methods_pass_through_uncached(self, tmp_path):
        import numpy as np

        from repro.storage.device import ArrayPageDevice
        from repro.storage.page import ArrayPage

        dev = ArrayPageDevice(str(tmp_path / "s.dat"), 4, 2, 2, 2)
        cache = CachingPageDevice(dev, 2)
        cache.write_page(ArrayPage(2, 2, 2, np.arange(8.0)), 0)  # passthrough
        assert cache.sum(0) == 28.0                              # passthrough
        assert cache.cache_stats()["misses"] == 0  # raw interface untouched
        # structured write then raw cached read sees the device's bytes
        assert cache.read(0).to_bytes() == np.arange(8.0).tobytes()

    def test_unknown_attribute_still_raises(self, tmp_path):
        cache = CachingPageDevice(make_device(tmp_path, name="u.dat"), 2)
        with pytest.raises(AttributeError):
            cache.no_such_method()

    def test_pickled_cache_restarts_cold(self, tmp_path):
        import pickle

        dev = make_device(tmp_path, name="cold.dat")
        cache = CachingPageDevice(dev, 3)
        cache.read(0)
        revived = pickle.loads(pickle.dumps(cache))
        assert revived.cache_stats()["resident"] == 0
        assert revived.read(0).to_bytes() == bytes([0]) * 32
