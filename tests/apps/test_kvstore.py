"""Sharded key-value store (client-server over objects)."""

from __future__ import annotations

import pytest

import repro as oopp
from repro.apps.kvstore import KVShard, KVStore
from repro.errors import OoppError


class TestShardLocal:
    def test_put_get_delete(self):
        s = KVShard(0)
        assert s.put("a", 1) == 1
        assert s.get("a") == 1
        assert s.get("b", "dflt") == "dflt"
        assert s.delete("a") and not s.delete("a")

    def test_strict_get(self):
        s = KVShard(0)
        with pytest.raises(KeyError):
            s.get_strict("missing")

    def test_versions_count_writes(self):
        s = KVShard(0)
        s.put("a", 1)
        s.put("a", 2)
        s.delete("a")
        s.delete("never")  # no-op delete doesn't bump
        assert s.version == 3

    def test_bulk_and_enumeration(self):
        s = KVShard(0)
        s.put_many([("a", 1), ("b", 2)])
        assert s.size() == 2
        assert sorted(s.keys()) == ["a", "b"]
        assert dict(s.items()) == {"a": 1, "b": 2}
        assert s.get_many(["a", "x"])[0] == 1
        assert s.clear() == 2

    def test_snapshot_state(self):
        s = KVShard(3)
        s.put("k", [1, 2])
        s2 = KVShard.__new__(KVShard)
        s2.__setstate__(s.__getstate__())
        assert s2.get("k") == [1, 2] and s2.shard_id == 3


class TestStore:
    def test_deploy_and_route(self, inline_cluster):
        kv = KVStore.deploy(inline_cluster)
        kv.put("alpha", 1)
        kv["beta"] = 2
        assert kv.get("alpha") == 1
        assert kv["beta"] == 2
        assert "alpha" in kv and "gamma" not in kv
        assert kv.get("gamma", -1) == -1
        with pytest.raises(KeyError):
            kv["gamma"]

    def test_bulk_round_trip(self, inline_cluster):
        kv = KVStore.deploy(inline_cluster, n_shards=3)
        pairs = [(f"k{i}", i) for i in range(100)]
        kv.put_many(pairs)
        assert kv.size() == 100
        got = kv.get_many([f"k{i}" for i in range(100)])
        assert got == list(range(100))
        assert kv.get_many(["missing"], default="?") == ["?"]

    def test_keys_spread_over_shards(self, inline_cluster):
        kv = KVStore.deploy(inline_cluster, n_shards=4)
        kv.put_many([(f"key-{i}", i) for i in range(200)])
        sizes = kv.shard_sizes()
        assert sum(sizes) == 200
        assert all(sz > 10 for sz in sizes)  # roughly balanced

    def test_items_and_clear(self, inline_cluster):
        kv = KVStore.deploy(inline_cluster, n_shards=2)
        kv.put_many([("a", 1), ("b", 2), ("c", 3)])
        assert kv.items() == {"a": 1, "b": 2, "c": 3}
        assert sorted(kv.keys()) == ["a", "b", "c"]
        assert kv.clear() == 3
        assert kv.size() == 0

    def test_empty_store_rejected(self):
        with pytest.raises(OoppError):
            KVStore([])

    def test_on_mp_real_processes(self, mp_cluster):
        kv = KVStore.deploy(mp_cluster)
        kv.put_many([(i, i * i) for i in range(50)])
        assert kv.get_many(list(range(50))) == [i * i for i in range(50)]
        assert kv.size() == 50


class TestPersistence:
    def test_survives_cluster_restart(self, tmp_path):
        root = str(tmp_path / "kv-root")
        with oopp.Cluster(n_machines=2, backend="inline",
                          storage_root=root) as c1:
            kv = KVStore.deploy(c1, n_shards=3)
            kv.put_many([(f"k{i}", i) for i in range(30)])
            addresses = kv.persist(c1, "mydb")
            assert len(addresses) == 3
        with oopp.Cluster(n_machines=2, backend="inline",
                          storage_root=root) as c2:
            kv2 = KVStore.attach(c2, addresses)
            assert kv2.size() == 30
            assert kv2.get_many([f"k{i}" for i in range(30)]) == \
                list(range(30))
            kv2.put("new", "entry")  # still writable
            assert kv2["new"] == "entry"
