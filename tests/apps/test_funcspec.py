"""Function specs for shipping kernels to machines."""

from __future__ import annotations

import pytest

from repro.apps.funcspec import func_spec, resolve_func
from repro.errors import RuntimeLayerError


def sample_fn(x):
    return x + 1


class Holder:
    @staticmethod
    def static_fn(x):
        return x * 2


class TestFuncSpec:
    def test_round_trip_module_function(self):
        spec = func_spec(sample_fn)
        assert resolve_func(spec)(41) == 42

    def test_round_trip_staticmethod(self):
        spec = func_spec(Holder.static_fn)
        assert resolve_func(spec)(21) == 42

    def test_lambda_rejected_eagerly(self):
        with pytest.raises(RuntimeLayerError, match="module-level"):
            func_spec(lambda x: x)

    def test_local_function_rejected_eagerly(self):
        def local(x):
            return x

        with pytest.raises(RuntimeLayerError, match="module-level"):
            func_spec(local)

    def test_non_callable_rejected(self):
        with pytest.raises(RuntimeLayerError):
            func_spec(42)  # type: ignore[arg-type]

    def test_unresolvable_spec(self):
        with pytest.raises(RuntimeLayerError):
            resolve_func(("no_such_module_abc", "f"))
        with pytest.raises(RuntimeLayerError):
            resolve_func((__name__, "not_here"))

    def test_non_callable_resolution_rejected(self):
        import sys

        sys.modules[__name__].CONST = 7
        try:
            with pytest.raises(RuntimeLayerError, match="non-callable"):
                resolve_func((__name__, "CONST"))
        finally:
            del sys.modules[__name__].CONST
