"""Distributed Jacobi heat equation vs. the serial reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.stencil import HeatSolver, StencilWorker, jacobi_step, solve_serial
from repro.errors import OoppError


def hot_plate(shape=(16, 12)):
    """Zero interior, hot top edge, warm left edge."""
    u = np.zeros(shape)
    u[0, :] = 100.0
    u[:, 0] = 25.0
    return u


class TestSerialReference:
    def test_step_preserves_boundary(self):
        u = hot_plate()
        u1 = jacobi_step(u, 0.2)
        assert np.array_equal(u1[0], u[0])
        assert np.array_equal(u1[-1], u[-1])
        assert np.array_equal(u1[:, 0], u[:, 0])
        assert np.array_equal(u1[:, -1], u[:, -1])

    def test_heat_flows_inward(self):
        u = solve_serial(hot_plate(), 0.2, 50)
        assert u[1:, 1:].max() > 0.0
        assert u.max() <= 100.0 and u.min() >= 0.0

    def test_steady_state_is_fixed_point(self):
        u = solve_serial(hot_plate((8, 8)), 0.25, 5000)
        again = jacobi_step(u, 0.25)
        assert np.allclose(again, u, atol=1e-6)


class TestWorkerUnit:
    def make(self, n, shape):
        workers = [StencilWorker(i) for i in range(n)]
        for w in workers:
            w.set_group(n, workers)
            w.set_grid(shape)
        return workers

    def test_uninitialized_fails(self):
        w = StencilWorker(0)
        with pytest.raises(OoppError):
            w.my_bounds()
        with pytest.raises(OoppError):
            w.step(0.1)

    def test_load_validates_shape(self):
        (w,) = self.make(1, (4, 4))
        with pytest.raises(OoppError):
            w.load(np.zeros((3, 4)))

    def test_bad_ghost_side_rejected(self):
        (w,) = self.make(1, (4, 4))
        with pytest.raises(OoppError):
            w.deposit_ghost("middle", np.zeros(4))

    def test_single_worker_matches_serial(self):
        (w,) = self.make(1, (8, 6))
        u0 = hot_plate((8, 6))
        w.load(u0)
        for _ in range(10):
            w.exchange()
            w.step(0.2)
        assert np.allclose(w.slab(), solve_serial(u0, 0.2, 10), atol=1e-12)


@pytest.mark.parametrize("n_workers", [1, 2, 3, 4])
class TestDistributedMatchesSerial:
    def test_inline(self, inline_cluster, n_workers):
        u0 = hot_plate((13, 9))  # ragged split on purpose
        solver = HeatSolver(inline_cluster, u0.shape, n_workers=n_workers)
        got = solver.solve(u0, 0.2, n_steps=25)
        assert np.allclose(got, solve_serial(u0, 0.2, 25), atol=1e-12)


class TestDistributedBackends:
    def test_mp(self, mp_cluster):
        u0 = hot_plate((12, 8))
        solver = HeatSolver(mp_cluster, u0.shape, n_workers=3)
        got = solver.solve(u0, 0.15, n_steps=20)
        assert np.allclose(got, solve_serial(u0, 0.15, 20), atol=1e-12)

    def test_sim_with_compute_charging(self, sim_cluster):
        u0 = hot_plate((12, 8))
        eng = sim_cluster.fabric.engine
        solver = HeatSolver(sim_cluster, u0.shape, n_workers=3,
                            flops_rate=1e9)
        t0 = eng.now
        got = solver.solve(u0, 0.15, n_steps=5)
        assert eng.now > t0  # simulated exchange + compute time accrued
        assert np.allclose(got, solve_serial(u0, 0.15, 5), atol=1e-12)


class TestSolverFacade:
    def test_convergence_early_exit(self, inline_cluster):
        u0 = hot_plate((10, 10))
        solver = HeatSolver(inline_cluster, u0.shape, n_workers=2)
        solver.load(u0)
        deltas = [solver.step(0.2) for _ in range(30)]
        assert deltas[-1] < deltas[0]  # contraction
        got = solver.solve(u0, 0.2, n_steps=10**6, tol=1.0)
        # early exit happened (otherwise this would run forever)
        assert got.shape == u0.shape

    def test_too_many_workers_rejected(self, inline_cluster):
        with pytest.raises(OoppError):
            HeatSolver(inline_cluster, (2, 8), n_workers=4)

    def test_wrong_grid_rejected(self, inline_cluster):
        solver = HeatSolver(inline_cluster, (8, 8), n_workers=2)
        with pytest.raises(OoppError):
            solver.load(np.zeros((4, 4)))
