"""MapReduce over object processes."""

from __future__ import annotations

import pytest

from repro.apps.mapreduce import MapReduce, Mapper, Reducer, _chunk, run_mapreduce
from repro.apps.funcspec import func_spec
from repro.errors import OoppError


# --- kernels (module-level so they resolve on machines) -------------------

def map_words(line):
    for word in line.split():
        yield word.lower(), 1


def reduce_count(key, values):
    return sum(values)


def map_identity(x):
    yield x % 7, x


def reduce_max(key, values):
    return max(values)


def map_explode(x):
    raise ValueError(f"bad record {x}")


LINES = [
    "the quick brown fox",
    "jumps over the lazy dog",
    "the dog barks",
    "quick quick slow",
]
EXPECTED = {
    "the": 3, "quick": 3, "brown": 1, "fox": 1, "jumps": 1, "over": 1,
    "lazy": 1, "dog": 2, "barks": 1, "slow": 1,
}


class TestChunking:
    def test_balanced(self):
        chunks = _chunk(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_more_parts_than_items(self):
        chunks = _chunk([1, 2], 4)
        assert chunks == [[1], [2], [], []]


class TestWordCount:
    def test_inline(self, inline_cluster):
        counts = run_mapreduce(inline_cluster, map_words, reduce_count, LINES)
        assert counts == EXPECTED

    def test_mp_real_processes(self, mp_cluster):
        counts = run_mapreduce(mp_cluster, map_words, reduce_count, LINES,
                               n_mappers=3, n_reducers=2)
        assert counts == EXPECTED

    def test_sim(self, sim_cluster):
        counts = run_mapreduce(sim_cluster, map_words, reduce_count, LINES)
        assert counts == EXPECTED

    def test_single_mapper_single_reducer(self, inline_cluster):
        counts = run_mapreduce(inline_cluster, map_words, reduce_count,
                               LINES, n_mappers=1, n_reducers=1)
        assert counts == EXPECTED

    def test_more_mappers_than_records(self, inline_cluster):
        counts = run_mapreduce(inline_cluster, map_words, reduce_count,
                               LINES[:2], n_mappers=8, n_reducers=3)
        assert counts["the"] == 2


class TestDeployment:
    def test_reusable_job(self, inline_cluster):
        job = MapReduce(inline_cluster, map_identity, reduce_max,
                        n_mappers=2, n_reducers=2)
        try:
            first = job.run(list(range(50)))
            second = job.run(list(range(20)))
            assert first == {k: max(x for x in range(50) if x % 7 == k)
                             for k in range(7)}
            assert second == {k: max(x for x in range(20) if x % 7 == k)
                              for k in range(7)}
        finally:
            job.destroy()

    def test_map_stats_reported(self, inline_cluster):
        job = MapReduce(inline_cluster, map_words, reduce_count,
                        n_mappers=2, n_reducers=2)
        try:
            job.run(LINES)
            stats = job.last_map_stats
            assert sum(s["records"] for s in stats) == len(LINES)
            assert sum(s["pairs"] for s in stats) == sum(EXPECTED.values())
        finally:
            job.destroy()

    def test_shuffle_is_mapper_to_reducer(self, inline_cluster):
        job = MapReduce(inline_cluster, map_words, reduce_count,
                        n_mappers=3, n_reducers=2)
        try:
            job.run(LINES)
            seen = job.reducers.invoke("stats")
            # every reducer heard from at least one mapper directly
            assert all(s["mappers_seen"] for s in seen)
        finally:
            job.destroy()


class TestErrors:
    def test_map_failure_propagates(self, inline_cluster):
        with pytest.raises(ValueError, match="bad record"):
            run_mapreduce(inline_cluster, map_explode, reduce_count, [1, 2],
                          n_mappers=1)

    def test_multiple_map_failures_aggregate(self, inline_cluster):
        from repro.errors import GroupError

        with pytest.raises(GroupError, match="members failed"):
            run_mapreduce(inline_cluster, map_explode, reduce_count,
                          [1, 2, 3, 4], n_mappers=4)

    def test_lambda_kernel_rejected_before_deployment(self, inline_cluster):
        from repro.errors import RuntimeLayerError

        with pytest.raises(RuntimeLayerError, match="module-level"):
            run_mapreduce(inline_cluster, lambda x: [(x, 1)], reduce_count,
                          [1])

    def test_mapper_without_reducers_fails(self):
        m = Mapper(0, func_spec(map_words))
        with pytest.raises(OoppError, match="set_reducers"):
            m.run_chunk(["x"])

    def test_reducer_accept_and_reset(self):
        r = Reducer(0, func_spec(reduce_count))
        r.accept(1, [("a", 1), ("a", 2)])
        assert r.reduce_all() == {"a": 3}
        r.reset()
        assert r.reduce_all() == {}
