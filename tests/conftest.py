"""Shared fixtures: isolated storage dirs and per-backend clusters."""

from __future__ import annotations

import os

import pytest

import repro as oopp


@pytest.fixture(autouse=True)
def isolated_storage(tmp_path, monkeypatch):
    """Point every device file and persistent store at the test's tmp dir."""
    monkeypatch.setenv("OOPP_STORAGE_DIR", str(tmp_path / "devstore"))
    yield tmp_path


@pytest.fixture
def inline_cluster(tmp_path):
    with oopp.Cluster(n_machines=4, backend="inline",
                      storage_root=str(tmp_path / "root")) as cluster:
        yield cluster


def _check_seed_kwargs() -> dict:
    """Schedule-perturbation opt-in: ``OOPP_CHECK_SEED=<n> pytest`` runs
    every sim-backed test under that seeded same-instant event order
    (see ``docs/CHECKING.md``).  Tests that genuinely depend on the
    default order carry the ``ordered`` marker and are skipped."""
    seed = os.environ.get("OOPP_CHECK_SEED")
    if not seed:
        return {}
    return {"check": oopp.CheckConfig(schedule_seed=int(seed))}


@pytest.fixture
def sim_cluster(tmp_path):
    with oopp.Cluster(n_machines=4, backend="sim",
                      storage_root=str(tmp_path / "root"),
                      **_check_seed_kwargs()) as cluster:
        yield cluster


@pytest.fixture
def mp_cluster(tmp_path):
    with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=60.0,
                      storage_root=str(tmp_path / "root")) as cluster:
        yield cluster


@pytest.fixture(params=["inline", "mp", "sim"])
def any_cluster(request, tmp_path):
    """The same test body run against every backend."""
    kwargs = {"call_timeout_s": 60.0} if request.param == "mp" else {}
    if request.param == "sim":
        kwargs.update(_check_seed_kwargs())
    with oopp.Cluster(n_machines=3, backend=request.param,
                      storage_root=str(tmp_path / "root"),
                      **kwargs) as cluster:
        yield cluster


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration tests")


def pytest_collection_modifyitems(config, items):
    if not os.environ.get("OOPP_CHECK_SEED"):
        return
    skip = pytest.mark.skip(
        reason="depends on the default same-instant event order "
               "(ordered marker) and OOPP_CHECK_SEED perturbs it")
    for item in items:
        if "ordered" in item.keywords:
            item.add_marker(skip)
