"""Shared fixtures: isolated storage dirs and per-backend clusters."""

from __future__ import annotations

import os

import pytest

import repro as oopp


@pytest.fixture(autouse=True)
def isolated_storage(tmp_path, monkeypatch):
    """Point every device file and persistent store at the test's tmp dir."""
    monkeypatch.setenv("OOPP_STORAGE_DIR", str(tmp_path / "devstore"))
    yield tmp_path


@pytest.fixture
def inline_cluster(tmp_path):
    with oopp.Cluster(n_machines=4, backend="inline",
                      storage_root=str(tmp_path / "root")) as cluster:
        yield cluster


@pytest.fixture
def sim_cluster(tmp_path):
    with oopp.Cluster(n_machines=4, backend="sim",
                      storage_root=str(tmp_path / "root")) as cluster:
        yield cluster


@pytest.fixture
def mp_cluster(tmp_path):
    with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=60.0,
                      storage_root=str(tmp_path / "root")) as cluster:
        yield cluster


@pytest.fixture(params=["inline", "mp", "sim"])
def any_cluster(request, tmp_path):
    """The same test body run against every backend."""
    kwargs = {"call_timeout_s": 60.0} if request.param == "mp" else {}
    with oopp.Cluster(n_machines=3, backend=request.param,
                      storage_root=str(tmp_path / "root"),
                      **kwargs) as cluster:
        yield cluster


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running integration tests")
