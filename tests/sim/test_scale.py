"""The simulator at paper-like scale (hundreds of devices)."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.runtime.group import ObjectGroup
from repro.storage.blockstore import create_block_storage


@pytest.mark.slow
class TestHundredsOfDevices:
    def test_256_devices_pipelined_read(self, tmp_path):
        """A 256-machine cluster reading one nominally-1 GiB page from
        every device — petabyte-era shape, sub-minute wall time."""
        n = 256
        with oopp.Cluster(n_machines=n, backend="sim",
                          storage_root=str(tmp_path / "big")) as cluster:
            eng = cluster.fabric.engine
            store = create_block_storage(
                cluster, n, NumberOfPages=1, n1=8, n2=8, n3=8,
                nominal_page_size=1 << 30, filename_prefix="scale")
            group = ObjectGroup(store.devices)
            t0 = eng.now
            pages = group.invoke("read_page", 0)
            dt = eng.now - t0
            assert len(pages) == n
            # 256 GiB through one 10 Gb/s client NIC: ingress-bound,
            # about 220 seconds of simulated time.
            ingress_floor = n * (1 << 30) / cluster.config.network.bandwidth_Bps
            assert dt >= ingress_floor
            assert dt < ingress_floor * 1.5
            # every device's disk did exactly one nominal read
            report = cluster.fabric.utilization_report()
            reads = [v for node, entry in report.items() if node >= 0
                     for k, v in entry.items() if k.endswith("bytes_read")]
            assert sum(reads) == n * (1 << 30)

    def test_wide_group_operations(self, tmp_path):
        with oopp.Cluster(n_machines=64, backend="sim",
                          storage_root=str(tmp_path / "wide")) as cluster:
            group = cluster.new_group(oopp.Block, 128,
                                      argfn=lambda i: (4, "float64", i))
            sums = group.invoke("sum")
            assert sums == [4.0 * i for i in range(128)]
            group.barrier()
            group.destroy()


class TestTrafficCounters:
    def test_mp_driver_wire_counters(self, mp_cluster):
        fabric = mp_cluster.fabric
        before = fabric.traffic()
        blk = mp_cluster.new_block(1 << 12, machine=1)
        blk.write(0, np.ones(1 << 12))
        blk.read()
        after = fabric.traffic()
        moved = after["bytes_out"] - before["bytes_out"]
        received = after["bytes_in"] - before["bytes_in"]
        assert moved > (1 << 12) * 8       # the write payload went out
        assert received > (1 << 12) * 8    # the read payload came back
        assert after["frames_out"] > before["frames_out"]
        assert after["connections"] >= 1
