"""Analytic FIFO resources: queueing, disks, links."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.resources import Disk, FifoResource, Link


@pytest.fixture
def engine():
    eng = Engine()
    eng.adopt_current_thread()
    yield eng
    eng.release_current_thread()


class TestFifoResource:
    def test_first_job_starts_now(self, engine):
        r = FifoResource(engine, "r")
        assert r.occupy(2.0) == pytest.approx(2.0)

    def test_jobs_queue_fifo(self, engine):
        r = FifoResource(engine, "r")
        assert r.occupy(1.0) == pytest.approx(1.0)
        assert r.occupy(1.0) == pytest.approx(2.0)
        assert r.occupy(0.5) == pytest.approx(2.5)

    def test_idle_gap_resets_start(self, engine):
        r = FifoResource(engine, "r")
        r.occupy(1.0)
        engine.sleep(5.0)
        assert r.occupy(1.0) == pytest.approx(6.0)

    def test_occupy_from_respects_earliest(self, engine):
        r = FifoResource(engine, "r")
        assert r.occupy_from(3.0, 1.0) == pytest.approx(4.0)
        # second job queues behind the first even though earliest is lower
        assert r.occupy_from(0.0, 1.0) == pytest.approx(5.0)

    def test_negative_duration_rejected(self, engine):
        r = FifoResource(engine, "r")
        with pytest.raises(SimulationError):
            r.occupy(-1.0)

    def test_request_fires_trigger_at_completion(self, engine):
        r = FifoResource(engine, "r")
        t = r.request(2.5, value="done")
        assert engine.wait(t) == "done"
        assert engine.now == pytest.approx(2.5)

    def test_busy_time_and_utilization(self, engine):
        r = FifoResource(engine, "r")
        t = r.request(1.0)
        engine.wait(t)
        engine.sleep(1.0)
        assert r.busy_time == pytest.approx(1.0)
        assert r.utilization() == pytest.approx(0.5)

    @given(st.lists(st.floats(min_value=0.0, max_value=5.0,
                              allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_conservation_property(self, durations):
        """Total busy time equals the sum of service times, and the last
        completion is at least that sum (work conservation)."""
        eng = Engine()
        eng.adopt_current_thread()
        try:
            r = FifoResource(eng, "r")
            ends = [r.occupy(d) for d in durations]
            assert r.busy_time == pytest.approx(sum(durations))
            assert ends == sorted(ends)
            assert ends[-1] >= sum(durations) - 1e-12
        finally:
            eng.release_current_thread()


class TestDisk:
    def test_read_time_is_seek_plus_transfer(self, engine):
        d = Disk(engine, "d", seek_s=0.01, bandwidth_Bps=100e6)
        t = d.read(100_000_000)
        engine.wait(t)
        assert engine.now == pytest.approx(1.01)
        assert d.bytes_read == 100_000_000

    def test_writes_queue_behind_reads(self, engine):
        d = Disk(engine, "d", seek_s=1.0, bandwidth_Bps=1e9)
        d.read(0)
        end = d.write_end(0)
        assert end == pytest.approx(2.0)
        assert d.bytes_written == 0

    def test_negative_size_rejected(self, engine):
        d = Disk(engine, "d", seek_s=0, bandwidth_Bps=1)
        with pytest.raises(SimulationError):
            d.read(-1)

    def test_zero_bandwidth_rejected(self, engine):
        with pytest.raises(SimulationError):
            Disk(engine, "d", seek_s=0, bandwidth_Bps=0)


class TestLink:
    def test_arrival_includes_latency(self, engine):
        link = Link(engine, "l", bandwidth_Bps=1e6, latency_s=0.5)
        assert link.arrival_time(1_000_000) == pytest.approx(1.5)

    def test_back_to_back_messages_pipeline(self, engine):
        link = Link(engine, "l", bandwidth_Bps=1e6, latency_s=0.5)
        a1 = link.arrival_time(1_000_000)
        a2 = link.arrival_time(1_000_000)
        # second serializes right behind the first; latency overlaps
        assert a2 - a1 == pytest.approx(1.0)

    def test_bytes_accounted(self, engine):
        link = Link(engine, "l", bandwidth_Bps=1e6, latency_s=0)
        link.arrival_time(123)
        assert link.bytes_moved == 123
