"""Trace log recording and analytics."""

from repro.sim.trace import TraceEvent, TraceLog


class TestTraceLog:
    def test_record_and_filter_by_kind(self):
        log = TraceLog()
        log.record(1.0, "call", 0, method="read")
        log.record(2.0, "disk", 1, op="read")
        log.record(3.0, "call", 1, method="write")
        assert log.count("call") == 2
        assert log.count("disk") == 1
        assert log.count() == 3

    def test_filter_by_node_and_predicate(self):
        log = TraceLog()
        for i in range(5):
            log.record(float(i), "call", i % 2, idx=i)
        assert len(log.filter(node=0)) == 3
        assert len(log.filter(predicate=lambda e: e.detail["idx"] > 2)) == 2

    def test_span(self):
        log = TraceLog()
        log.record(1.0, "x", 0)
        log.record(4.5, "x", 0)
        assert log.span("x") == 3.5
        assert log.span("missing") == 0.0

    def test_by_node(self):
        log = TraceLog()
        log.record(0.0, "call", 2)
        log.record(0.0, "call", 2)
        log.record(0.0, "call", 0)
        assert log.by_node("call") == {2: 2, 0: 1}

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(0.0, "call", 0)
        assert len(log) == 0

    def test_clear(self):
        log = TraceLog()
        log.record(0.0, "x", 0)
        log.clear()
        assert len(log) == 0

    def test_events_are_value_objects(self):
        e = TraceEvent(1.0, "call", 0, {"a": 1})
        assert e.time == 1.0 and e.kind == "call" and e.node == 0
