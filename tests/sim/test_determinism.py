"""Property: simulations are bit-deterministic regardless of thread timing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, Trigger

workload = st.lists(
    st.tuples(
        st.integers(0, 4),                       # which child acts
        st.floats(0.001, 1.0, allow_nan=False),  # how long it sleeps
    ),
    min_size=1, max_size=25,
)


def run_workload(ops, schedule_seed=None) -> tuple[float, list]:
    """Spawn 5 children executing their assigned sleeps; log completions."""
    eng = Engine(schedule_seed=schedule_seed)
    eng.adopt_current_thread()
    log: list[tuple[int, float]] = []
    per_child: dict[int, list[float]] = {i: [] for i in range(5)}
    for child, dt in ops:
        per_child[child].append(dt)

    def child_body(cid: int):
        for dt in per_child[cid]:
            eng.sleep(dt)
            log.append((cid, eng.now))

    for cid in range(5):
        eng.spawn(child_body, cid)
    end = eng.run_until_idle()
    eng.release_current_thread()
    return end, log


class TestDeterminism:
    @given(workload)
    @settings(max_examples=25, deadline=None)
    def test_identical_runs_identical_logs(self, ops):
        end1, log1 = run_workload(ops)
        end2, log2 = run_workload(ops)
        assert end1 == end2
        assert log1 == log2  # exact order and exact timestamps

    @given(workload)
    @settings(max_examples=25, deadline=None)
    def test_end_time_is_max_child_sum(self, ops):
        sums: dict[int, float] = {}
        for child, dt in ops:
            sums[child] = sums.get(child, 0.0) + dt
        end, _ = run_workload(ops)
        assert end == pytest.approx(max(sums.values()))

    @given(workload)
    @settings(max_examples=15, deadline=None)
    def test_per_child_timestamps_monotone(self, ops):
        _, log = run_workload(ops)
        last: dict[int, float] = {}
        for cid, t in log:
            assert t >= last.get(cid, 0.0)
            last[cid] = t


class TestSeededSchedules:
    """``Engine(schedule_seed=N)`` perturbs only the same-instant
    tiebreak: each seed is itself bit-deterministic, timestamps never
    change, and ``None`` preserves the historical ``(time, seq)``
    order (see docs/CHECKING.md)."""

    @given(workload, st.integers(1, 2 ** 32))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_is_bit_deterministic(self, ops, seed):
        end1, log1 = run_workload(ops, schedule_seed=seed)
        end2, log2 = run_workload(ops, schedule_seed=seed)
        assert end1 == end2
        assert log1 == log2

    @given(workload, st.integers(1, 2 ** 32))
    @settings(max_examples=25, deadline=None)
    def test_seed_permutes_within_instants_only(self, ops, seed):
        end0, log0 = run_workload(ops)
        end1, log1 = run_workload(ops, schedule_seed=seed)
        assert end0 == end1
        # same completions, same timestamps — order within an instant
        # may differ, nothing else may.
        assert sorted(log0) == sorted(log1)

    def test_seed_none_is_the_historical_order(self):
        ops = [(0, 0.5), (1, 0.5), (2, 0.5), (3, 0.5)]
        _, log_default = run_workload(ops)
        _, log_none = run_workload(ops, schedule_seed=None)
        assert log_default == log_none

    def test_some_seed_reorders_a_tie(self):
        # four children finish at the same instant; among a handful of
        # seeds at least one must fire them in a non-historical order.
        ops = [(i, 0.5) for i in range(5)]
        _, baseline = run_workload(ops)
        assert any(run_workload(ops, schedule_seed=s)[1] != baseline
                   for s in range(1, 20))


class TestCrossProcessSignalling:
    def test_fan_in_trigger_wakes_all_waiters(self):
        eng = Engine()
        eng.adopt_current_thread()
        gate = Trigger()
        woken: list[tuple[int, float]] = []

        def waiter(i: int):
            eng.wait(gate)
            woken.append((i, eng.now))

        for i in range(4):
            eng.spawn(waiter, i)

        def opener():
            eng.sleep(2.0)
            eng.fire(gate, None)

        eng.spawn(opener)
        eng.run_until_idle()
        eng.release_current_thread()
        assert sorted(woken) == [(i, 2.0) for i in range(4)]
