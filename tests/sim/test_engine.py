"""Discrete-event engine: clock, triggers, processes, deadlock."""

from __future__ import annotations

import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimDeadlockError, SimulationError
from repro.sim.engine import Engine, Trigger


@pytest.fixture
def engine():
    # honor the schedule-perturbation sweep (docs/CHECKING.md): the
    # engine contract must hold under any same-instant tiebreak.
    seed = os.environ.get("OOPP_CHECK_SEED")
    eng = Engine(schedule_seed=int(seed) if seed else None)
    eng.adopt_current_thread()
    yield eng
    eng.release_current_thread()


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_sleep_advances_exactly(self, engine):
        engine.sleep(1.5)
        engine.sleep(0.25)
        assert engine.now == pytest.approx(1.75)

    def test_sleep_zero_is_noop(self, engine):
        engine.sleep(0)
        assert engine.now == 0.0
        assert engine.events_executed == 0

    def test_negative_sleep_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.sleep(-1)

    def test_schedule_in_past_rejected(self, engine):
        engine.sleep(5)
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    @given(st.lists(st.floats(min_value=0, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_clock_is_monotone_and_sums(self, delays):
        eng = Engine()
        eng.adopt_current_thread()
        try:
            last = 0.0
            for d in delays:
                eng.sleep(d)
                assert eng.now >= last
                last = eng.now
            assert eng.now == pytest.approx(sum(delays), rel=1e-9)
        finally:
            eng.release_current_thread()


class TestTriggers:
    def test_fire_then_wait_returns_value(self, engine):
        t = Trigger()
        engine.fire(t, value=42)
        assert engine.wait(t) == 42

    def test_fire_after_delay(self, engine):
        t = Trigger()
        engine.fire_after(2.0, t, "done")
        assert engine.wait(t) == "done"
        assert engine.now == pytest.approx(2.0)

    def test_fire_twice_rejected(self, engine):
        t = Trigger()
        engine.fire(t)
        with pytest.raises(SimulationError):
            engine.fire(t)

    def test_wait_propagates_exception(self, engine):
        t = Trigger()
        engine.fire(t, exc=ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            engine.wait(t)

    def test_wait_from_unregistered_thread_rejected(self):
        eng = Engine()
        t = Trigger()
        with pytest.raises(SimulationError, match="not registered"):
            eng.wait(t)

    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.sleep(5.0)
        assert order == ["a", "b", "c"]

    @pytest.mark.ordered  # asserts the historical FIFO tiebreak itself
    def test_same_time_events_fire_in_schedule_order(self, engine):
        order = []
        for tag in "abcde":
            engine.schedule(1.0, lambda tag=tag: order.append(tag))
        engine.sleep(2.0)
        assert order == list("abcde")


class TestProcesses:
    def test_spawn_runs_and_interleaves(self, engine):
        log = []

        def child():
            engine.sleep(1.0)
            log.append(("child", engine.now))
            engine.sleep(2.0)
            log.append(("child", engine.now))

        engine.spawn(child)
        engine.sleep(1.5)
        log.append(("main", engine.now))
        engine.sleep(2.0)
        log.append(("main", engine.now))
        assert log == [("child", 1.0), ("main", 1.5), ("child", 3.0),
                       ("main", 3.5)]

    def test_many_children_deterministic(self, engine):
        results = []

        def child(i):
            engine.sleep(0.1 * (i + 1))
            results.append(i)

        for i in range(10):
            engine.spawn(child, i)
        engine.sleep(2.0)
        assert results == list(range(10))

    def test_child_exit_does_not_stall_clock(self, engine):
        def child():
            engine.sleep(0.5)

        engine.spawn(child)
        engine.sleep(10.0)
        assert engine.now == pytest.approx(10.0)

    def test_child_can_fire_trigger_for_parent(self, engine):
        t = Trigger()

        def child():
            engine.sleep(1.0)
            engine.fire(t, "from child")

        engine.spawn(child)
        assert engine.wait(t) == "from child"
        assert engine.now == pytest.approx(1.0)

    def test_two_children_exchange(self, engine):
        t1, t2 = Trigger(), Trigger()
        log = []

        def ping():
            engine.sleep(1.0)
            engine.fire(t1, "ping")
            log.append(engine.wait(t2))

        def pong():
            v = engine.wait(t1)
            log.append(v)
            engine.sleep(1.0)
            engine.fire(t2, "pong")

        engine.spawn(ping)
        engine.spawn(pong)
        engine.sleep(5.0)
        assert log == ["ping", "pong"]
        assert engine.now == pytest.approx(5.0)


class TestDeadlock:
    def test_wait_with_empty_queue_deadlocks(self, engine):
        t = Trigger()
        with pytest.raises(SimDeadlockError):
            engine.wait(t)

    def test_deadlock_poisons_other_waiters(self, engine):
        t1, t2 = Trigger(), Trigger()
        errors = []

        def child():
            try:
                engine.wait(t1)
            except SimDeadlockError as e:
                errors.append(e)

        engine.spawn(child)
        with pytest.raises(SimDeadlockError):
            engine.wait(t2)
        # the child gets poisoned too (bounded wall-clock wait)
        for _ in range(100):
            if errors:
                break
            threading.Event().wait(0.01)
        assert errors


class TestDraining:
    def test_run_until_idle_drains_all_events(self, engine):
        hits = []
        engine.schedule(1.0, lambda: hits.append(1))
        engine.schedule(2.0, lambda: hits.append(2))
        end = engine.run_until_idle()
        assert hits == [1, 2]
        assert end == pytest.approx(2.0)

    def test_stats_snapshot(self, engine):
        engine.sleep(1.0)
        stats = engine.stats()
        assert stats["now"] == pytest.approx(1.0)
        assert stats["events_executed"] == 1
        assert stats["registered_threads"] == 1


class TestCancellation:
    def test_cancelled_event_never_fires(self, engine):
        hits = []
        ev = engine.schedule(1.0, lambda: hits.append(1))
        assert engine.cancel(ev)
        engine.sleep(2.0)
        assert hits == []

    def test_cancel_after_execution_reports_false(self, engine):
        hits = []
        ev = engine.schedule(1.0, lambda: hits.append(1))
        engine.sleep(2.0)
        assert hits == [1]
        assert not engine.cancel(ev)

    def test_double_cancel_reports_false(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        assert engine.cancel(ev)
        assert not engine.cancel(ev)

    def test_timeout_idiom(self, engine):
        from repro.sim.engine import Trigger

        work = Trigger()
        deadline = engine.schedule(
            5.0, lambda: engine._fire_locked(
                work, None, TimeoutError("too slow")))
        engine.fire_after(1.0, work, "done")  # completes first
        assert engine.wait(work) == "done"
        assert engine.cancel(deadline)
        assert engine.now == 1.0
