"""Cluster network model: per-node NICs, latency, contention."""

from __future__ import annotations

import pytest

from repro.config import DiskModel, NetworkModel
from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork


def make_net(n=4, **model_kwargs):
    eng = Engine()
    eng.adopt_current_thread()
    model = NetworkModel(**model_kwargs)
    return eng, SimNetwork(eng, n, model, DiskModel())


class TestTopology:
    def test_nodes_cover_machines_and_driver(self):
        _eng, net = make_net(3)
        assert sorted(net.nodes) == [-1, 0, 1, 2]

    def test_unknown_node_rejected(self):
        _eng, net = make_net(2)
        with pytest.raises(SimulationError):
            net.node(7)

    def test_per_node_disks_on_demand(self):
        _eng, net = make_net(2)
        d1 = net.node(0).disk("a")
        d2 = net.node(0).disk("a")
        d3 = net.node(0).disk("b")
        assert d1 is d2 and d1 is not d3


class TestMessageCosts:
    def test_message_costs_latency_plus_two_serializations(self):
        eng, net = make_net(2, latency_s=0.1, bandwidth_Bps=1000.0)
        arrival = net.message_arrival(0, 1, 1000)
        # egress 1s + latency 0.1s + ingress 1s
        assert arrival == pytest.approx(2.1)

    def test_loopback_is_free(self):
        eng, net = make_net(2)
        assert net.message_arrival(1, 1, 10**9) == eng.now

    def test_fanin_contends_on_destination_ingress(self):
        eng, net = make_net(4, latency_s=0.0, bandwidth_Bps=1000.0)
        # three senders, one receiver: ingress serializes the three
        arrivals = sorted(net.message_arrival(src, 3, 1000)
                          for src in (0, 1, 2))
        assert arrivals == pytest.approx([2.0, 3.0, 4.0])

    def test_fanout_contends_on_source_egress(self):
        eng, net = make_net(4, latency_s=0.0, bandwidth_Bps=1000.0)
        arrivals = sorted(net.message_arrival(0, dst, 1000)
                          for dst in (1, 2, 3))
        assert arrivals == pytest.approx([2.0, 3.0, 4.0])

    def test_disjoint_pairs_do_not_contend(self):
        eng, net = make_net(4, latency_s=0.0, bandwidth_Bps=1000.0)
        a1 = net.message_arrival(0, 1, 1000)
        a2 = net.message_arrival(2, 3, 1000)
        assert a1 == a2 == pytest.approx(2.0)

    def test_finite_backplane_serializes_everything(self):
        eng, net = make_net(4, latency_s=0.0, bandwidth_Bps=1e9,
                            backplane_Bps=1000.0)
        a1 = net.message_arrival(0, 1, 1000)
        a2 = net.message_arrival(2, 3, 1000)
        assert a2 - a1 == pytest.approx(1.0)

    def test_send_fires_trigger_on_arrival(self):
        eng, net = make_net(2, latency_s=0.25, bandwidth_Bps=1e9)
        t = net.send(0, 1, 8, value="pkt")
        assert eng.wait(t) == "pkt"
        assert eng.now == pytest.approx(0.25, abs=1e-6)


class TestReport:
    def test_utilization_report_structure(self):
        eng, net = make_net(2)
        net.node(0).disk("d").read_end(1000)
        net.message_arrival(0, 1, 1000)
        eng.run_until_idle()
        report = net.utilization_report()
        assert set(report) == {-1, 0, 1}
        assert "egress_util" in report[0]
        assert report[0]["d_bytes_read"] == 1000
