"""The Span dataclass, the Tracer, and the exporters — pure unit tests."""

from __future__ import annotations

import json

import pytest

from repro.obs import Span, Tracer, current_span_id
from repro.obs.export import chrome_events, write_chrome, write_jsonl
from repro.obs.tracer import OBS_INTERNAL_METHODS
from repro.transport.message import Request


def make_span(**kw):
    base = dict(span_id=1, parent_id=None, kind="client", backend="mp",
                machine=-1, peer=1, oid=7, method="echo")
    base.update(kw)
    return Span(**base)


class TestSpan:
    def test_times_returns_name_value_pairs_in_causal_order(self):
        s = make_span(t_queued=1.0, t_sent=2.0, t_replied=3.0)
        assert s.times() == [("t_queued", 1.0), ("t_sent", 2.0),
                             ("t_replied", 3.0)]

    def test_times_skips_unset_fields(self):
        s = make_span(t_queued=1.0)  # in flight: never sent, never replied
        assert s.times() == [("t_queued", 1.0)]
        assert not s.finished

    def test_server_span_uses_server_time_fields(self):
        s = make_span(kind="server", t_received=1.0, t_executed=2.0,
                      t_replied=3.0)
        assert [n for n, _ in s.times()] == ["t_received", "t_executed",
                                             "t_replied"]

    def test_start_end_span_kind_agnostic(self):
        client = make_span(t_queued=1.0, t_sent=1.5, t_replied=4.0)
        server = make_span(kind="server", t_received=2.0, t_replied=3.0)
        assert (client.start, client.end) == (1.0, 4.0)
        assert (server.start, server.end) == (2.0, 3.0)

    def test_dict_roundtrip(self):
        s = make_span(t_queued=1.0, t_replied=2.0, error="CallTimeoutError")
        assert Span.from_dict(s.to_dict()) == s

    def test_from_dict_ignores_unknown_keys(self):
        data = make_span(t_queued=1.0).to_dict()
        data["future_field"] = "whatever"
        assert Span.from_dict(data) == make_span(t_queued=1.0)


class TestTracer:
    def test_ids_are_salted_per_node(self):
        driver = Tracer(node=-1, backend="mp")
        worker = Tracer(node=3, backend="mp")
        a = driver.start_client(peer=1, oid=7, method="m")
        b = worker.start_client(peer=1, oid=7, method="m")
        assert a.span_id >> 48 == 1      # driver (-1) salts to 1
        assert b.span_id >> 48 == 5      # machine 3 salts to 5
        assert a.span_id != b.span_id

    def test_drain_is_destructive_oldest_first(self):
        t = Tracer(node=-1, backend="inline")
        s1 = t.start_client(peer=0, oid=1, method="a")
        s2 = t.start_client(peer=0, oid=1, method="b")
        assert t.drain() == [s1, s2]
        assert t.drain() == []

    def test_buffer_is_bounded(self):
        t = Tracer(node=-1, backend="inline", max_spans=3)
        for i in range(10):
            t.start_client(peer=0, oid=1, method=f"m{i}")
        kept = t.drain()
        assert [s.method for s in kept] == ["m7", "m8", "m9"]

    def test_record_at_start_keeps_unfinished_spans(self):
        # A call dropped by a fault never finishes, but its span is
        # already in the buffer — the failure leaves a visible record.
        t = Tracer(node=-1, backend="mp")
        t.start_client(peer=1, oid=7, method="lost")
        (span,) = t.drain()
        assert span.t_replied is None and not span.finished

    def test_internal_obs_methods_not_wanted(self):
        t = Tracer(node=-1, backend="mp")
        for method in OBS_INTERNAL_METHODS:
            assert not t.wants(method)
        assert t.wants("echo")

    def test_scope_parents_nested_spans(self):
        t = Tracer(node=1, backend="mp")
        req = Request(request_id=1, object_id=7, method="outer", caller=-1,
                      span=12345)
        server = t.start_server(req)
        assert server.parent_id == 12345
        assert current_span_id() is None
        with t.scope(server):
            assert current_span_id() == server.span_id
            nested = t.start_client(peer=2, oid=9, method="inner")
            assert nested.parent_id == server.span_id
        assert current_span_id() is None

    def test_finish_records_error_name(self):
        t = Tracer(node=-1, backend="mp")
        span = t.start_client(peer=1, oid=7, method="m")
        t.finish_client(span, error="MachineDownError", replied=False)
        assert span.error == "MachineDownError"
        assert span.t_replied is None  # the reply never arrived


class TestExport:
    def spans(self):
        return [
            make_span(span_id=0x1_0001, t_queued=10.0, t_sent=10.1,
                      t_replied=10.5),
            make_span(span_id=0x3_0001, parent_id=0x1_0001, kind="server",
                      machine=1, peer=-1, t_received=10.2, t_executed=10.3,
                      t_replied=10.4),
        ]

    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        assert write_jsonl(self.spans(), path) == 2
        loaded = [Span.from_dict(json.loads(line)) for line in open(path)]
        assert loaded == self.spans()

    def test_chrome_events_structure(self):
        events = chrome_events(self.spans())
        meta = [e for e in events if e["ph"] == "M"]
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert {m["args"]["name"] for m in meta} == {"driver", "machine 1"}
        assert len(begins) == len(ends) == 2
        # timestamps re-based to the earliest span start, in microseconds
        assert min(e["ts"] for e in begins) == 0.0
        client = next(e for e in begins if e["name"] == "client echo")
        assert client["pid"] == 0 and client["ts"] == pytest.approx(0.0)
        server = next(e for e in begins if e["name"] == "server echo")
        assert server["pid"] == 2
        assert server["ts"] == pytest.approx(0.2e6)
        # the causal link survives export in the args
        assert server["args"]["parent"] == client["args"]["span"]
        # async b/e pairs share an id (hex span id)
        assert {e["id"] for e in begins} == {e["id"] for e in ends}

    def test_write_chrome_is_valid_json_with_extras(self, tmp_path):
        path = str(tmp_path / "trace.json")
        extra = [{"ph": "i", "name": "disk", "pid": 2, "tid": 0, "ts": 5.0,
                  "s": "t", "args": {}}]
        assert write_chrome(self.spans(), path, extra_events=extra) == 2
        data = json.load(open(path))
        assert data["displayTimeUnit"] == "ms"
        assert any(e.get("name") == "disk" for e in data["traceEvents"])

    def test_chrome_events_accepts_dicts(self):
        dicts = [s.to_dict() for s in self.spans()]
        assert chrome_events(dicts) == chrome_events(self.spans())
