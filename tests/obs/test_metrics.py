"""Transport counters and ``cluster.metrics()``.

Counters are always on (no ``trace=`` needed): the coalescer, the
header cache, the shm exporter and the retry loop each bump a few
integers as they work, and :meth:`Cluster.metrics` gathers the
per-process snapshots — over the wire for mp machine processes.
"""

from __future__ import annotations

import pytest

import repro as oopp
from repro.obs.metrics import Counters, counters, snapshot_process

#: every snapshot must carry these groups, populated or not.
GROUPS = ("coalesce", "retry", "faults", "serve", "header_cache", "shm")


class Echo:
    def echo(self, x):
        return x


class TestCounters:
    def test_inc_get_and_default(self):
        c = Counters()
        assert c.get("x") == 0
        c.inc("x")
        c.inc("x", 4)
        assert c.get("x") == 5

    def test_record_max_keeps_running_peak(self):
        c = Counters()
        c.record_max("serve.depth_peak", 3)
        c.record_max("serve.depth_peak", 1)   # lower: ignored
        assert c.get("serve.depth_peak") == 3
        c.record_max("serve.depth_peak", 9)
        assert c.get("serve.depth_peak") == 9

    def test_grouped_splits_on_first_dot(self):
        c = Counters()
        c.inc("coalesce.flushes", 3)
        c.inc("coalesce.messages_out", 7)
        c.inc("retry.attempts")
        assert c.grouped() == {
            "coalesce": {"flushes": 3, "messages_out": 7},
            "retry": {"attempts": 1},
        }

    def test_clear(self):
        c = Counters()
        c.inc("a.b")
        c.clear()
        assert c.snapshot() == {}

    def test_registry_is_a_process_singleton(self):
        assert counters() is counters()

    def test_snapshot_process_always_has_all_groups(self):
        snap = snapshot_process()
        for group in GROUPS:
            assert group in snap, group
        assert {"hits", "misses", "size"} <= set(snap["header_cache"])


class TestClusterMetrics:
    def test_single_process_backends_report_the_driver(self, tmp_path):
        for backend in ("inline", "sim"):
            with oopp.Cluster(n_machines=2, backend=backend,
                              storage_root=str(tmp_path / backend)) as cl:
                obj = cl.on(1).new(Echo)
                obj.echo(1)
                snap = cl.metrics()
            assert set(snap) == {"driver"}
            for group in GROUPS:
                assert group in snap["driver"]

    def test_mp_reports_driver_and_every_machine(self, mp_cluster):
        obj = mp_cluster.on(1).new(Echo)
        # a pipelined burst so the writer actually coalesces
        futures = [obj.echo.future(i) for i in range(50)]
        for f in futures:
            f.result(60)
        snap = mp_cluster.metrics()
        assert set(snap) == {"driver", "machine 0", "machine 1", "machine 2"}
        driver = snap["driver"]
        for group in GROUPS:
            assert group in driver
        # the burst flushed through the coalescer at least once
        assert driver["coalesce"].get("flushes", 0) > 0
        # 50 calls to one (object, method) site: the header cache hit
        assert driver["header_cache"]["hits"] > 0
        # the driver entry also carries the socket byte counters
        assert driver["traffic"]["bytes_out"] > 0
        # machine entries are kernel stats + the machine's own snapshot
        m1 = snap["machine 1"]
        assert m1["machine"] == 1
        assert m1["calls_served"] > 0
        for group in GROUPS:
            assert group in m1

    def test_metrics_counts_retries(self, tmp_path):
        from repro.transport.faults import FaultPlan, FaultRule

        plan = FaultPlan(seed=5, rules=[
            FaultRule(action="drop", direction="send", kinds=("req",),
                      methods=("echo",), nth=1)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                          retry=oopp.RetryConfig(retries=3, backoff_s=0.05),
                          fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cl:
            obj = cl.on(1).new(Idem)
            assert obj.echo(7) == 7  # first send dropped, retry lands
            snap = cl.metrics()
        assert snap["driver"]["retry"].get("attempts", 0) >= 1
        assert snap["driver"]["retry"].get("backoff_s", 0) > 0
        assert snap["driver"]["faults"].get("drop", 0) >= 1

    def test_metrics_after_shutdown_raises(self, tmp_path):
        cl = oopp.Cluster(n_machines=1, backend="inline",
                          storage_root=str(tmp_path / "r"))
        cl.shutdown()
        with pytest.raises(oopp.errors.ConfigError):
            cl.metrics()


class Idem:
    __oopp_idempotent__ = frozenset({"echo"})

    def echo(self, x):
        return x
