"""Every test under tests/obs/ carries the ``obs`` marker.

Run only the observability suite with ``pytest -m obs``, or exclude it
from a quick pass with ``pytest -m "not obs"``.
"""

from __future__ import annotations

import pathlib

import pytest

_OBS_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    for item in items:
        if _OBS_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.obs)
