"""Observability under injected faults.

The span buffer records at *start*, so a call whose frames are dropped
still leaves its client span behind (finished with the timeout error by
the future, or unfinished if the reply simply never came) — the trace
shows the failure instead of hiding it.  Metrics must keep working when
machines die: a down machine reports ``{"down": ...}`` instead of
hanging the gather.
"""

from __future__ import annotations

import pytest

import repro as oopp
from repro.errors import CallTimeoutError, MachineDownError
from repro.transport.faults import FaultPlan, FaultRule

pytestmark = pytest.mark.chaos


class Cell:
    __oopp_idempotent__ = frozenset({"get"})

    def __init__(self, value=0.0):
        self.value = value

    def set(self, value):
        self.value = value
        return True

    def get(self):
        return self.value

    def nap(self, seconds):
        import time

        time.sleep(seconds)
        return seconds


def well_formed(span):
    assert span.kind in ("client", "server")
    assert span.method
    assert isinstance(span.oid, int)
    values = [v for _, v in span.times()]
    assert values == sorted(values), span
    return True


class TestSpansUnderDrops:
    def test_dropped_batch_leaves_wellformed_spans(self, tmp_path):
        # One whole BATCH envelope vanishes; the calls inside retry to
        # success.  Every gathered span must still be well-formed, every
        # server span's parent must be a gathered client span, and the
        # failed first attempts must be visible as error-finished spans.
        import threading

        plan = FaultPlan(seed=11, rules=[
            FaultRule(action="drop", direction="send", kinds=("batch",),
                      nth=1)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                          retry=oopp.RetryConfig(retries=3, backoff_s=0.05),
                          fault_plan=plan, trace=True,
                          storage_root=str(tmp_path / "r")) as cluster:
            cells = [cluster.on(1).new(Cell) for _ in range(3)]
            for i, c in enumerate(cells):
                c.set(float(i))
            # Synchronous idempotent calls from several threads pile
            # into the coalescer together, so the dropped BATCH takes
            # several calls down at once; each one retries (the retry
            # layer wraps synchronous Fabric.call, not raw futures).
            results, errors = {}, []

            def call(i):
                try:
                    results[i] = cells[i].get()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=call, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors, errors
            assert results == {0: 0.0, 1: 1.0, 2: 2.0}
            spans = cluster.trace_spans()

        assert all(well_formed(s) for s in spans)
        client_ids = {s.span_id for s in spans if s.kind == "client"}
        for server in (s for s in spans if s.kind == "server"):
            assert server.parent_id in client_ids, server
        # each successful get has a finished, error-free client span
        ok = [s for s in spans if s.kind == "client" and s.method == "get"
              and s.error is None and s.finished]
        assert len(ok) >= 3

    def test_lost_call_leaves_an_unfinished_span(self, tmp_path):
        # Record-at-start: the span for a dropped call is already in the
        # buffer, and at gather time it is visibly *unfinished* — no
        # t_replied, no matching server span.  (Snapshot with to_dict():
        # drained spans are live objects, and cluster shutdown later
        # fails the still-pending future, which would mutate them.)
        plan = FaultPlan(seed=3, rules=[
            FaultRule(action="drop", direction="send", kinds=("req",),
                      methods=("get",), probability=1.0)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=0.5,
                          fault_plan=plan, trace=True,
                          storage_root=str(tmp_path / "r")) as cluster:
            cell = cluster.on(1).new(Cell)
            with pytest.raises(CallTimeoutError):
                cell.get()
            spans = [s.to_dict() for s in cluster.trace_spans()]
        lost = [s for s in spans if s["kind"] == "client"
                and s["method"] == "get"]
        assert lost
        for s in lost:
            assert s["t_sent"] is not None      # it left the stub...
            assert s["t_replied"] is None       # ...but nothing came back
        assert not any(s["kind"] == "server" and s["method"] == "get"
                       for s in spans)


class TestMetricsUnderFailure:
    def test_dead_machine_reports_down_not_hang(self, tmp_path):
        import time

        with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=30.0,
                          trace=True,
                          storage_root=str(tmp_path / "r")) as cluster:
            survivor = cluster.on(2).new(Cell)
            victim = cluster.on(1).new(Cell)
            victim.get()
            cluster.fabric.kill_machine(1, hard=True)
            deadline = time.time() + 5.0
            while time.time() < deadline and not cluster.fabric.machine_down(1):
                time.sleep(0.05)
            assert cluster.fabric.machine_down(1)

            snap = cluster.metrics()
            assert "down" in snap["machine 1"]
            assert set(snap["machine 1"]) == {"down"}
            # the rest of the cluster still reports real numbers
            assert snap["machine 2"]["calls_served"] > 0
            assert "coalesce" in snap["driver"]

            # span gather likewise skips the corpse instead of raising
            spans = cluster.trace_spans()
            assert all(well_formed(s) for s in spans)
            assert survivor.get() == 0.0

    def test_call_in_flight_when_machine_dies_leaves_error_span(self, tmp_path):
        import time

        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=30.0,
                          trace=True,
                          storage_root=str(tmp_path / "r")) as cluster:
            victim = cluster.on(1).new(Cell)
            victim.get()
            cluster.trace_spans()  # discard setup spans
            future = victim.nap.future(30.0)
            time.sleep(0.3)  # let the call land on the machine
            cluster.fabric.kill_machine(1, hard=True)
            with pytest.raises(MachineDownError):
                future.result(10.0)
            spans = cluster.trace_spans()
        (failed,) = [s for s in spans if s.kind == "client"
                     and s.method == "nap"]
        assert failed.error == "MachineDownError"
        assert failed.t_sent is not None  # it did leave the driver
