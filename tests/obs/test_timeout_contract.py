"""``RemoteFuture.result(timeout=...)`` raises CallTimeoutError everywhere.

One contract, three clocks: mp measures the timeout in wall seconds,
sim in *simulated* seconds (waiting is what advances the clock), and
inline can never time out because execution is synchronous — the future
is born completed.
"""

from __future__ import annotations

import time

import pytest

import repro as oopp
from repro.errors import CallTimeoutError


class Sleeper:
    def nap(self, seconds):
        time.sleep(seconds)
        return seconds

    def quick(self):
        return "ok"


class SimSleeper:
    def nap(self, seconds):
        from repro.runtime.context import current_hooks

        current_hooks().charge_compute(seconds)
        return seconds


def test_inline_futures_are_born_completed(tmp_path):
    with oopp.Cluster(n_machines=2, backend="inline",
                      storage_root=str(tmp_path / "r")) as cl:
        obj = cl.on(1).new(Sleeper)
        future = obj.quick.future()
        assert future.done()
        # any timeout, however absurd, is satisfiable immediately
        assert future.result(timeout=0.0) == "ok"


def test_mp_timeout_measured_on_the_wall_clock(tmp_path):
    with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=60.0,
                      storage_root=str(tmp_path / "r")) as cl:
        obj = cl.on(1).new(Sleeper)
        future = obj.nap.future(5.0)
        t0 = time.monotonic()
        with pytest.raises(CallTimeoutError):
            future.result(timeout=0.5)
        assert time.monotonic() - t0 < 3.0
        # the call itself was not cancelled; the future completes later
        assert future.result(timeout=30.0) == 5.0


def test_sim_timeout_measured_on_the_simulated_clock(tmp_path):
    with oopp.Cluster(n_machines=2, backend="sim",
                      storage_root=str(tmp_path / "r")) as cl:
        obj = cl.on(1).new(SimSleeper)
        future = obj.nap.future(5.0)  # charges 5 *simulated* seconds
        wall0 = time.monotonic()
        with pytest.raises(CallTimeoutError):
            future.result(timeout=1.0)  # 1 simulated second
        assert time.monotonic() - wall0 < 5.0  # simulated, not slept
        assert cl.fabric.now >= 1.0
        # the in-flight simulated work must finish before shutdown
        cl.fabric.drain()


def test_sim_reply_before_deadline_wins(tmp_path):
    with oopp.Cluster(n_machines=2, backend="sim",
                      storage_root=str(tmp_path / "r")) as cl:
        obj = cl.on(1).new(SimSleeper)
        future = obj.nap.future(2.0)
        assert future.result(timeout=50.0) == 2.0
        assert cl.fabric.now >= 2.0


def test_timeout_error_is_uniform_across_backends(tmp_path):
    # The exception type clients must catch is one and the same class.
    assert issubclass(CallTimeoutError, oopp.OoppError)
    assert CallTimeoutError is oopp.CallTimeoutError
