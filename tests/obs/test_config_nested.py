"""The nested Config groups and the deprecated flat spellings."""

from __future__ import annotations

import pickle
import warnings

import pytest

from repro.config import Config, RetryConfig, TraceConfig, WireConfig
from repro.errors import ConfigError


class TestNestedGroups:
    def test_defaults(self):
        cfg = Config()
        assert cfg.wire == WireConfig()
        assert cfg.retry == RetryConfig()
        assert cfg.trace is None
        assert cfg.wire.coalesce and cfg.wire.header_cache and cfg.wire.shm
        assert cfg.retry.retries == 0
        cfg.validate()

    def test_nested_construction(self):
        cfg = Config(wire=WireConfig(coalesce=False, shm=False),
                     retry=RetryConfig(retries=3, backoff_s=0.1),
                     trace=TraceConfig(max_spans=10))
        assert not cfg.wire.coalesce and not cfg.wire.shm
        assert cfg.wire.header_cache  # untouched knobs keep their defaults
        assert cfg.retry.retries == 3
        assert cfg.trace.max_spans == 10
        cfg.validate()

    def test_trace_bool_shorthands(self):
        assert Config(trace=True).trace == TraceConfig()
        assert Config(trace=False).trace is None

    def test_replace_with_nested_group(self):
        cfg = Config()
        cfg2 = cfg.replace(retry=RetryConfig(retries=2))
        assert cfg2.retry.retries == 2
        assert cfg.retry.retries == 0

    @pytest.mark.parametrize("group,message", [
        (dict(retry=RetryConfig(retries=-1)), "call_retries"),
        (dict(retry=RetryConfig(backoff_s=0.0)), "retry_backoff_s"),
        (dict(wire=WireConfig(coalesce_max_bytes=10)), "coalesce_max_bytes"),
        (dict(wire=WireConfig(coalesce_max_msgs=0)), "coalesce_max_msgs"),
        (dict(wire=WireConfig(shm_threshold_bytes=0)), "shm_threshold_bytes"),
        (dict(trace=TraceConfig(max_spans=0)), "max_spans"),
    ])
    def test_group_validation_messages(self, group, message):
        with pytest.raises(ConfigError, match=message):
            Config(**group).validate()

    def test_pickle_roundtrip(self):
        cfg = Config(wire=WireConfig(coalesce=False),
                     retry=RetryConfig(retries=1), trace=True)
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone.wire == cfg.wire
        assert clone.retry == cfg.retry
        assert clone.trace == cfg.trace


class TestLegacyFlatKnobs:
    def test_flat_kwargs_warn_and_forward(self):
        with pytest.warns(DeprecationWarning, match="call_retries"):
            cfg = Config(call_retries=3, retry_backoff_s=0.2)
        assert cfg.retry == RetryConfig(retries=3, backoff_s=0.2)

    def test_flat_wire_kwargs_forward(self):
        with pytest.warns(DeprecationWarning):
            cfg = Config(wire_coalesce=False, wire_header_cache=False,
                         wire_shm=False, shm_threshold_bytes=4096,
                         coalesce_max_bytes=2048, coalesce_max_msgs=7)
        assert cfg.wire == WireConfig(
            coalesce=False, header_cache=False, shm=False,
            shm_threshold_bytes=4096, coalesce_max_bytes=2048,
            coalesce_max_msgs=7)

    def test_flat_kwargs_do_not_leak_into_other_configs(self):
        # the nested groups are per-instance, not shared defaults
        with pytest.warns(DeprecationWarning):
            Config(call_retries=9)
        assert Config().retry.retries == 0

    def test_replace_accepts_flat_kwargs(self):
        base = Config()
        with pytest.warns(DeprecationWarning):
            cfg = base.replace(call_retries=2)
        assert cfg.retry.retries == 2
        assert base.retry.retries == 0  # the source instance is untouched

    def test_legacy_attribute_reads_warn_and_delegate(self):
        cfg = Config(wire=WireConfig(shm_threshold_bytes=4096))
        with pytest.warns(DeprecationWarning, match="shm_threshold_bytes"):
            assert cfg.shm_threshold_bytes == 4096
        with pytest.warns(DeprecationWarning, match="call_retries"):
            assert cfg.call_retries == 0

    def test_unknown_attribute_is_a_plain_attributeerror(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # must not warn on the miss
            with pytest.raises(AttributeError):
                Config().no_such_knob

    def test_flat_validation_messages_still_name_the_flat_knob(self):
        with pytest.warns(DeprecationWarning):
            bad = Config(call_retries=-1)
        with pytest.raises(ConfigError, match="call_retries"):
            bad.validate()
        with pytest.warns(DeprecationWarning):
            bad = Config(retry_backoff_s=0.0)
        with pytest.raises(ConfigError, match="retry_backoff_s"):
            bad.validate()

    def test_nested_and_flat_spellings_agree(self):
        with pytest.warns(DeprecationWarning):
            flat = Config(wire_coalesce=False, call_retries=2)
        nested = Config(wire=WireConfig(coalesce=False),
                        retry=RetryConfig(retries=2))
        assert flat.wire == nested.wire and flat.retry == nested.retry
