"""Causal call tracing across all three backends.

The same span model must hold everywhere: each traced call leaves a
client span on the caller and a server span on the hosting machine, the
server span's ``parent_id`` is the client span's id, and each span's
timestamps are monotone in causal order.  On sim the timestamps are
*simulated* seconds from the discrete-event clock.
"""

from __future__ import annotations

import pytest

import repro as oopp


class Echo:
    def echo(self, x):
        return x

    def boom(self):
        raise ValueError("deliberate")


class Relay:
    """Calls another remote object from inside its own method body."""

    def relay(self, peer, x):
        return peer.echo(x)


def traced_cluster(backend, tmp_path, **kw):
    kw.setdefault("call_timeout_s", 60.0)
    return oopp.Cluster(n_machines=3, backend=backend, trace=True,
                        storage_root=str(tmp_path / backend), **kw)


def span_values(span):
    return [value for _, value in span.times()]


@pytest.mark.parametrize("backend", ["inline", "mp", "sim"])
class TestEveryBackend:
    def test_off_by_default(self, backend, tmp_path):
        with oopp.Cluster(n_machines=2, backend=backend,
                          storage_root=str(tmp_path / "off")) as cluster:
            obj = cluster.on(1).new(Echo)
            assert obj.echo(1) == 1
            assert cluster.trace_spans() == []

    def test_client_and_server_spans_causally_linked(self, backend, tmp_path):
        with traced_cluster(backend, tmp_path) as cluster:
            obj = cluster.on(1).new(Echo)
            for i in range(3):
                assert obj.echo(i) == i
            spans = cluster.trace_spans()

        echo_client = [s for s in spans
                       if s.kind == "client" and s.method == "echo"]
        echo_server = [s for s in spans
                       if s.kind == "server" and s.method == "echo"]
        assert len(echo_client) == 3 and len(echo_server) == 3
        client_ids = {s.span_id for s in echo_client}
        for server in echo_server:
            assert server.parent_id in client_ids
            assert server.machine == 1
        for span in spans:
            assert span.backend == backend
            assert span.finished, span
            values = span_values(span)
            assert values == sorted(values), span

    def test_failed_call_records_error(self, backend, tmp_path):
        with traced_cluster(backend, tmp_path) as cluster:
            obj = cluster.on(1).new(Echo)
            with pytest.raises(ValueError):
                obj.boom()
            spans = cluster.trace_spans()
        server = next(s for s in spans
                      if s.kind == "server" and s.method == "boom")
        assert server.error == "ValueError"

    def test_nested_call_parents_to_server_span(self, backend, tmp_path):
        # relay() calls peer.echo() from inside its body: the inner
        # client span must parent to relay's *server* span — the call
        # tree the paper's object-to-object traffic forms.
        with traced_cluster(backend, tmp_path) as cluster:
            relay = cluster.on(1).new(Relay)
            peer = cluster.on(2).new(Echo)
            assert relay.relay(peer, 9) == 9
            spans = cluster.trace_spans()

        relay_server = next(s for s in spans
                            if s.kind == "server" and s.method == "relay")
        inner_client = next(s for s in spans if s.kind == "client"
                            and s.method == "echo"
                            and s.parent_id == relay_server.span_id)
        inner_server = next(s for s in spans if s.kind == "server"
                            and s.method == "echo")
        assert inner_server.parent_id == inner_client.span_id
        # three generations: root client -> relay server -> echo client
        root = next(s for s in spans
                    if s.kind == "client" and s.method == "relay")
        assert root.parent_id is None
        assert relay_server.parent_id == root.span_id

    def test_write_trace_produces_chrome_file(self, backend, tmp_path):
        import json

        path = str(tmp_path / "trace.json")
        with traced_cluster(backend, tmp_path) as cluster:
            obj = cluster.on(1).new(Echo)
            obj.echo(1)
            written = cluster.write_trace(path)
        assert written > 0
        data = json.load(open(path))
        kinds = {e["ph"] for e in data["traceEvents"]}
        assert {"M", "b", "e"} <= kinds


class TestBackendSpecifics:
    def test_sim_spans_use_simulated_clock(self, tmp_path):
        # A method that charges 2 simulated seconds: the span must show
        # ~2 simulated seconds between receive and execute even though
        # the wall-clock run takes milliseconds.
        with traced_cluster("sim", tmp_path) as cluster:
            obj = cluster.on(1).new(Slow)
            obj.work()
            t_end = cluster.fabric.engine.now
            spans = cluster.trace_spans()
        server = next(s for s in spans
                      if s.kind == "server" and s.method == "work")
        assert server.t_replied - server.t_received == pytest.approx(2.0)
        assert server.t_replied <= t_end

    def test_mp_span_ids_disjoint_across_processes(self, tmp_path):
        with traced_cluster("mp", tmp_path) as cluster:
            obj = cluster.on(1).new(Echo)
            obj.echo(1)
            spans = cluster.trace_spans()
        salts = {s.span_id >> 48 for s in spans}
        assert 1 in salts      # driver-minted client spans
        assert 3 in salts      # machine-1-minted server spans
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))

    def test_mp_pipelined_burst_overlaps_on_driver(self, tmp_path):
        # The paper's send-loop form: many futures in flight at once.
        # Client spans on the driver must overlap in time.
        with traced_cluster("mp", tmp_path) as cluster:
            obj = cluster.on(1).new(Echo)
            obj.echo(0)  # connection warmup
            cluster.trace_spans()  # discard setup spans
            futures = [obj.echo.future(i) for i in range(20)]
            assert [f.result(60) for f in futures] == list(range(20))
            spans = cluster.trace_spans()
        client = sorted((s for s in spans if s.kind == "client"),
                        key=lambda s: s.t_queued)
        assert len(client) == 20
        # at least one span begins before an earlier span replied
        overlapped = any(later.t_queued < earlier.t_replied
                         for earlier, later in zip(client, client[1:]))
        assert overlapped

    def test_trace_spans_is_destructive(self, tmp_path):
        with traced_cluster("mp", tmp_path) as cluster:
            obj = cluster.on(1).new(Echo)
            obj.echo(1)
            first = cluster.trace_spans()
            assert first
            assert cluster.trace_spans() == []


class Slow:
    def work(self):
        from repro.runtime.context import current_hooks

        current_hooks().charge_compute(2.0)
        return "done"
