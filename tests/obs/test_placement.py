"""The placement API: ``cluster.on(k).new(Cls, ...)``.

The paper allocates with ``new(machine k) Cls(...)`` — machine first,
then the constructor.  ``cluster.on(k)`` returns the machine's handle
and its ``new``/``new_block``/``submit`` mirror that word order;
``cluster.new(Cls, ..., machine=k)`` stays as a thin alias.
"""

from __future__ import annotations

import pytest

import repro as oopp
from repro.errors import ConfigError, NoSuchMachineError


class Tagged:
    def __init__(self, tag="t"):
        self.tag = tag

    def where(self):
        from repro.runtime.context import current_context

        return current_context().machine_id

    def get_tag(self):
        return self.tag


def _square(x):
    return x * x


class TestOnNew:
    def test_on_new_places_on_the_named_machine(self, any_cluster):
        for k in range(any_cluster.n_machines):
            obj = any_cluster.on(k).new(Tagged, tag=f"m{k}")
            assert oopp.ref_of(obj).machine == k
            assert obj.where() == k
            assert obj.get_tag() == f"m{k}"

    def test_alias_and_placement_first_agree(self, any_cluster):
        via_on = any_cluster.on(1).new(Tagged)
        via_alias = any_cluster.new(Tagged, machine=1)
        assert oopp.ref_of(via_on).machine == 1
        assert oopp.ref_of(via_alias).machine == 1

    def test_alias_defaults_to_machine_zero(self, any_cluster):
        obj = any_cluster.new(Tagged)
        assert oopp.ref_of(obj).machine == 0

    def test_on_rejects_nonexistent_machines(self, any_cluster):
        with pytest.raises(NoSuchMachineError):
            any_cluster.on(any_cluster.n_machines)
        with pytest.raises(NoSuchMachineError):
            any_cluster.on(-1)

    def test_new_block(self, any_cluster):
        block = any_cluster.on(2).new_block(8, fill=3.0)
        assert oopp.ref_of(block).machine == 2
        assert block.sum() == 24.0
        alias = any_cluster.new_block(4, machine=1)
        assert oopp.ref_of(alias).machine == 1

    def test_machines_property_hands_out_every_handle(self, any_cluster):
        handles = any_cluster.machines
        assert [h.id for h in handles] == list(range(any_cluster.n_machines))
        assert all(h.ping() == h.id for h in handles)

    def test_new_after_shutdown_raises(self, tmp_path):
        cluster = oopp.Cluster(n_machines=2, backend="inline",
                               storage_root=str(tmp_path / "r"))
        handle = cluster.on(1)
        cluster.shutdown()
        with pytest.raises(ConfigError, match="shut down"):
            handle.new(Tagged)


class TestSubmitViaHandle:
    def test_submit_runs_on_the_handles_machine(self, any_cluster):
        assert any_cluster.on(1).submit(_square, 7) == 49

    def test_submit_async_is_pipelined(self, any_cluster):
        futures = [any_cluster.on(i % any_cluster.n_machines)
                   .submit_async(_square, i) for i in range(6)]
        assert [f.result(60) for f in futures] == [i * i for i in range(6)]
