"""Config validation and defaults."""

from __future__ import annotations

import os

import pytest

from repro.config import Config, DiskModel, NetworkModel, ServeConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        Config().validate()

    @pytest.mark.parametrize("field,value", [
        ("backend", "nope"),
        ("n_machines", 0),
        ("call_timeout_s", 0.0),
        ("pickle_protocol", 1),
        ("pickle_protocol", 6),
        ("startup_timeout_s", 0),
        ("shutdown_timeout_s", -1),
        ("sim_default_compute_s", -0.5),
        ("mp_workers_per_machine", 0),
        ("mp_start_method", "teleport"),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            Config(**{field: value}).validate()

    def test_serve_yield_headroom(self):
        assert ServeConfig().yield_headroom == 16
        Config(serve=ServeConfig(yield_headroom=0)).validate()
        with pytest.raises(ConfigError):
            Config(serve=ServeConfig(yield_headroom=-1)).validate()

    def test_replace_returns_validated_copy(self):
        cfg = Config()
        cfg2 = cfg.replace(n_machines=8)
        assert cfg2.n_machines == 8 and cfg.n_machines == 4
        with pytest.raises(ConfigError):
            cfg.replace(n_machines=-1)

    def test_network_model_validation(self):
        with pytest.raises(ConfigError):
            NetworkModel(latency_s=-1).validate()
        with pytest.raises(ConfigError):
            NetworkModel(bandwidth_Bps=0).validate()
        with pytest.raises(ConfigError):
            NetworkModel(per_message_cpu_s=-1).validate()
        with pytest.raises(ConfigError):
            NetworkModel(backplane_Bps=-1).validate()

    def test_disk_model_validation(self):
        with pytest.raises(ConfigError):
            DiskModel(seek_s=-1).validate()
        with pytest.raises(ConfigError):
            DiskModel(bandwidth_Bps=0).validate()


class TestStorageRoot:
    def test_explicit_root_created(self, tmp_path):
        root = str(tmp_path / "deep" / "root")
        cfg = Config(storage_root=root)
        assert cfg.resolve_storage_root() == root
        assert os.path.isdir(root)

    def test_default_root_is_per_process(self):
        cfg = Config()
        root = cfg.resolve_storage_root()
        assert str(os.getpid()) in root
        assert os.path.isdir(root)
