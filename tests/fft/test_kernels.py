"""From-scratch FFT kernels against the numpy oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.kernels import (
    FFTError,
    clear_plan_cache,
    fft_kernel,
    ifft_kernel,
    plan_cache_sizes,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestForward:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 256, 1024])
    def test_power_of_two_matches_numpy(self, n):
        x = rng(n).random(n) + 1j * rng(n + 1).random(n)
        assert np.allclose(fft_kernel(x, -1), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 9, 11, 12, 15, 17, 30, 97,
                                   100, 255])
    def test_arbitrary_length_bluestein(self, n):
        x = rng(n).random(n) + 1j * rng(n + 1).random(n)
        assert np.allclose(fft_kernel(x, -1), np.fft.fft(x), atol=1e-8)

    def test_real_input_promoted(self):
        x = rng(1).random(32)
        assert np.allclose(fft_kernel(x, -1), np.fft.fft(x), atol=1e-9)
        assert fft_kernel(x, -1).dtype == np.complex128

    def test_batched_last_axis(self):
        x = rng(2).random((5, 7, 16)) + 1j * rng(3).random((5, 7, 16))
        assert np.allclose(fft_kernel(x, -1), np.fft.fft(x, axis=-1),
                           atol=1e-9)

    def test_known_impulse(self):
        x = np.zeros(8, dtype=complex)
        x[0] = 1.0
        assert np.allclose(fft_kernel(x, -1), np.ones(8))

    def test_known_constant(self):
        x = np.ones(8, dtype=complex)
        want = np.zeros(8, dtype=complex)
        want[0] = 8.0
        assert np.allclose(fft_kernel(x, -1), want, atol=1e-12)

    def test_input_not_mutated(self):
        x = rng(4).random(16) + 0j
        keep = x.copy()
        fft_kernel(x, -1)
        assert np.array_equal(x, keep)


class TestInverse:
    @pytest.mark.parametrize("n", [2, 8, 12, 17, 64, 100])
    def test_ifft_matches_numpy(self, n):
        x = rng(n).random(n) + 1j * rng(n + 2).random(n)
        assert np.allclose(ifft_kernel(x), np.fft.ifft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [2, 8, 12, 17, 64, 100])
    def test_round_trip_identity(self, n):
        x = rng(n).random(n) + 1j * rng(n + 2).random(n)
        assert np.allclose(ifft_kernel(fft_kernel(x, -1)), x, atol=1e-9)

    def test_unnormalized_inverse_sign(self):
        x = rng(7).random(16) + 0j
        assert np.allclose(fft_kernel(x, +1) / 16, np.fft.ifft(x), atol=1e-9)


class TestProperties:
    @given(st.integers(1, 120), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_for_any_length(self, n, seed):
        x = rng(seed).random(n) + 1j * rng(seed + 1).random(n)
        assert np.allclose(fft_kernel(x, -1), np.fft.fft(x), atol=1e-7)

    @given(st.integers(2, 64), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_linearity(self, n, seed):
        g = rng(seed)
        x, y = g.random(n) + 0j, g.random(n) + 0j
        a, b = g.random(2)
        lhs = fft_kernel(a * x + b * y, -1)
        rhs = a * fft_kernel(x, -1) + b * fft_kernel(y, -1)
        assert np.allclose(lhs, rhs, atol=1e-8)

    @given(st.integers(2, 64), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_parseval(self, n, seed):
        x = rng(seed).random(n) + 1j * rng(seed + 5).random(n)
        X = fft_kernel(x, -1)
        assert np.sum(np.abs(x) ** 2) * n == pytest.approx(
            np.sum(np.abs(X) ** 2), rel=1e-9)


class TestValidation:
    def test_bad_sign(self):
        with pytest.raises(FFTError):
            fft_kernel(np.ones(4), sign=2)

    def test_scalar_rejected(self):
        with pytest.raises(FFTError):
            fft_kernel(np.float64(3.0))

    def test_empty_axis_rejected(self):
        with pytest.raises(FFTError):
            fft_kernel(np.ones((3, 0)))


class TestPlanCache:
    def test_plans_are_cached_and_clearable(self):
        clear_plan_cache()
        fft_kernel(np.ones(16), -1)
        fft_kernel(np.ones(12), -1)  # bluestein (needs pow2 plan too)
        r, b = plan_cache_sizes()
        assert r >= 2 and b == 1
        clear_plan_cache()
        assert plan_cache_sizes() == (0, 0)
