"""Distributed 3-D FFT: the paper §4 object protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OoppError
from repro.fft.distributed import FFT, DistributedFFT3D
from repro.fft.kernels import FFTError


def data(shape, seed=0):
    g = np.random.default_rng(seed)
    return g.random(shape) + 1j * g.random(shape)


class TestWorkerLocal:
    """FFT worker methods driven directly (no cluster)."""

    def make_group(self, n, shape):
        workers = [FFT(i) for i in range(n)]
        for w in workers:
            w.SetGroup(n, workers)
            w.set_shape(shape)
        return workers

    def test_set_group_validates_count(self):
        w = FFT(0)
        with pytest.raises(OoppError):
            w.SetGroup(3, [w])

    def test_uninitialized_worker_fails_loudly(self):
        w = FFT(0)
        with pytest.raises(OoppError, match="SetGroup"):
            w.my_bounds()
        with pytest.raises(OoppError, match="no slab"):
            w.slab()

    def test_load_validates_slab_shape(self):
        (w,) = self.make_group(1, (4, 4, 4))
        with pytest.raises(FFTError):
            w.load(np.zeros((3, 4, 4)))

    def test_full_local_pipeline_matches_numpy(self):
        shape = (8, 6, 5)
        a = data(shape, seed=1)
        workers = self.make_group(3, shape)
        for i, w in enumerate(workers):
            lo, hi = w.my_bounds(0)
            w.load(a[lo:hi])
        for w in workers:
            w.fft_axes12(-1)
        for w in workers:
            w.scatter("t")
        for w in workers:
            w.assemble("t")
        for w in workers:
            w.fft_axis0(-1)
        got = np.concatenate([w.slab() for w in workers], axis=1)
        assert np.allclose(got, np.fft.fftn(a), atol=1e-8)

    def test_scatter_back_restores_layout(self):
        shape = (6, 6, 4)
        a = data(shape, seed=2)
        workers = self.make_group(2, shape)
        for w in workers:
            lo, hi = w.my_bounds(0)
            w.load(a[lo:hi])
        for w in workers:
            w.fft_axes12(-1)
        for w in workers:
            w.scatter("f")
        for w in workers:
            w.assemble("f")
        for w in workers:
            w.fft_axis0(-1)
        for w in workers:
            w.scatter_back("b")
        for w in workers:
            w.assemble_back("b")
        got = np.concatenate([w.slab() for w in workers], axis=0)
        assert np.allclose(got, np.fft.fftn(a), atol=1e-8)

    def test_assemble_with_missing_deposit_fails(self):
        workers = self.make_group(2, (4, 4, 4))
        workers[0].deposit("p", 0, np.zeros((2, 2, 4)))
        with pytest.raises(OoppError, match="missing"):
            workers[0].assemble("p")

    def test_inbox_bookkeeping(self):
        (w,) = self.make_group(1, (2, 2, 2))
        w.deposit("x", 0, np.zeros((2, 2, 2)))
        assert w.inbox_size() == 1


class TestFacade:
    @pytest.mark.parametrize("shape", [(8, 8, 8), (12, 10, 6), (7, 5, 9)])
    def test_forward_matches_numpy(self, inline_cluster, shape):
        a = data(shape, seed=3)
        plan = DistributedFFT3D(inline_cluster, shape, n_workers=4)
        assert np.allclose(plan.forward(a), np.fft.fftn(a), atol=1e-8)

    def test_inverse_matches_numpy(self, inline_cluster):
        a = data((8, 6, 4), seed=4)
        plan = DistributedFFT3D(inline_cluster, (8, 6, 4), n_workers=3)
        assert np.allclose(plan.inverse(a), np.fft.ifftn(a), atol=1e-8)

    def test_round_trip(self, inline_cluster):
        a = data((8, 8, 4), seed=5)
        plan = DistributedFFT3D(inline_cluster, (8, 8, 4), n_workers=4)
        assert np.allclose(plan.inverse(plan.forward(a)), a, atol=1e-8)

    def test_repeated_transforms_same_plan(self, inline_cluster):
        plan = DistributedFFT3D(inline_cluster, (6, 6, 6), n_workers=2)
        for seed in range(3):
            a = data((6, 6, 6), seed=seed)
            assert np.allclose(plan.forward(a), np.fft.fftn(a), atol=1e-8)

    def test_shape_mismatch_rejected(self, inline_cluster):
        plan = DistributedFFT3D(inline_cluster, (6, 6, 6), n_workers=2)
        with pytest.raises(FFTError):
            plan.load(np.zeros((5, 6, 6)))

    def test_too_many_workers_rejected(self, inline_cluster):
        with pytest.raises(FFTError):
            DistributedFFT3D(inline_cluster, (2, 2, 2), n_workers=4)

    def test_destroy_releases_workers(self, inline_cluster):
        import repro as oopp

        plan = DistributedFFT3D(inline_cluster, (4, 4, 4), n_workers=2)
        plan.destroy()
        with pytest.raises(oopp.NoSuchObjectError):
            plan.group[0].slab()


class TestOutOfCore:
    def test_forward_arrays(self, inline_cluster):
        from repro.array.array3d import Array
        from repro.array.ops import offset_map
        from repro.storage.blockstore import create_block_storage
        from repro.storage.pagemap import RoundRobinPageMap

        shape, page, grid = (8, 8, 8), (4, 4, 4), (2, 2, 2)
        base = RoundRobinPageMap(grid=grid, n_devices=4)
        cap = base.pages_per_device
        store = create_block_storage(inline_cluster, 4,
                                     NumberOfPages=3 * cap + 1,
                                     n1=4, n2=4, n3=4)

        def arr(k):
            return Array(*shape, *page, store,
                         offset_map(grid=grid, n_devices=4, base=base,
                                    offset=k * cap))

        src, dst_re, dst_im = arr(0), arr(1), arr(2)
        a = np.random.default_rng(6).random(shape)
        src.write(a)
        plan = DistributedFFT3D(inline_cluster, shape, n_workers=4)
        plan.forward_arrays(src, None, dst_re, dst_im)
        got = dst_re.read() + 1j * dst_im.read()
        assert np.allclose(got, np.fft.fftn(a), atol=1e-8)
        # and back again, in place on the destination arrays
        plan.inverse_arrays(dst_re, dst_im)
        assert np.allclose(dst_re.read() + 1j * dst_im.read(), a, atol=1e-8)
