"""Extended distributed-FFT coverage: layouts, reuse, charging, shapes."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.fft.distributed import FFT, DistributedFFT3D


def data(shape, seed=0):
    g = np.random.default_rng(seed)
    return g.random(shape) + 1j * g.random(shape)


class TestShapeMatrix:
    @pytest.mark.parametrize("shape,n_workers", [
        ((4, 4, 4), 1),
        ((4, 4, 4), 4),       # one plane per worker
        ((5, 7, 3), 2),       # odd sizes, Bluestein path
        ((9, 5, 6), 3),       # ragged slabs both axes
        ((16, 2, 2), 2),      # thin
        ((2, 16, 2), 2),      # thin the other way
    ])
    def test_forward_and_inverse(self, inline_cluster, shape, n_workers):
        a = data(shape, seed=hash(shape) % 1000)
        plan = DistributedFFT3D(inline_cluster, shape, n_workers=n_workers)
        assert np.allclose(plan.forward(a), np.fft.fftn(a), atol=1e-8)
        assert np.allclose(plan.inverse(a), np.fft.ifftn(a), atol=1e-8)


class TestTransposedLayout:
    def test_no_restore_leaves_axis1_distribution(self, inline_cluster):
        """With restore_layout=False the result stays transposed —
        callers doing convolution round trips can skip two all-to-alls."""
        shape = (8, 6, 4)
        a = data(shape, seed=9)
        plan = DistributedFFT3D(inline_cluster, shape, n_workers=2)
        plan.load(a)
        plan.transform_loaded(-1, restore_layout=False)
        slabs = plan.group.invoke("slab")
        got = np.concatenate(slabs, axis=1)  # axis-1 distributed now
        assert np.allclose(got, np.fft.fftn(a), atol=1e-8)

    def test_convolution_without_intermediate_restore(self, inline_cluster):
        """forward (no restore) → spectral multiply → inverse phases in
        the transposed layout → restore once."""
        shape = (8, 4, 4)
        a = data(shape, seed=10)
        plan = DistributedFFT3D(inline_cluster, shape, n_workers=2)
        plan.load(a)
        plan.transform_loaded(-1, restore_layout=False)
        # spectral scaling at the workers (stand-in for a filter)
        plan.group.invoke("normalize", 2.0)
        # inverse on the transposed data: same pipeline, swapped roles.
        # Inverse transform of the transposed layout needs the forward
        # machinery run in reverse order; simplest correct route is to
        # restore then run a full inverse:
        gen = plan._generation
        plan._generation += 1
        plan.group.invoke("scatter_back", f"x{gen}")
        plan.group.invoke("assemble_back", f"x{gen}")
        plan.transform_loaded(+1)
        n_total = shape[0] * shape[1] * shape[2]
        plan.group.invoke("normalize", 1.0 / n_total)
        got = plan.gather()
        assert np.allclose(got, 2.0 * a, atol=1e-8)


class TestPlanReuse:
    def test_many_transforms_one_plan(self, inline_cluster):
        plan = DistributedFFT3D(inline_cluster, (6, 6, 6), n_workers=3)
        for seed in range(5):
            a = data((6, 6, 6), seed=seed)
            assert np.allclose(plan.forward(a), np.fft.fftn(a), atol=1e-8)
        # worker inboxes fully drained after every generation
        assert plan.group.invoke("inbox_size") == [0, 0, 0]


class TestComputeCharging:
    def test_flops_rate_changes_sim_time_not_results(self, tmp_path):
        shape = (8, 8, 8)
        a = data(shape, seed=11)
        times = {}
        results = {}
        for rate in (None, 1e9):
            with oopp.Cluster(n_machines=2, backend="sim",
                              storage_root=str(tmp_path / str(rate))) as c:
                eng = c.fabric.engine
                plan = DistributedFFT3D(c, shape, n_workers=2,
                                        flops_rate=rate)
                t0 = eng.now
                results[rate] = plan.forward(a)
                times[rate] = eng.now - t0
        assert np.allclose(results[None], results[1e9])
        assert times[1e9] > times[None]  # compute was charged

    def test_worker_charge_estimate_monotone_in_size(self):
        w = FFT(0, flops_rate=1e9)
        charged = []

        class Hooks:
            def __init__(self):
                self.total = 0.0

            def charge_compute(self, s):
                self.total += s

        from repro.runtime.context import RuntimeContext, context_scope

        for n in (8, 16, 32):
            hooks = Hooks()
            ctx = RuntimeContext(fabric=None, machine_id=0, hooks=hooks)
            with context_scope(ctx):
                w._charge_fft_compute(n, n)
            charged.append(hooks.total)
        assert charged[0] < charged[1] < charged[2]
