"""Serial multi-axis transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fft.serial import fft, fft2, fftn, ifft, ifft2, ifftn


def data(shape, seed=0):
    g = np.random.default_rng(seed)
    return g.random(shape) + 1j * g.random(shape)


class TestAxisTransforms:
    @pytest.mark.parametrize("axis", [0, 1, 2, -1, -2])
    def test_fft_along_any_axis(self, axis):
        x = data((6, 10, 8))
        assert np.allclose(fft(x, axis), np.fft.fft(x, axis=axis), atol=1e-8)

    @pytest.mark.parametrize("axis", [0, 1, -1])
    def test_ifft_along_any_axis(self, axis):
        x = data((6, 10, 8), seed=1)
        assert np.allclose(ifft(x, axis), np.fft.ifft(x, axis=axis),
                           atol=1e-8)

    def test_fft2(self):
        x = data((4, 12, 8), seed=2)
        assert np.allclose(fft2(x), np.fft.fft2(x), atol=1e-8)
        assert np.allclose(fft2(x, axes=(0, 2)),
                           np.fft.fft2(x, axes=(0, 2)), atol=1e-8)

    def test_ifft2_round_trip(self):
        x = data((4, 6, 8), seed=3)
        assert np.allclose(ifft2(fft2(x)), x, atol=1e-8)


class TestFullTransforms:
    @pytest.mark.parametrize("shape", [(4, 4, 4), (8, 6, 10), (3, 5, 7),
                                       (1, 1, 1), (2, 16, 3)])
    def test_fftn_matches_numpy(self, shape):
        x = data(shape, seed=4)
        assert np.allclose(fftn(x), np.fft.fftn(x), atol=1e-7)

    @pytest.mark.parametrize("shape", [(4, 4, 4), (3, 5, 7)])
    def test_ifftn_matches_numpy(self, shape):
        x = data(shape, seed=5)
        assert np.allclose(ifftn(x), np.fft.ifftn(x), atol=1e-7)

    def test_round_trip(self):
        x = data((6, 5, 9), seed=6)
        assert np.allclose(ifftn(fftn(x)), x, atol=1e-7)

    def test_works_on_2d_and_1d(self):
        x2 = data((8, 12), seed=7)
        assert np.allclose(fftn(x2), np.fft.fftn(x2), atol=1e-8)
        x1 = data(17, seed=8)
        assert np.allclose(fftn(x1), np.fft.fft(x1), atol=1e-8)

    def test_real_input(self):
        x = np.random.default_rng(9).random((4, 4, 4))
        assert np.allclose(fftn(x), np.fft.fftn(x), atol=1e-8)


class TestRealTransforms:
    @pytest.mark.parametrize("n", [2, 3, 8, 9, 16, 17, 30])
    def test_rfft_matches_numpy(self, n):
        from repro.fft.serial import rfft

        x = np.random.default_rng(n).random(n)
        assert np.allclose(rfft(x), np.fft.rfft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [2, 4, 8, 9, 16, 17, 30])
    def test_irfft_matches_numpy(self, n):
        from repro.fft.serial import irfft

        spec = np.fft.rfft(np.random.default_rng(n + 100).random(n))
        assert np.allclose(irfft(spec, n=n), np.fft.irfft(spec, n=n),
                           atol=1e-9)

    @pytest.mark.parametrize("n", [4, 8, 10, 16])
    def test_round_trip_even_lengths(self, n):
        from repro.fft.serial import irfft, rfft

        x = np.random.default_rng(n).random(n)
        assert np.allclose(irfft(rfft(x)), x, atol=1e-9)

    def test_batched_and_axis(self):
        from repro.fft.serial import rfft

        x = np.random.default_rng(5).random((3, 10, 4))
        assert np.allclose(rfft(x, axis=1), np.fft.rfft(x, axis=1),
                           atol=1e-9)

    def test_complex_input_rejected(self):
        from repro.fft.serial import rfft

        with pytest.raises(ValueError, match="real input"):
            rfft(np.ones(4, dtype=complex))

    def test_irfft_bad_length(self):
        from repro.fft.serial import irfft

        with pytest.raises(ValueError):
            irfft(np.ones(1, dtype=complex), n=0)
