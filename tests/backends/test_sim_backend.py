"""Simulated backend: clock charging, contention, nominal sizes."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.config import NetworkModel
from repro.runtime.context import current_hooks
from repro.storage.device import ArrayPageDevice


class Toiler:
    def work(self, seconds):
        current_hooks().charge_compute(seconds)
        return seconds

    def io(self, nbytes):
        current_hooks().charge_disk_read("disk0", nbytes)
        return nbytes


class TestClockCharging:
    def test_remote_call_advances_clock(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        blk = sim_cluster.new_block(8, machine=1)
        t0 = eng.now
        blk.sum()
        assert eng.now > t0

    def test_round_trip_at_least_two_latencies(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        lat = sim_cluster.config.network.latency_s
        blk = sim_cluster.new_block(8, machine=1)
        t0 = eng.now
        blk.sum()
        assert eng.now - t0 >= 2 * lat

    def test_compute_charge(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        t = sim_cluster.new(Toiler, machine=1)
        t0 = eng.now
        t.work(0.75)
        assert eng.now - t0 == pytest.approx(0.75, abs=1e-3)

    def test_disk_charge(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        disk = sim_cluster.config.disk
        t = sim_cluster.new(Toiler, machine=1)
        t0 = eng.now
        t.io(150_000_000)  # 1 second at 150 MB/s + seek
        dt = eng.now - t0
        assert dt >= 1.0 + disk.seek_s

    def test_parallel_compute_overlaps(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        group = sim_cluster.new_group(Toiler, 3)
        t0 = eng.now
        oopp.wait_all(group.futures("work", 0.5))
        # three workers on three machines: wall simulated time ~0.5s
        assert eng.now - t0 < 0.6

    def test_sequential_compute_accumulates(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        group = sim_cluster.new_group(Toiler, 3)
        t0 = eng.now
        group.invoke_sequential("work", 0.5)
        assert eng.now - t0 >= 1.5

    def test_payload_size_charged(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        bw = sim_cluster.config.network.bandwidth_Bps
        blk = sim_cluster.new_block(1 << 20, machine=1)
        t0 = eng.now
        blk.read()  # ~8 MiB response
        dt = eng.now - t0
        assert dt >= (8 << 20) / bw  # at least the serialization time


class TestNominalSizes:
    def test_nominal_pages_charged_not_real(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        bw = sim_cluster.config.network.bandwidth_Bps
        dev = sim_cluster.new(ArrayPageDevice, "nom.dat", 2, 2, 2, 2,
                              machine=1, nominal_page_size=1 << 26)
        t0 = eng.now
        page = dev.read_page(0)
        dt = eng.now - t0
        # 64 MiB charged over the network and disk, although the real
        # page is 64 bytes of doubles.
        assert dt >= (1 << 26) / bw
        assert page.nbytes == 64

    def test_real_data_still_correct(self, sim_cluster):
        from repro.storage.page import ArrayPage

        dev = sim_cluster.new(ArrayPageDevice, "nom2.dat", 2, 2, 2, 2,
                              machine=1, nominal_page_size=1 << 20)
        dev.write_page(ArrayPage(2, 2, 2, np.arange(8.0)), 0)
        assert dev.sum(0) == 28.0


class TestDeterminism:
    def test_identical_runs_identical_clocks(self, tmp_path):
        def run():
            with oopp.Cluster(n_machines=3, backend="sim",
                              storage_root=str(tmp_path / "r")) as cluster:
                group = cluster.new_group(Toiler, 5)
                oopp.wait_all(group.futures("work", 0.01))
                group.invoke("work", 0.02)
                return cluster.fabric.engine.now

        assert run() == run()

    def test_custom_network_model_respected(self, tmp_path):
        slow = NetworkModel(latency_s=1.0, bandwidth_Bps=1e9)
        with oopp.Cluster(n_machines=2, backend="sim", network=slow,
                          storage_root=str(tmp_path / "r2")) as cluster:
            eng = cluster.fabric.engine
            blk = cluster.new_block(4, machine=1)
            t0 = eng.now
            blk.sum()
            assert eng.now - t0 >= 2.0  # two 1-second latencies


class TestQuiesce:
    def test_barrier_drains_inflight_simulated_work(self, sim_cluster):
        eng = sim_cluster.fabric.engine
        group = sim_cluster.new_group(Toiler, 3)
        futures = group.futures("work", 0.1)
        t0 = eng.now
        group.barrier()
        assert eng.now - t0 >= 0.09
        oopp.wait_all(futures)

    def test_cluster_wide_barrier(self, sim_cluster):
        t = sim_cluster.new(Toiler, machine=2)
        f = t.work.future(0.05)
        sim_cluster.barrier()
        assert f.done()


class TestTracing:
    def test_calls_are_traced(self, sim_cluster):
        blk = sim_cluster.new_block(8, machine=1)
        blk.sum()
        trace = sim_cluster.fabric.trace
        calls = trace.filter("call")
        assert any(e.detail.get("method") == "sum" for e in calls)

    def test_utilization_report(self, sim_cluster):
        blk = sim_cluster.new_block(1 << 16, machine=1)
        blk.read()
        report = sim_cluster.fabric.utilization_report()
        assert report[1]["egress_util"] > 0  # machine 1 sent the payload
