"""PeerClient under concurrent .future() bursts from many threads.

The wire fast path coalesces these bursts into BATCH frames; what must
never change: every call gets a unique request id, every future resolves
to its own call's result (no cross-wiring), frames never interleave on
the socket, and the knobs can be flipped off without changing semantics.
"""

from __future__ import annotations

import threading

import pytest

import repro as oopp
from repro.util.ids import IdAllocator


class Echo:
    def echo(self, tag):
        return tag

    def add(self, a, b):
        return a + b


def burst_from_threads(cluster, n_threads=6, per_thread=40):
    """Fire echo futures from many driver threads; return (sent, got)."""
    objs = [cluster.new(Echo, machine=m)
            for m in range(cluster.fabric.machine_count)]
    results: dict[int, list] = {}
    errors: list[BaseException] = []

    def caller(tid):
        try:
            futures = []
            for i in range(per_thread):
                obj = objs[(tid + i) % len(objs)]
                futures.append((tid * 10_000 + i, obj.echo.future(tid * 10_000 + i)))
            results[tid] = [(tag, f.result(30)) for tag, f in futures]
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [threading.Thread(target=caller, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    return n_threads * per_thread, results


class TestConcurrentBursts:
    def test_every_future_gets_its_own_result(self, mp_cluster):
        total, results = burst_from_threads(mp_cluster)
        flat = [pair for r in results.values() for pair in r]
        assert len(flat) == total
        for tag, value in flat:
            assert value == tag, "response cross-wired between futures"

    def test_burst_with_fastpath_disabled(self, tmp_path):
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=60.0,
                          wire_coalesce=False, wire_header_cache=False,
                          wire_shm=False,
                          storage_root=str(tmp_path / "root")) as cluster:
            total, results = burst_from_threads(cluster, n_threads=4,
                                                per_thread=25)
            flat = [pair for r in results.values() for pair in r]
            assert len(flat) == total
            assert all(v == t for t, v in flat)

    @pytest.mark.parametrize("knob", ["wire_coalesce", "wire_header_cache",
                                      "wire_shm"])
    def test_each_knob_disables_independently(self, tmp_path, knob):
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=60.0,
                          storage_root=str(tmp_path / "root"),
                          **{knob: False}) as cluster:
            obj = cluster.new(Echo, machine=1)
            futures = [obj.add.future(i, 1) for i in range(50)]
            assert [f.result(30) for f in futures] == list(range(1, 51))

    def test_request_ids_unique_across_threads(self, mp_cluster):
        # The ids behind the futures come from one IdAllocator per
        # PeerClient; hammer it the way the burst does and check directly.
        alloc = IdAllocator()
        seen: list[int] = []
        lock = threading.Lock()

        def take():
            mine = [alloc.next() for _ in range(500)]
            with lock:
                seen.extend(mine)

        threads = [threading.Thread(target=take) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(seen) == len(set(seen)) == 8 * 500

    def test_frames_never_interleave_under_burst(self, mp_cluster):
        # Interleaved frames would desynchronize the stream and surface
        # as framing/pickle errors or wrong results; a clean burst across
        # all machines is the end-to-end proof.
        total, results = burst_from_threads(mp_cluster, n_threads=8,
                                            per_thread=30)
        flat = [pair for r in results.values() for pair in r]
        tags = [t for t, _ in flat]
        assert len(tags) == len(set(tags)) == total
        assert all(v == t for t, v in flat)

    def test_traffic_shows_fewer_frames_than_messages(self, tmp_path):
        # With coalescing on, a single-threaded pipelined burst should
        # need fewer outbound frames than requests sent.
        with oopp.Cluster(n_machines=1, backend="mp", call_timeout_s=60.0,
                          storage_root=str(tmp_path / "root")) as cluster:
            obj = cluster.new(Echo, machine=0)
            obj.echo("warm")  # connection + first frames
            base = cluster.fabric.traffic()["frames_out"]
            n = 200
            futures = [obj.echo.future(i) for i in range(n)]
            assert [f.result(30) for f in futures] == list(range(n))
            sent = cluster.fabric.traffic()["frames_out"] - base
            assert sent <= n, f"coalescing never packed: {sent} frames for {n}"
