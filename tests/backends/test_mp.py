"""Multiprocessing backend: real processes, peers, failure injection."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro as oopp
from repro.errors import MachineDownError


class Stateful:
    def __init__(self, tag="t"):
        self.tag = tag
        self.pid = os.getpid()

    def where(self):
        return os.getpid()

    def get_tag(self):
        return self.tag

    @oopp.readonly
    def slow(self, seconds):
        # readonly: concurrent calls share the object's read lock, so
        # the pool (not the per-object writer lock) sets the makespan.
        time.sleep(seconds)
        return seconds


class Relay:
    """Calls a peer object on another machine (peer-to-peer path)."""

    def fetch(self, other):
        return other.get_tag()

    def chain(self, others):
        return [o.get_tag() for o in others]


class TestProcessModel:
    def test_objects_live_in_separate_processes(self, mp_cluster):
        objs = [mp_cluster.new(Stateful, machine=m) for m in range(3)]
        pids = {o.where() for o in objs}
        assert len(pids) == 3
        assert os.getpid() not in pids

    def test_machine_pids_reported(self, mp_cluster):
        pids = mp_cluster.fabric.machine_pids()
        assert len(pids) == 3 and all(p for p in pids)
        obj = mp_cluster.new(Stateful, machine=1)
        assert obj.where() == pids[1]

    def test_state_lives_on_machine(self, mp_cluster):
        s = mp_cluster.new(Stateful, "hello", machine=2)
        oopp.remote_setattr(s, "tag", "updated")
        assert s.get_tag() == "updated"

    def test_concurrent_calls_one_machine(self, mp_cluster):
        s = mp_cluster.new(Stateful, machine=1)
        t0 = time.perf_counter()
        futures = [s.slow.future(0.2) for _ in range(4)]
        oopp.wait_all(futures)
        elapsed = time.perf_counter() - t0
        # four 0.2s sleeps run on the machine's thread pool concurrently
        assert elapsed < 0.7, elapsed


class TestPeerToPeer:
    def test_machine_calls_machine(self, mp_cluster):
        target = mp_cluster.new(Stateful, "payload", machine=2)
        relay = mp_cluster.new(Relay, machine=1)
        assert relay.fetch(target) == "payload"

    def test_relay_fans_out_to_all_machines(self, mp_cluster):
        targets = [mp_cluster.new(Stateful, f"m{m}", machine=m)
                   for m in range(3)]
        relay = mp_cluster.new(Relay, machine=0)
        assert relay.chain(targets) == ["m0", "m1", "m2"]

    def test_bulk_numpy_between_machines(self, mp_cluster):
        blk = mp_cluster.new_block(1 << 14, machine=2)
        data = np.random.default_rng(0).random(1 << 14)
        blk.write(0, data)
        assert np.allclose(blk.read(), data)


class TestFailureInjection:
    def test_killed_machine_fails_pending_calls(self, tmp_path):
        with oopp.Cluster(n_machines=2, backend="mp",
                          call_timeout_s=30.0) as cluster:
            victim = cluster.new(Stateful, machine=1)
            survivor = cluster.new(Stateful, "ok", machine=0)
            future = victim.slow.future(5.0)
            time.sleep(0.2)  # let the call reach the machine
            cluster.fabric.kill_machine(1)
            with pytest.raises(MachineDownError):
                future.result(10.0)
            # other machines keep working
            assert survivor.get_tag() == "ok"

    def test_calls_to_dead_machine_raise(self, tmp_path):
        with oopp.Cluster(n_machines=2, backend="mp",
                          call_timeout_s=30.0) as cluster:
            victim = cluster.new(Stateful, machine=1)
            cluster.fabric.kill_machine(1)
            time.sleep(0.1)
            with pytest.raises(MachineDownError):
                victim.get_tag()

    def test_shutdown_reaps_all_processes(self, tmp_path):
        cluster = oopp.Cluster(n_machines=2, backend="mp",
                               call_timeout_s=30.0)
        pids = cluster.fabric.machine_pids()
        cluster.shutdown()
        deadline = time.time() + 10
        while time.time() < deadline:
            if not any(_alive(p) for p in pids):
                break
            time.sleep(0.05)
        assert not any(_alive(p) for p in pids)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class TestRemoteErrors:
    def test_original_exception_type_crosses_process_boundary(self, mp_cluster):
        blk = mp_cluster.new_block(4, machine=1)
        with pytest.raises(IndexError):
            _ = blk[100]

    def test_remote_traceback_attached(self, mp_cluster):
        blk = mp_cluster.new_block(4, machine=1)
        try:
            _ = blk[100]
        except IndexError as exc:
            tb = getattr(exc, "__oopp_remote_traceback__", "")
            assert "__getitem__" in tb or "index" in tb.lower()
