"""Multiprocessing backend under load."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp


class Accumulator:
    def __init__(self):
        self.total = 0.0

    def add(self, x):
        self.total += x
        return self.total

    def get(self):
        return self.total


class TestManySmallMessages:
    def test_hundreds_of_pipelined_calls(self, mp_cluster):
        acc = mp_cluster.new(Accumulator, machine=1)
        futures = [acc.add.future(1.0) for _ in range(300)]
        oopp.wait_all(futures)
        assert acc.get() == 300.0

    def test_interleaved_targets(self, mp_cluster):
        accs = [mp_cluster.new(Accumulator, machine=m) for m in range(3)]
        futures = []
        for i in range(150):
            futures.append(accs[i % 3].add.future(float(i)))
        oopp.wait_all(futures)
        totals = [a.get() for a in accs]
        assert sum(totals) == sum(range(150))


class TestLargePayloads:
    def test_eight_megabyte_round_trip(self, mp_cluster):
        blk = mp_cluster.new_block(1 << 20, machine=2)  # 8 MiB of float64
        data = np.random.default_rng(0).random(1 << 20)
        blk.write(0, data)
        back = blk.read()
        assert np.array_equal(back, data)

    def test_large_payloads_interleave_with_small(self, mp_cluster):
        blk = mp_cluster.new_block(1 << 18, machine=1)
        acc = mp_cluster.new(Accumulator, machine=1)
        big = np.ones(1 << 18)
        futures = []
        for i in range(10):
            futures.append(blk.write.future(0, big))
            futures.append(acc.add.future(1.0))
        oopp.wait_all(futures)
        assert acc.get() == 10.0
        assert blk.sum() == float(1 << 18)


class TestSequentialClusters:
    def test_clusters_start_cleanly_after_each_other(self, tmp_path):
        for round_ in range(3):
            with oopp.Cluster(n_machines=2, backend="mp",
                              call_timeout_s=60.0) as cluster:
                blk = cluster.new_block(8, machine=1, fill=round_)
                assert blk.sum() == 8.0 * round_


class TestAutoparOnMp:
    def test_transformed_loop_on_real_processes(self, mp_cluster):
        accs = [mp_cluster.new(Accumulator, machine=m) for m in range(3)]
        with oopp.autoparallel():
            results = [a.add(10.0) for a in accs]
        assert [r.value for r in results] == [10.0, 10.0, 10.0]
