"""Inline backend: isolation semantics and dispatch."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp


class Holder:
    def __init__(self, items=None):
        self.items = list(items or [])

    def add(self, item):
        self.items.append(item)
        return self.items

    def get(self):
        return self.items


class TestIsolation:
    def test_argument_mutation_does_not_leak(self, inline_cluster):
        h = inline_cluster.new(Holder, machine=1)
        payload = [1, 2, 3]
        h.add(payload)
        payload.append(99)  # mutate after the call
        assert h.get() == [[1, 2, 3]]

    def test_result_mutation_does_not_leak(self, inline_cluster):
        h = inline_cluster.new(Holder, [5], machine=1)
        result = h.get()
        result.append(6)
        assert h.get() == [5]

    def test_numpy_argument_snapshot(self, inline_cluster):
        blk = inline_cluster.new_block(4, machine=2)
        a = np.ones(4)
        blk.write(0, a)
        a[:] = 7
        assert np.allclose(blk.read(), 1.0)

    def test_inline_copy_off_shares_references(self, tmp_path):
        with oopp.Cluster(n_machines=2, backend="inline",
                          inline_copy=False) as cluster:
            h = cluster.new(Holder, machine=1)
            payload = [1]
            h.add(payload)
            payload.append(2)  # leaks by design when copying is disabled
            assert h.get() == [[1, 2]]


class TestDispatch:
    def test_table_of_exposes_objects(self, inline_cluster):
        inline_cluster.new(Holder, machine=2)
        assert len(inline_cluster.fabric.table_of(2)) == 1
        assert len(inline_cluster.fabric.table_of(0)) == 0

    def test_calls_after_close_fail(self):
        cluster = oopp.Cluster(n_machines=1, backend="inline")
        h = cluster.new(Holder, machine=0)
        cluster.shutdown()
        with pytest.raises(oopp.MachineDownError):
            h.get()

    def test_nested_remote_calls(self, inline_cluster):
        class Outer:
            def __init__(self, inner):
                self.inner = inner

            def relay(self, item):
                return self.inner.add(item)

        import sys

        sys.modules[__name__].Outer = Outer
        Outer.__module__ = __name__
        Outer.__qualname__ = "Outer"
        try:
            inner = inline_cluster.new(Holder, machine=1)
            outer = inline_cluster.new(Outer, inner, machine=2)
            assert outer.relay("x") == ["x"]
            assert inner.get() == ["x"]
        finally:
            del sys.modules[__name__].Outer

    def test_constructor_error_propagates(self, inline_cluster):
        class Boom:
            def __init__(self):
                raise RuntimeError("ctor failed")

        import sys

        sys.modules[__name__].Boom = Boom
        Boom.__module__ = __name__
        Boom.__qualname__ = "Boom"
        try:
            with pytest.raises(RuntimeError, match="ctor failed"):
                inline_cluster.new(Boom, machine=0)
        finally:
            del sys.modules[__name__].Boom

    def test_remote_traceback_attached(self, inline_cluster):
        h = inline_cluster.new(Holder, machine=0)
        try:
            h.missing_method()
        except AttributeError as exc:
            assert "missing_method" in getattr(
                exc, "__oopp_remote_traceback__", "")
        else:
            pytest.fail("expected AttributeError")
