"""Per-message-kind targeting: a rule drops only the kind it names."""

from __future__ import annotations

import pytest

from repro.transport.channel import inproc_pair
from repro.transport.faults import FaultPlan, FaultRule
from repro.transport.message import (
    ErrorResponse,
    Goodbye,
    Hello,
    Request,
    Response,
    message_to_payload,
)

KIND_ORDER = ("hi", "req", "res", "err", "bye")


def make(kind, i):
    return {
        "req": lambda: Request(request_id=i, object_id=1, method="m"),
        "res": lambda: Response(request_id=i, value=i),
        "err": lambda: ErrorResponse(request_id=i, type_name="E",
                                     message="boom"),
        "hi": lambda: Hello(caller=i),
        "bye": lambda: Goodbye(),
    }[kind]()


@pytest.mark.parametrize("target", KIND_ORDER)
def test_drop_hits_only_the_named_kind(target):
    a, b = inproc_pair()
    plan = FaultPlan(seed=1, rules=[
        FaultRule(action="drop", direction="send", kinds=(target,), nth=1)])
    wrapped = plan.wrap(a, label=f"drop-{target}")

    # Two full rounds of every protocol message kind.
    sent = 0
    for i in range(2):
        for kind in KIND_ORDER:
            wrapped.send(make(kind, i))
            sent += 1

    received = [b.recv(timeout=5) for _ in range(sent - 1)]
    counts = {k: 0 for k in KIND_ORDER}
    for msg in received:
        kind, _ = message_to_payload(msg)
        counts[kind] += 1

    # Exactly the first instance of the targeted kind vanished.
    assert counts[target] == 1
    for kind in KIND_ORDER:
        if kind != target:
            assert counts[kind] == 2, f"{kind} was affected by drop-{target}"

    # And the injector log agrees, deterministically.
    assert len(wrapped.injector.log) == 1
    assert f":{target}:" in wrapped.injector.log[0]


def test_method_scoped_drop_spares_other_requests():
    a, b = inproc_pair()
    plan = FaultPlan(seed=2, rules=[
        FaultRule(action="drop", direction="send", kinds=("req",),
                  methods=("write",), nth=1)])
    wrapped = plan.wrap(a)
    wrapped.send(Request(request_id=1, object_id=1, method="read"))
    wrapped.send(Request(request_id=2, object_id=1, method="write"))  # dropped
    wrapped.send(Request(request_id=3, object_id=1, method="write"))
    got = [b.recv(timeout=5).request_id for _ in range(2)]
    assert got == [1, 3]
