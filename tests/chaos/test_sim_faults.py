"""Fault injection on the simulated backend: deterministic by construction.

Delays stretch *simulated* time, drops starve the event queue (the
paper's block-forever semantics make that a ``SimDeadlockError``),
corruption surfaces as ``SerializationError`` and a closed link as
``MachineDownError`` — all without wall-clock sleeps.
"""

from __future__ import annotations

import pytest

import repro as oopp
from repro.errors import (
    MachineDownError,
    SerializationError,
    SimDeadlockError,
)
from repro.transport.faults import FaultPlan, FaultRule


class Echo:
    def hit(self, x):
        return x


class Caller:
    """Calls a neighbour object — same-machine calls are loopback."""

    def relay(self, other, x):
        return other.hit(x)


def sim_cluster_with(tmp_path, rules, seed=5, sub="r"):
    plan = FaultPlan(seed=seed, rules=rules) if rules is not None else None
    return oopp.Cluster(n_machines=3, backend="sim", fault_plan=plan,
                        storage_root=str(tmp_path / sub))


def test_delay_adds_exactly_the_simulated_seconds(tmp_path):
    def elapsed(rules, sub):
        with sim_cluster_with(tmp_path, rules, sub=sub) as cluster:
            e = cluster.new(Echo, machine=1)
            t0 = cluster.fabric.engine.now
            assert e.hit(7) == 7
            return cluster.fabric.engine.now - t0

    base = elapsed(None, "base")
    slow = elapsed([FaultRule(action="delay", direction="send",
                              kinds=("req",), methods=("hit",), nth=1,
                              delay_s=0.5)], "slow")
    assert slow - base == pytest.approx(0.5, rel=1e-9)


def test_response_delay_also_charges_the_clock(tmp_path):
    def elapsed(rules, sub):
        with sim_cluster_with(tmp_path, rules, sub=sub) as cluster:
            e = cluster.new(Echo, machine=1)
            t0 = cluster.fabric.engine.now
            e.hit(1)
            return cluster.fabric.engine.now - t0

    base = elapsed(None, "base2")
    # Responses carry no method name; nth=2 skips the create() response
    # on the driver->machine-1 link and hits the hit() response.
    slow = elapsed([FaultRule(action="delay", direction="recv",
                              kinds=("res",), nth=2, delay_s=0.25)], "slow2")
    assert slow - base == pytest.approx(0.25, rel=1e-9)


def test_dropped_request_is_a_deterministic_deadlock(tmp_path):
    cluster = sim_cluster_with(tmp_path, [
        FaultRule(action="drop", direction="send", kinds=("req",),
                  methods=("hit",), nth=1)])
    try:
        e = cluster.new(Echo, machine=1)
        with pytest.raises(SimDeadlockError):
            e.hit(1)
    finally:
        cluster.shutdown()


def test_closed_link_is_machine_down_with_context(tmp_path):
    with sim_cluster_with(tmp_path, [
            FaultRule(action="close", direction="send", kinds=("req",),
                      methods=("hit",), nth=1)]) as cluster:
        e = cluster.new(Echo, machine=2)
        with pytest.raises(MachineDownError) as excinfo:
            e.hit(1)
        assert excinfo.value.machine == 2
        assert excinfo.value.oid == oopp.ref_of(e).oid


def test_corrupt_request_is_serialization_error(tmp_path):
    with sim_cluster_with(tmp_path, [
            FaultRule(action="corrupt", direction="send", kinds=("req",),
                      methods=("hit",), nth=1)]) as cluster:
        e = cluster.new(Echo, machine=1)
        with pytest.raises(SerializationError):
            e.hit(1)
        assert e.hit(2) == 2  # max_fires=1: the link recovers


def test_corrupt_response_is_serialization_error(tmp_path):
    # nth=2: match #1 on this link is the create() response.
    with sim_cluster_with(tmp_path, [
            FaultRule(action="corrupt", direction="recv", kinds=("res",),
                      nth=2)]) as cluster:
        e = cluster.new(Echo, machine=1)
        with pytest.raises(SerializationError):
            e.hit(1)
        assert e.hit(2) == 2


def test_loopback_is_exempt_from_faults(tmp_path):
    # Faults model the interconnect; an object calling a neighbour on
    # its own machine never touches the network.  Every "hit" request is
    # dropped — but the relayed call below is machine-1 loopback.
    with sim_cluster_with(tmp_path, [
            FaultRule(action="drop", direction="both", probability=1.0,
                      max_fires=None, methods=("hit",))]) as cluster:
        e = cluster.new(Echo, machine=1)
        c = cluster.new(Caller, machine=1)
        assert c.relay(e, 3) == 3


def test_probabilistic_faults_reproduce_bit_for_bit(tmp_path):
    rules = [FaultRule(action="delay", direction="both", probability=0.4,
                       delay_s=0.05, max_fires=None)]

    def run(sub):
        with sim_cluster_with(tmp_path, rules, seed=21, sub=sub) as cluster:
            group = cluster.new_group(Echo, 4)
            for i in range(5):
                group.invoke("hit", i)
            clock = cluster.fabric.engine.now
            injectors = cluster.fabric._fault_injectors
            schedule = b"\n".join(
                injectors[key].schedule() for key in sorted(injectors))
            return clock, schedule

    clock_a, sched_a = run("runA")
    clock_b, sched_b = run("runB")
    assert sched_a == sched_b and sched_a != b""
    assert clock_a == clock_b
