"""Chaos × wire fast path: BATCH drops retry per call, shm never leaks.

The tentpole invariant: a coalesced batch that drops is retried *per
idempotent call*, never as a blob — the retry layer lives above the
coalescer, so each lost call re-enters ``Fabric.call`` individually and
the re-sent requests simply join whatever batch is forming at that
moment.  And faults on shm-referenced messages must never leak
``/dev/shm`` segments (a dropped message dies unreferenced; its GC
finalizer unlinks the segment).
"""

from __future__ import annotations

import gc
import threading
import time

import numpy as np
import pytest

import repro as oopp
from repro.errors import CallTimeoutError
from repro.transport import shm
from repro.transport.faults import FaultPlan, FaultRule


class Board:
    __oopp_idempotent__ = frozenset({"read", "sum_of"})

    def __init__(self):
        self.pages = {}

    def write(self, key, page):
        self.pages[key] = page
        return key

    def read(self, key):
        return self.pages.get(key)

    def sum_of(self, key):
        return float(self.pages[key].sum()) if key in self.pages else None


class Cell:
    """A remote value with an idempotent read (retry-eligible)."""

    __oopp_idempotent__ = frozenset({"sum"})

    def __init__(self, value=0.0):
        self.value = value

    def fill(self, value):
        self.value = value
        return True

    def sum(self):
        return self.value


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """/dev/shm must be clean after every chaos scenario.

    Workers unlink whatever they attached when they exit; segments this
    (driver) process exported to a peer that died before cleaning up are
    reclaimed by the sender's own exit sweep — which would only run when
    the test process exits, so emulate it here before asserting.
    """
    before = set(shm.host_shm_names())
    yield
    gc.collect()
    shm._reclaim_exported()
    leaked = set(shm.host_shm_names()) - before
    assert leaked == set(), f"leaked shm segments: {leaked}"


class TestBatchDrop:
    def test_dropped_batch_retries_per_call(self, tmp_path):
        # Drop one whole BATCH envelope on the driver's dialed channel.
        # Every idempotent call inside it must individually time out and
        # retry to success — no call may be lost or answered twice.
        plan = FaultPlan(seed=11, rules=[
            FaultRule(action="drop", direction="send", kinds=("batch",),
                      nth=1)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                          call_retries=3, retry_backoff_s=0.05,
                          fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cluster:
            cells = [cluster.new(Cell, machine=1) for _ in range(3)]
            for i, c in enumerate(cells):
                c.fill(float(i + 1))
            # Synchronous idempotent calls from several threads: they
            # pile into the coalescer together, so the dropped BATCH
            # takes multiple calls down at once.
            results = {}
            errors = []

            def call(i):
                try:
                    results[i] = cells[i].sum()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=call, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors, errors
            assert results == {0: 1.0, 1: 2.0, 2: 3.0}

    def test_dropped_batch_without_retries_times_out_each_call(self, tmp_path):
        # Every multi-message flush on the dialed channel is dropped;
        # solo flushes pass.  A pipelined burst of futures outruns the
        # writer thread, so some flushes *must* batch — and with
        # call_retries=0 every call inside a dropped batch times out
        # individually instead of wedging the connection.
        plan = FaultPlan(seed=3, rules=[
            FaultRule(action="drop", direction="send", kinds=("batch",),
                      probability=1.0)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=0.8,
                          call_retries=0, fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cluster:
            c = cluster.new(Cell, machine=1)
            c.fill(2.0)
            futures = [c.sum.future() for _ in range(60)]
            hit = []
            for f in futures:
                try:
                    hit.append(f.result(2.0))
                except CallTimeoutError:
                    hit.append("timeout")
            assert "timeout" in hit, "no flush ever coalesced into a batch"
            # The channel itself stays usable: a lone call flushes solo.
            time.sleep(0.05)  # let the writer drain the burst backlog
            assert c.sum() == 2.0

    def test_corrupted_batch_lost_then_retried(self, tmp_path):
        plan = FaultPlan(seed=7, rules=[
            FaultRule(action="corrupt", direction="send", kinds=("batch",),
                      nth=1)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                          call_retries=3, retry_backoff_s=0.05,
                          fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cluster:
            c = cluster.new(Cell, machine=1)
            c.fill(3.0)
            assert c.sum() == 3.0


class TestShmUnderFaults:
    THRESHOLD = 1 << 12

    def cluster(self, tmp_path, plan, **kw):
        return oopp.Cluster(n_machines=2, backend="mp",
                            shm_threshold_bytes=self.THRESHOLD,
                            fault_plan=plan,
                            storage_root=str(tmp_path / "r"), **kw)

    def big_page(self):
        from repro.storage.page import ArrayPage

        return ArrayPage(16, 16, 16, np.arange(4096.0))  # 32 KiB >= threshold

    def test_dropped_shm_request_leaves_no_segment(self, tmp_path):
        # The first big write is dropped pre-encode (no segment is ever
        # created for it); the retry ships a fresh one that must be
        # cleaned up after the receiver consumes it.
        plan = FaultPlan(seed=13, rules=[
            FaultRule(action="drop", direction="send", kinds=("req",),
                      methods=("write",), nth=1)])
        with self.cluster(tmp_path, plan, call_timeout_s=1.0) as cl:
            board = cl.new(Board, machine=1)
            with pytest.raises(CallTimeoutError):
                board.write("k", self.big_page())  # dropped, not retried
            assert board.write("k2", self.big_page()) == "k2"
            assert board.sum_of("k2") == float(np.arange(4096.0).sum())

    def test_dropped_shm_response_releases_segment(self, tmp_path):
        # The response carrying the big page back is dropped *after*
        # decode on the receiving (driver) side: the decoded message dies
        # unreferenced and its finalizer must release the segment.  On
        # this connection res #1 acks machine startup, #2 the create and
        # #3 the write, so #4 is exactly the shm-carrying read reply.
        plan = FaultPlan(seed=17, rules=[
            FaultRule(action="drop", direction="recv", kinds=("res",),
                      nth=4)])
        with self.cluster(tmp_path, plan, call_timeout_s=1.5,
                          call_retries=2, retry_backoff_s=0.05) as cl:
            board = cl.new(Board, machine=1)
            board.write("k", self.big_page())
            page = board.read("k")  # idempotent: dropped reply -> retry
            assert page.sum() == float(np.arange(4096.0).sum())
            del page

    def test_corrupted_shm_response_releases_segment(self, tmp_path):
        plan = FaultPlan(seed=19, rules=[
            FaultRule(action="corrupt", direction="recv", kinds=("res",),
                      nth=4)])
        with self.cluster(tmp_path, plan, call_timeout_s=1.5,
                          call_retries=2, retry_backoff_s=0.05) as cl:
            board = cl.new(Board, machine=1)
            board.write("k", self.big_page())
            page = board.read("k")
            assert page is not None and len(page) == 4096 * 8
            del page

    def test_many_transfers_under_repeated_drops_no_leak(self, tmp_path):
        # Three distinct read replies vanish mid-run (res #1-#3 ack the
        # startup, create and write; everything later is an idempotent
        # read).
        plan = FaultPlan(seed=23, rules=[
            FaultRule(action="drop", direction="recv", kinds=("res",),
                      nth=n) for n in (4, 6, 9)])
        with self.cluster(tmp_path, plan, call_timeout_s=1.0,
                          call_retries=4, retry_backoff_s=0.05) as cl:
            board = cl.new(Board, machine=1)
            board.write("k", self.big_page())
            expect = float(np.arange(4096.0).sum())
            for _ in range(12):
                page = board.read("k")
                assert page.sum() == expect
                del page
            # Leak check happens in the autouse fixture after shutdown.
