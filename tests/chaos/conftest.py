"""Every test under tests/chaos/ carries the ``chaos`` marker.

Run only the failure-mode suite with ``pytest -m chaos``, or exclude it
from a quick pass with ``pytest -m "not chaos"``.
"""

from __future__ import annotations

import pathlib

import pytest

_CHAOS_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    for item in items:
        if _CHAOS_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.chaos)
