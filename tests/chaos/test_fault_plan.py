"""FaultPlan/FaultRule/FaultInjector: validation, matching, determinism."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError
from repro.transport.faults import FaultInjector, FaultPlan, FaultRule
from repro.transport.message import Goodbye, Hello, Request, Response


def req(i=1, method="m"):
    return Request(request_id=i, object_id=1, method=method)


class TestRuleValidation:
    def test_unknown_action(self):
        with pytest.raises(ConfigError, match="action"):
            FaultRule(action="explode", nth=1).validate()

    def test_unknown_direction(self):
        with pytest.raises(ConfigError, match="direction"):
            FaultRule(action="drop", direction="sideways", nth=1).validate()

    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            FaultRule(action="drop", kinds=("request",), nth=1).validate()

    def test_nth_is_one_based(self):
        with pytest.raises(ConfigError, match="nth"):
            FaultRule(action="drop", nth=0).validate()

    def test_nth_and_probability_exclusive(self):
        with pytest.raises(ConfigError, match="mutually exclusive"):
            FaultRule(action="drop", nth=1, probability=0.5).validate()

    def test_rule_must_have_a_trigger(self):
        with pytest.raises(ConfigError, match="nth=K or probability"):
            FaultRule(action="drop").validate()

    def test_probability_bounds(self):
        with pytest.raises(ConfigError, match="probability"):
            FaultRule(action="drop", probability=1.5).validate()

    def test_negative_delay(self):
        with pytest.raises(ConfigError, match="delay_s"):
            FaultRule(action="delay", nth=1, delay_s=-0.1).validate()

    def test_bad_max_fires(self):
        with pytest.raises(ConfigError, match="max_fires"):
            FaultRule(action="drop", nth=1, max_fires=0).validate()

    def test_plan_rejects_non_rules(self):
        with pytest.raises(ConfigError, match="FaultRule"):
            FaultPlan(rules=["drop"]).validate()  # type: ignore[list-item]

    def test_good_plan_validates(self):
        FaultPlan(seed=3, rules=[
            FaultRule(action="drop", nth=2),
            FaultRule(action="delay", probability=0.5, max_fires=None),
        ]).validate()


class TestMatching:
    def test_direction_filter(self):
        rule = FaultRule(action="drop", direction="send", nth=1)
        assert rule.matches("send", "req", "m")
        assert not rule.matches("recv", "req", "m")
        both = FaultRule(action="drop", direction="both", nth=1)
        assert both.matches("send", "req", "m")
        assert both.matches("recv", "res", None)

    def test_kind_filter(self):
        rule = FaultRule(action="drop", kinds=("res", "err"), nth=1)
        assert rule.matches("send", "res", None)
        assert not rule.matches("send", "req", "m")

    def test_method_filter(self):
        rule = FaultRule(action="drop", methods=("ping",), nth=1)
        assert rule.matches("send", "req", "ping")
        assert not rule.matches("send", "req", "write")
        assert not rule.matches("send", "res", None)  # responses carry no method

    def test_nth_counts_matches_not_messages(self):
        plan = FaultPlan(rules=[
            FaultRule(action="drop", kinds=("req",), nth=2)])
        inj = plan.injector()
        assert inj.decide("send", Hello()) is None
        assert inj.decide("send", req(1)) is None        # 1st matching req
        assert inj.decide("send", Response(request_id=1)) is None
        fired = inj.decide("send", req(2))               # 2nd matching req
        assert fired is not None and fired.action == "drop"
        assert inj.decide("send", req(3)) is None        # nth fires once

    def test_max_fires_caps_probabilistic_rule(self):
        plan = FaultPlan(rules=[
            FaultRule(action="drop", probability=1.0, max_fires=2)])
        inj = plan.injector()
        fires = [inj.decide("send", req(i)) is not None for i in range(5)]
        assert fires == [True, True, False, False, False]


class TestDeterminism:
    def _schedule(self, seed, n=200, injector_index=0):
        plan = FaultPlan(seed=seed, rules=[
            FaultRule(action="drop", probability=0.3, max_fires=None)])
        inj = None
        for _ in range(injector_index + 1):
            inj = plan.injector("link")
        for i in range(n):
            inj.decide("send", req(i))
        return inj.schedule()

    def test_same_seed_byte_identical_schedule(self):
        assert self._schedule(7) == self._schedule(7)
        assert self._schedule(7) != b""

    def test_different_seed_different_schedule(self):
        assert self._schedule(7) != self._schedule(8)

    def test_injector_index_decorrelates_links(self):
        # Two channels under one plan must not fire in lockstep.
        assert self._schedule(7, injector_index=0) != \
            self._schedule(7, injector_index=1)

    def test_log_records_sequence_kind_method_action(self):
        plan = FaultPlan(rules=[FaultRule(action="delay", nth=2)])
        inj = plan.injector()
        inj.decide("send", Hello())
        inj.decide("recv", req(9, method="write"))
        assert inj.log == ["2:recv:req:write:delay"]

    def test_goodbye_matches_bye_kind(self):
        plan = FaultPlan(rules=[FaultRule(action="drop", kinds=("bye",),
                                          nth=1)])
        inj = plan.injector()
        assert inj.decide("send", req()) is None
        assert inj.decide("send", Goodbye()) is not None


class TestPickling:
    def test_plan_round_trips_for_worker_processes(self):
        plan = FaultPlan(seed=42, rules=[
            FaultRule(action="corrupt", probability=0.1, max_fires=None)])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 42
        assert clone.rules == plan.rules
        # The clone allocates injectors from scratch, deterministically.
        inj = clone.injector("x")
        assert isinstance(inj, FaultInjector)
        assert inj.index == 0

    def test_unpickled_plan_reproduces_schedule(self):
        plan = FaultPlan(seed=9, rules=[
            FaultRule(action="drop", probability=0.5, max_fires=None)])
        clone = pickle.loads(pickle.dumps(plan))
        a, b = plan.injector(), clone.injector()
        for i in range(100):
            a.decide("send", req(i))
            b.decide("send", req(i))
        assert a.schedule() == b.schedule()
