"""Fault-under-load on the E6 group/barrier path (mp backend).

Delay faults stretch individual messages; the pipelined group invoke and
the barrier must still complete with exact results and no duplicated
side effects.
"""

from __future__ import annotations

import pytest

import repro as oopp
from repro.transport.faults import FaultPlan, FaultRule


class Tallier:
    """Counts its own invocations — duplicates would show."""

    def __init__(self):
        self.calls = 0

    def work(self, x):
        self.calls += 1
        return 2 * x

    def count(self):
        return self.calls


@pytest.fixture
def shaky_cluster(tmp_path):
    plan = FaultPlan(seed=13, rules=[
        FaultRule(action="delay", direction="both", probability=0.3,
                  delay_s=0.01, max_fires=None)])
    with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=30.0,
                      call_retries=2, retry_backoff_s=0.05, fault_plan=plan,
                      storage_root=str(tmp_path / "r")) as cluster:
        yield cluster


def test_group_invoke_exact_under_delays(shaky_cluster):
    group = shaky_cluster.new_group(Tallier, 6)
    assert group.invoke("work", 21) == [42] * 6


def test_barrier_drains_under_delays(shaky_cluster):
    group = shaky_cluster.new_group(Tallier, 6)
    futures = group.futures("work", 3)
    group.barrier(timeout=30.0)
    assert oopp.gather(futures) == [6] * 6
    # Delays never duplicated a non-idempotent call.
    assert group.invoke("count") == [1] * 6


def test_repeated_barriers_under_delays(shaky_cluster):
    group = shaky_cluster.new_group(Tallier, 4)
    for round_no in range(1, 4):
        group.invoke("work", round_no)
        group.barrier(timeout=30.0)
    assert group.invoke("count") == [3] * 4
