"""Acceptance: a dropped-then-retried idempotent call succeeds on mp.

The fault plan drops the first ``ping`` request on the wire.  With a
call deadline and a retry budget the caller re-sends and succeeds; with
``call_retries=0`` the same fault surfaces as ``CallTimeoutError``.
"""

from __future__ import annotations

import time

import pytest

import repro as oopp
from repro.errors import CallTimeoutError
from repro.transport.faults import FaultPlan, FaultRule


class Counter:
    __oopp_idempotent__ = frozenset({"get"})

    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1
        return self.value

    def get(self):
        return self.value


def drop_first(method):
    return FaultPlan(seed=5, rules=[
        FaultRule(action="drop", direction="send", kinds=("req",),
                  methods=(method,), nth=1)])


def test_dropped_ping_retried_to_success(tmp_path):
    with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                      call_retries=2, retry_backoff_s=0.05,
                      fault_plan=drop_first("ping"),
                      storage_root=str(tmp_path / "r")) as cluster:
        t0 = time.monotonic()
        assert cluster.fabric.ping(1) == 1
        dt = time.monotonic() - t0
        # First attempt burned the 1s deadline; the retry succeeded.
        assert dt >= 1.0


def test_dropped_ping_without_retries_times_out(tmp_path):
    with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                      call_retries=0,
                      fault_plan=drop_first("ping"),
                      storage_root=str(tmp_path / "r")) as cluster:
        with pytest.raises(CallTimeoutError):
            cluster.fabric.ping(1)
        # The machine itself is fine: the next ping is not dropped.
        assert cluster.fabric.ping(1) == 1


def test_non_idempotent_method_is_never_retried(tmp_path):
    with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                      call_retries=3, retry_backoff_s=0.05,
                      fault_plan=drop_first("bump"),
                      storage_root=str(tmp_path / "r")) as cluster:
        c = cluster.new(Counter, machine=1)
        t0 = time.monotonic()
        with pytest.raises(CallTimeoutError):
            c.bump()
        dt = time.monotonic() - t0
        # One deadline, no backoff rounds: the ambiguous mutation must
        # surface instead of being re-sent.
        assert dt < 2.5
        assert c.get() == 0  # the dropped bump never executed


def test_dropped_idempotent_read_retried(tmp_path):
    with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                      call_retries=2, retry_backoff_s=0.05,
                      fault_plan=drop_first("get"),
                      storage_root=str(tmp_path / "r")) as cluster:
        c = cluster.new(Counter, machine=1)
        c.bump()
        assert c.get() == 1  # first get dropped, retry answers
