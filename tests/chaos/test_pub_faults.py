"""Chaos × publication: BUF_PUB descriptors under drops, corruption and
a vanished publisher.

The invariants (see ``docs/FAILURES.md``): a lost or mangled descriptor
frame is indistinguishable from any lost request — the call provably
never executed, so idempotent methods retry to success; a descriptor
that outlives its payload (publisher unpublished or died before the
receiver attached) surfaces as a *retryable* error, never garbage; and
no scenario may leak ``/dev/shm`` segments.
"""

from __future__ import annotations

import gc

import pytest

import repro as oopp
from repro.errors import MachineDownError, PublicationError
from repro.transport import pub, shm
from repro.transport.faults import FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """/dev/shm must be clean after every publication chaos scenario."""
    before = set(shm.host_shm_names())
    yield
    pub.registry().shutdown()
    gc.collect()
    shm._reclaim_exported()
    leaked = set(shm.host_shm_names()) - before
    assert leaked == set(), f"leaked shm segments: {leaked}"


class Model:
    def __init__(self, blob: bytes) -> None:
        self.blob = blob


class Reader:
    """Idempotent consumer of a broadcast payload (retry-eligible)."""

    __oopp_idempotent__ = frozenset({"length"})

    def length(self, payload) -> int:
        return len(payload.blob)


BLOB = bytes(1 << 16)


class TestPubRequestFaults:
    def test_dropped_descriptor_request_retries(self, tmp_path):
        # The first request carrying a BUF_PUB descriptor vanishes; the
        # descriptor is just bytes in a frame, so the retry re-ships it
        # and the pinned payload is attached exactly once.
        plan = FaultPlan(seed=5, rules=[
            FaultRule(action="drop", direction="send", kinds=("pub",),
                      nth=1)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                          call_retries=3, retry_backoff_s=0.05,
                          fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cluster:
            handle = cluster.publish(Model(BLOB))
            reader = cluster.new(Reader, machine=1)
            assert reader.length(handle) == len(BLOB)

    def test_corrupted_descriptor_request_retries(self, tmp_path):
        plan = FaultPlan(seed=9, rules=[
            FaultRule(action="corrupt", direction="send", kinds=("pub",),
                      nth=1)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                          call_retries=3, retry_backoff_s=0.05,
                          fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cluster:
            handle = cluster.publish(Model(BLOB))
            reader = cluster.new(Reader, machine=1)
            assert reader.length(handle) == len(BLOB)

    def test_pub_rules_ignore_plain_requests(self, tmp_path):
        # A kinds=("pub",) rule must never fire on traffic that carries
        # no publication descriptor.
        plan = FaultPlan(seed=2, rules=[
            FaultRule(action="drop", direction="both", kinds=("pub",),
                      probability=1.0, max_fires=None)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=5.0,
                          fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cluster:
            reader = cluster.new(Reader, machine=1)
            assert reader.length(Model(b"abc")) == 3


class TestPublisherGone:
    def test_stale_handle_surfaces_retryable_error_mp(self, tmp_path):
        # The publisher unpins (or dies) before the receiver ever
        # attaches: the machine cannot decode the request, which must
        # surface as a retryable transport-class failure, not garbage.
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=2.0,
                          storage_root=str(tmp_path / "r")) as cluster:
            handle = cluster.publish(Model(BLOB))
            reader = cluster.new(Reader, machine=1)
            handle.unpublish()
            with pytest.raises((MachineDownError, PublicationError)):
                reader.length(handle)
            # The machine itself is fine: a fresh publication flows.
            fresh = cluster.publish(Model(BLOB))
            assert reader.length(fresh) == len(BLOB)

    def test_stale_handle_surfaces_publication_error_inline(self, tmp_path):
        with oopp.Cluster(n_machines=2, backend="inline",
                          storage_root=str(tmp_path / "r")) as cluster:
            handle = cluster.publish(Model(BLOB))
            reader = cluster.new(Reader, machine=1)
            handle.unpublish()
            with pytest.raises(PublicationError):
                reader.length(handle)

    def test_sim_corrupted_pub_request(self, tmp_path):
        # On the simulated wire a corrupted descriptor frame fails like
        # any corrupted request: SerializationError delivered to the
        # caller's future; the second member's broadcast still lands.
        plan = FaultPlan(seed=3, rules=[
            FaultRule(action="corrupt", direction="send", kinds=("pub",),
                      nth=1)])
        with oopp.Cluster(n_machines=3, backend="sim", fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cluster:
            handle = cluster.publish(Model(BLOB))
            readers = cluster.new_group(Reader, 3,
                                        machines=[1, 2, 1])
            futures = readers.futures("length", handle)
            outcomes = []
            for f in futures:
                try:
                    outcomes.append(f.result(5.0))
                except oopp.errors.SerializationError:
                    outcomes.append("corrupt")
            assert "corrupt" in outcomes
            assert len(BLOB) in outcomes
