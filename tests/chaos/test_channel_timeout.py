"""recv timeouts: frame-boundary vs mid-frame, and stats under partial reads.

A timeout with no bytes consumed means the peer is merely slow — the
channel must stay usable (``ChannelTimeoutError``).  A timeout after part
of a frame was consumed desynchronizes the stream forever — the channel
must latch closed (``ChannelClosedError``).
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.errors import ChannelClosedError, ChannelTimeoutError
from repro.transport.message import Hello, Response
from repro.transport.socket_channel import SocketChannel, listen_socket


@pytest.fixture
def chan_pair():
    """client SocketChannel <-> server SocketChannel on localhost."""
    listener = listen_socket()
    port = listener.getsockname()[1]
    holder = {}

    def accept():
        sock, _ = listener.accept()
        holder["chan"] = SocketChannel(sock)

    t = threading.Thread(target=accept, daemon=True)
    t.start()
    client = SocketChannel.connect("127.0.0.1", port, timeout=5)
    t.join(timeout=5)
    server = holder["chan"]
    yield client, server
    client.close()
    server.close()
    listener.close()


@pytest.fixture
def raw_to_chan():
    """raw client socket -> server SocketChannel (byte-level control)."""
    listener = listen_socket()
    port = listener.getsockname()[1]
    holder = {}

    def accept():
        sock, _ = listener.accept()
        holder["chan"] = SocketChannel(sock)

    t = threading.Thread(target=accept, daemon=True)
    t.start()
    raw = socket.create_connection(("127.0.0.1", port), timeout=5)
    t.join(timeout=5)
    server = holder["chan"]
    yield raw, server
    raw.close()
    server.close()
    listener.close()


def wire_bytes_of(msg) -> bytes:
    """The exact bytes a SocketChannel puts on the wire for *msg*."""
    listener = listen_socket()
    port = listener.getsockname()[1]
    holder = {}

    def accept():
        sock, _ = listener.accept()
        holder["raw"] = sock

    t = threading.Thread(target=accept, daemon=True)
    t.start()
    chan = SocketChannel.connect("127.0.0.1", port, timeout=5)
    t.join(timeout=5)
    chan.send(msg)
    want = chan.stats["bytes_out"]
    raw = holder["raw"]
    raw.settimeout(5)
    chunks = b""
    while len(chunks) < want:
        chunks += raw.recv(65536)
    chan.close()
    raw.close()
    listener.close()
    return chunks


class TestFrameBoundaryTimeout:
    def test_timeout_is_distinct_and_channel_stays_usable(self, chan_pair):
        client, server = chan_pair
        with pytest.raises(ChannelTimeoutError):
            client.recv(timeout=0.1)
        with pytest.raises(ChannelTimeoutError):
            client.recv(timeout=0.1)  # not latched closed
        server.send(Response(request_id=3, value="late"))
        assert client.recv(timeout=5).value == "late"

    def test_timeout_is_not_a_channel_closed_error(self, chan_pair):
        client, _server = chan_pair
        try:
            client.recv(timeout=0.05)
        except ChannelClosedError:  # pragma: no cover - the bug under test
            pytest.fail("frame-boundary timeout latched the channel closed")
        except ChannelTimeoutError:
            pass

    def test_clean_timeout_counts_no_frames(self, chan_pair):
        client, _server = chan_pair
        with pytest.raises(ChannelTimeoutError):
            client.recv(timeout=0.05)
        assert client.stats["frames_in"] == 0


class TestMidFrameTimeout:
    def test_partial_frame_then_stall_latches_closed(self, raw_to_chan):
        raw, server = raw_to_chan
        wire = wire_bytes_of(Hello(caller=1))
        raw.sendall(wire[:10])  # part of the frame prefix, then silence
        with pytest.raises(ChannelClosedError, match="desynchronized"):
            server.recv(timeout=0.3)
        # The channel is latched: sends refuse immediately.
        with pytest.raises(ChannelClosedError):
            server.send(Hello())

    def test_mid_frame_timeout_counts_no_frames(self, raw_to_chan):
        raw, server = raw_to_chan
        wire = wire_bytes_of(Hello(caller=1))
        raw.sendall(wire[:6])
        with pytest.raises(ChannelClosedError):
            server.recv(timeout=0.3)
        assert server.stats["frames_in"] == 0


class TestStatsUnderPartialReads:
    def test_dribbled_frame_counts_once_and_fully(self, raw_to_chan):
        raw, server = raw_to_chan
        wire = wire_bytes_of(Hello(caller=7))

        def dribble():
            mid = len(wire) // 2
            raw.sendall(wire[:mid])
            time.sleep(0.15)
            raw.sendall(wire[mid:])

        t = threading.Thread(target=dribble, daemon=True)
        t.start()
        msg = server.recv(timeout=5)
        t.join(timeout=5)
        assert isinstance(msg, Hello) and msg.caller == 7
        assert server.stats["frames_in"] == 1
        assert server.stats["bytes_in"] == len(wire)

    def test_two_dribbled_frames_accumulate(self, raw_to_chan):
        raw, server = raw_to_chan
        wire = wire_bytes_of(Hello(caller=7))
        for _ in range(2):
            for b in (wire[:11], wire[11:]):
                raw.sendall(b)
                time.sleep(0.02)
            assert isinstance(server.recv(timeout=5), Hello)
        assert server.stats["frames_in"] == 2
        assert server.stats["bytes_in"] == 2 * len(wire)
