"""FaultyChannel applies drop/delay/corrupt/close at the Channel interface."""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    ChannelClosedError,
    ChannelTimeoutError,
    SerializationError,
)
from repro.transport.channel import inproc_pair
from repro.transport.faults import FaultPlan, FaultRule
from repro.transport.message import Request, Response


def req(i, method="m"):
    return Request(request_id=i, object_id=1, method=method)


def plan_with(*rules):
    return FaultPlan(seed=0, rules=list(rules))


class TestSendSide:
    def test_drop_on_send_loses_only_first_message(self):
        a, b = inproc_pair()
        wrapped = plan_with(FaultRule(action="drop", direction="send",
                                      nth=1)).wrap(a)
        wrapped.send(req(1))
        wrapped.send(req(2))
        assert b.recv(timeout=5).request_id == 2
        with pytest.raises(ChannelTimeoutError):
            b.recv(timeout=0.05)

    def test_corrupt_on_send_is_silent_loss(self):
        a, b = inproc_pair()
        wrapped = plan_with(FaultRule(action="corrupt", direction="send",
                                      nth=1)).wrap(a)
        wrapped.send(req(1))  # peer could never have decoded it
        wrapped.send(req(2))
        assert b.recv(timeout=5).request_id == 2

    def test_delay_on_send_blocks_then_delivers(self):
        a, b = inproc_pair()
        wrapped = plan_with(FaultRule(action="delay", direction="send",
                                      nth=1, delay_s=0.2)).wrap(a)
        t0 = time.monotonic()
        wrapped.send(req(1))
        assert time.monotonic() - t0 >= 0.2
        assert b.recv(timeout=5).request_id == 1

    def test_close_on_send_kills_the_channel(self):
        a, b = inproc_pair()
        wrapped = plan_with(FaultRule(action="close", direction="send",
                                      nth=1)).wrap(a)
        with pytest.raises(ChannelClosedError):
            wrapped.send(req(1))
        with pytest.raises(ChannelClosedError):
            b.recv(timeout=5)  # inner channel really is closed


class TestRecvSide:
    def test_drop_on_recv_discards_and_keeps_reading(self):
        a, b = inproc_pair()
        wrapped = plan_with(FaultRule(action="drop", direction="recv",
                                      nth=1)).wrap(b)
        a.send(req(1))
        a.send(req(2))
        assert wrapped.recv(timeout=5).request_id == 2

    def test_corrupt_on_recv_raises_serialization_error(self):
        a, b = inproc_pair()
        wrapped = plan_with(FaultRule(action="corrupt", direction="recv",
                                      nth=1)).wrap(b)
        a.send(req(1))
        a.send(req(2))
        with pytest.raises(SerializationError, match="fault injected"):
            wrapped.recv(timeout=5)
        # max_fires=1: the channel recovers for the next message.
        assert wrapped.recv(timeout=5).request_id == 2

    def test_delay_on_recv_sleeps_then_returns(self):
        a, b = inproc_pair()
        wrapped = plan_with(FaultRule(action="delay", direction="recv",
                                      nth=1, delay_s=0.2)).wrap(b)
        a.send(req(1))
        t0 = time.monotonic()
        assert wrapped.recv(timeout=5).request_id == 1
        assert time.monotonic() - t0 >= 0.2

    def test_close_on_recv_kills_the_channel(self):
        a, b = inproc_pair()
        wrapped = plan_with(FaultRule(action="close", direction="recv",
                                      nth=1)).wrap(b)
        a.send(req(1))
        with pytest.raises(ChannelClosedError):
            wrapped.recv(timeout=5)
        with pytest.raises(ChannelClosedError):
            a.recv(timeout=5)  # the close is visible from the peer side


class TestPlumbing:
    def test_direction_filter_leaves_other_side_alone(self):
        a, b = inproc_pair()
        plan = plan_with(FaultRule(action="drop", direction="send", nth=1))
        wrapped = plan.wrap(a)
        # recv on the wrapped side is unaffected by a send-only rule.
        b.send(Response(request_id=7))
        assert wrapped.recv(timeout=5).request_id == 7
        wrapped.send(req(1))  # this one is dropped
        with pytest.raises(ChannelTimeoutError):
            b.recv(timeout=0.05)

    def test_faults_logged_per_channel(self):
        a, _b = inproc_pair()
        plan = plan_with(FaultRule(action="drop", direction="send", nth=1))
        wrapped = plan.wrap(a, label="driver->m1")
        wrapped.send(req(1))
        assert wrapped.injector.label == "driver->m1"
        assert wrapped.injector.log == ["1:send:req:m:drop"]

    def test_close_closes_inner(self):
        a, b = inproc_pair()
        wrapped = plan_with(FaultRule(action="drop", nth=1)).wrap(a)
        wrapped.close()
        with pytest.raises(ChannelClosedError):
            b.recv(timeout=5)

    def test_stats_delegate_to_inner_channel(self):
        a, _b = inproc_pair()
        wrapped = plan_with(FaultRule(action="drop", nth=1)).wrap(a)
        assert isinstance(wrapped.stats, dict)
