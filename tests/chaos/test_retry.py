"""retry_call backoff mechanics, the idempotency registry, retry config."""

from __future__ import annotations

import pytest

import repro as oopp
from repro.config import Config
from repro.errors import CallTimeoutError, ConfigError, RemoteExecutionError
from repro.runtime.futures import RETRYABLE_ERRORS, retry_call
from repro.runtime.oid import ObjectRef, class_spec
from repro.runtime.proxy import (
    GETATTR_METHOD,
    PING_METHOD,
    is_idempotent,
)
from repro.transport.faults import FaultPlan, FaultRule


class KV:
    """Module-level so its class spec resolves on both sides."""

    __oopp_idempotent__ = frozenset({"get"})

    def get(self, k):
        return k

    def put(self, k, v):
        return v


class TestRetryCall:
    def test_success_first_try_never_sleeps(self):
        sleeps = []
        out = retry_call(lambda: 42, retries=3, backoff_s=0.1,
                         sleep=sleeps.append)
        assert out == 42 and sleeps == []

    def test_exponential_backoff_schedule(self):
        sleeps = []
        attempts = []

        def attempt():
            attempts.append(1)
            if len(attempts) < 3:
                raise CallTimeoutError("not yet")
            return "ok"

        assert retry_call(attempt, retries=3, backoff_s=0.05,
                          sleep=sleeps.append) == "ok"
        assert sleeps == [0.05, 0.1]
        assert len(attempts) == 3

    def test_budget_exhaustion_reraises_last_error(self):
        calls = []

        def attempt():
            calls.append(1)
            raise CallTimeoutError("always")

        with pytest.raises(CallTimeoutError):
            retry_call(attempt, retries=2, backoff_s=0.01, sleep=lambda s: None)
        assert len(calls) == 3  # first try + 2 retries

    def test_non_retryable_error_passes_straight_through(self):
        calls = []

        def attempt():
            calls.append(1)
            raise RemoteExecutionError("the call ran and failed remotely")

        with pytest.raises(RemoteExecutionError):
            retry_call(attempt, retries=5, backoff_s=0.01, sleep=lambda s: None)
        assert len(calls) == 1  # proof of execution: never re-sent

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            retry_call(lambda: 1, retries=-1, backoff_s=0.1)

    def test_zero_retries_is_single_attempt(self):
        calls = []

        def attempt():
            calls.append(1)
            raise CallTimeoutError("once")

        with pytest.raises(CallTimeoutError):
            retry_call(attempt, retries=0, backoff_s=0.01, sleep=lambda s: None)
        assert len(calls) == 1

    def test_retryable_set_covers_ambiguous_failures(self):
        names = {cls.__name__ for cls in RETRYABLE_ERRORS}
        assert {"CallTimeoutError", "ChannelTimeoutError",
                "MachineDownError", "TransportError"} <= names


class TestIdempotencyRegistry:
    def test_implicit_reads_are_idempotent_even_without_spec(self):
        kernel = ObjectRef(machine=0, oid=0, spec=None)
        assert is_idempotent(kernel, PING_METHOD)
        assert is_idempotent(kernel, GETATTR_METHOD)
        assert is_idempotent(kernel, "ping")

    def test_unknown_method_without_spec_is_not_idempotent(self):
        kernel = ObjectRef(machine=0, oid=0, spec=None)
        assert not is_idempotent(kernel, "create")

    def test_class_opt_in_via_oopp_idempotent(self):
        ref = ObjectRef(machine=1, oid=7, spec=class_spec(KV))
        assert is_idempotent(ref, "get")
        assert not is_idempotent(ref, "put")

    def test_unresolvable_spec_is_conservative(self):
        ref = ObjectRef(machine=1, oid=7, spec=("no.such.module", "Nope"))
        assert not is_idempotent(ref, "get")

    def test_shipped_classes_declare_their_reads(self):
        assert "read" in oopp.PageDevice.__oopp_idempotent__
        assert "sum" in oopp.Block.__oopp_idempotent__


class TestRetryConfig:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError, match="call_retries"):
            Config(call_retries=-1).validate()

    def test_zero_backoff_rejected(self):
        with pytest.raises(ConfigError, match="retry_backoff_s"):
            Config(retry_backoff_s=0.0).validate()

    def test_fault_plan_must_quack_like_a_plan(self):
        with pytest.raises(ConfigError, match="FaultPlan"):
            Config(fault_plan=42).validate()

    def test_fault_plan_rules_validated_through_config(self):
        bad = FaultPlan(rules=[FaultRule(action="explode", nth=1)])
        with pytest.raises(ConfigError, match="action"):
            Config(fault_plan=bad).validate()

    def test_good_retry_config_validates(self):
        plan = FaultPlan(seed=1, rules=[FaultRule(action="drop", nth=1)])
        Config(call_retries=3, retry_backoff_s=0.01,
               fault_plan=plan).validate()
