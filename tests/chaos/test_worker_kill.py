"""Acceptance: SIGKILL a worker mid-call — MachineDownError, no hang.

The liveness monitor (not the kill helper) must notice the dead process,
fail the pending call with the victim's machine id and object id
attached, and make later calls to that machine fail fast while the rest
of the cluster keeps serving.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

import repro as oopp
from repro.errors import MachineDownError


class Sleeper:
    def nap(self, seconds):
        time.sleep(seconds)
        return seconds

    def tag(self):
        return "alive"


def test_sigkill_mid_call_surfaces_machine_down(tmp_path):
    with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=60.0,
                      storage_root=str(tmp_path / "r")) as cluster:
        victim = cluster.new(Sleeper, machine=1)
        bystander = cluster.new(Sleeper, machine=2)
        victim_oid = oopp.ref_of(victim).oid

        future = victim.nap.future(30.0)
        time.sleep(0.3)  # let the call land on the machine

        # Power-loss stand-in: raw SIGKILL, not the fabric's kill helper,
        # so only the liveness monitor can notice.
        os.kill(cluster.fabric.machine_pids()[1], signal.SIGKILL)

        t0 = time.monotonic()
        with pytest.raises(MachineDownError) as excinfo:
            future.result(10.0)
        detected = time.monotonic() - t0
        assert detected < 5.0  # well inside the 60s call deadline
        assert excinfo.value.machine == 1
        assert excinfo.value.oid == victim_oid

        # The reader thread may beat the liveness monitor to the failure;
        # within one poll interval the machine must be declared down.
        deadline = time.time() + 5.0
        while time.time() < deadline and not cluster.fabric.machine_down(1):
            time.sleep(0.05)
        assert cluster.fabric.machine_down(1)
        t0 = time.monotonic()
        with pytest.raises(MachineDownError) as excinfo:
            victim.tag()
        assert time.monotonic() - t0 < 1.0
        assert excinfo.value.machine == 1

        # Unrelated machines are untouched.
        assert bystander.tag() == "alive"
        assert cluster.fabric.ping(2) == 2


def test_sigkill_idle_machine_detected_by_monitor(tmp_path):
    with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=30.0,
                      storage_root=str(tmp_path / "r")) as cluster:
        victim = cluster.new(Sleeper, machine=1)
        os.kill(cluster.fabric.machine_pids()[1], signal.SIGKILL)

        deadline = time.time() + 5.0
        while time.time() < deadline and not cluster.fabric.machine_down(1):
            time.sleep(0.05)
        assert cluster.fabric.machine_down(1)

        with pytest.raises(MachineDownError):
            victim.tag()


def test_hard_kill_helper_attaches_context(tmp_path):
    with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=30.0,
                      storage_root=str(tmp_path / "r")) as cluster:
        victim = cluster.new(Sleeper, machine=1)
        future = victim.nap.future(30.0)
        time.sleep(0.3)
        cluster.fabric.kill_machine(1, hard=True)
        with pytest.raises(MachineDownError) as excinfo:
            future.result(10.0)
        assert excinfo.value.machine == 1
        assert excinfo.value.oid == oopp.ref_of(victim).oid


def test_machine_down_error_pickles_with_context(tmp_path):
    import pickle

    err = MachineDownError("machine 1 is down", machine=1, oid=42)
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, MachineDownError)
    assert clone.machine == 1 and clone.oid == 42
    assert "down" in str(clone)
