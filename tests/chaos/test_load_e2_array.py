"""Fault-under-load on the E2 remote-array path (mp backend).

Probabilistic delay faults on every link while Blocks are written, read
and reduced; with a deadline and a retry budget every result must still
be exact.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.transport.faults import FaultPlan, FaultRule


@pytest.fixture
def shaky_cluster(tmp_path):
    plan = FaultPlan(seed=11, rules=[
        FaultRule(action="delay", direction="both", probability=0.25,
                  delay_s=0.01, max_fires=None)])
    with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=30.0,
                      call_retries=2, retry_backoff_s=0.05, fault_plan=plan,
                      storage_root=str(tmp_path / "r")) as cluster:
        yield cluster


def test_block_round_trips_survive_delays(shaky_cluster):
    blocks = [shaky_cluster.new_block(64, machine=m) for m in (1, 2)]
    for j, blk in enumerate(blocks):
        blk.write(0, np.arange(64.0) + j)
    for j, blk in enumerate(blocks):
        got = blk.read()
        assert np.array_equal(got, np.arange(64.0) + j)


def test_reductions_survive_delays(shaky_cluster):
    blk = shaky_cluster.new_block(128, machine=1)
    data = np.linspace(-1.0, 1.0, 128)
    blk.write(0, data)
    assert blk.sum() == pytest.approx(data.sum())
    assert blk.min() == pytest.approx(data.min())
    assert blk.max() == pytest.approx(data.max())
    assert blk.dot(data) == pytest.approx(data @ data)


def test_many_small_ops_under_sustained_delays(shaky_cluster):
    blk = shaky_cluster.new_block(16, machine=2)
    blk.fill(0.0)
    for i in range(16):
        blk.write(i, np.array([float(i)]))
    assert np.array_equal(blk.read(), np.arange(16.0))
    assert blk.sum() == pytest.approx(np.arange(16.0).sum())


def test_pipelined_futures_complete_under_delays(shaky_cluster):
    blk = shaky_cluster.new_block(32, machine=1)
    blk.write(0, np.ones(32))
    futures = [blk.sum.future() for _ in range(8)]
    results = oopp.gather(futures)
    assert results == [pytest.approx(32.0)] * 8
