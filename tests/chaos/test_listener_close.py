"""Listener and accept-side failures during connection setup."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.errors import ChannelClosedError, TransportError
from repro.transport.message import Hello
from repro.transport.socket_channel import SocketChannel, listen_socket


def test_connect_after_listener_close_is_fast_refusal():
    listener = listen_socket()
    port = listener.getsockname()[1]
    listener.close()
    t0 = time.monotonic()
    with pytest.raises(TransportError):
        SocketChannel.connect("127.0.0.1", port, timeout=2.0)
    assert time.monotonic() - t0 < 2.0  # refused, not timed out


def test_accept_then_immediate_close_surfaces_on_recv():
    listener = listen_socket()
    port = listener.getsockname()[1]

    def accept_and_slam():
        sock, _ = listener.accept()
        sock.close()  # the "machine" dies during the handshake

    t = threading.Thread(target=accept_and_slam, daemon=True)
    t.start()
    client = SocketChannel.connect("127.0.0.1", port, timeout=5)
    t.join(timeout=5)
    # The Hello may land in a kernel buffer; the reply read cannot lie.
    try:
        client.send(Hello(caller=-1))
    except ChannelClosedError:
        pass  # also acceptable: the close was already visible
    with pytest.raises(ChannelClosedError):
        client.recv(timeout=5)
    client.close()
    listener.close()


def test_listener_close_during_connect_storm_never_hangs():
    listener = listen_socket(backlog=1)
    port = listener.getsockname()[1]
    stop = threading.Event()

    def close_soon():
        time.sleep(0.05)
        listener.close()
        stop.set()

    t = threading.Thread(target=close_soon, daemon=True)
    t.start()
    outcomes = []
    deadline = time.monotonic() + 10.0
    while not (stop.is_set() and outcomes and outcomes[-1] == "refused"):
        assert time.monotonic() < deadline, "connect attempt hung"
        try:
            chan = SocketChannel.connect("127.0.0.1", port, timeout=1.0)
        except TransportError:
            outcomes.append("refused")
        else:
            outcomes.append("connected")
            chan.close()
    t.join(timeout=5)
    # Every attempt resolved one way or the other, and the close was seen.
    assert "refused" in outcomes


def test_half_open_peer_recv_times_out_cleanly():
    """A listener that accepts but never speaks: recv must time out as a
    ChannelTimeoutError (slow peer), not hang or latch the channel."""
    from repro.errors import ChannelTimeoutError

    listener = listen_socket()
    port = listener.getsockname()[1]
    holder = {}

    def accept_and_hold():
        sock, _ = listener.accept()
        holder["sock"] = sock  # accepted, then silence

    t = threading.Thread(target=accept_and_hold, daemon=True)
    t.start()
    client = SocketChannel.connect("127.0.0.1", port, timeout=5)
    t.join(timeout=5)
    with pytest.raises(ChannelTimeoutError):
        client.recv(timeout=0.2)
    client.close()
    holder["sock"].close()
    listener.close()
