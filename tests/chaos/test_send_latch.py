"""Regression: only definitive peer-gone errors latch a channel closed.

A transient ``OSError`` during send (EINTR-style) must surface as
``TransportError`` and leave the channel usable; ``BrokenPipeError`` /
``ConnectionResetError`` mean the peer is gone and must latch.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ChannelClosedError, TransportError
from repro.transport.message import Hello
from repro.transport.socket_channel import SocketChannel, listen_socket


class FlakyFile:
    """File-object shim whose next write raises a chosen exception."""

    def __init__(self, real):
        self.real = real
        self.fail_with = None

    def write(self, data):
        if self.fail_with is not None:
            exc, self.fail_with = self.fail_with, None
            raise exc
        return self.real.write(data)

    def flush(self):
        return self.real.flush()


@pytest.fixture
def chan_pair():
    listener = listen_socket()
    port = listener.getsockname()[1]
    holder = {}

    def accept():
        sock, _ = listener.accept()
        holder["chan"] = SocketChannel(sock)

    t = threading.Thread(target=accept, daemon=True)
    t.start()
    client = SocketChannel.connect("127.0.0.1", port, timeout=5)
    t.join(timeout=5)
    server = holder["chan"]
    yield client, server
    client.close()
    server.close()
    listener.close()


def test_transient_oserror_does_not_latch(chan_pair):
    client, server = chan_pair
    flaky = FlakyFile(client._writer._fobj)
    client._writer._fobj = flaky
    flaky.fail_with = OSError("interrupted system call")
    with pytest.raises(TransportError):
        client.send(Hello(caller=1))
    # The channel survived: the next send goes through end to end.
    client.send(Hello(caller=2))
    assert server.recv(timeout=5).caller == 2


def test_broken_pipe_latches_closed(chan_pair):
    client, _server = chan_pair
    flaky = FlakyFile(client._writer._fobj)
    client._writer._fobj = flaky
    flaky.fail_with = BrokenPipeError("peer went away")
    with pytest.raises(ChannelClosedError):
        client.send(Hello(caller=1))
    # Latched: every later send refuses without touching the socket.
    with pytest.raises(ChannelClosedError):
        client.send(Hello(caller=2))


def test_connection_reset_latches_closed(chan_pair):
    client, _server = chan_pair
    flaky = FlakyFile(client._writer._fobj)
    client._writer._fobj = flaky
    flaky.fail_with = ConnectionResetError("reset by peer")
    with pytest.raises(ChannelClosedError):
        client.send(Hello(caller=1))
    with pytest.raises(ChannelClosedError):
        client.send(Hello(caller=2))


def test_value_error_from_closed_file_is_transport_error(chan_pair):
    client, _server = chan_pair
    flaky = FlakyFile(client._writer._fobj)
    client._writer._fobj = flaky
    flaky.fail_with = ValueError("I/O operation on closed file")
    with pytest.raises(TransportError):
        client.send(Hello(caller=1))
