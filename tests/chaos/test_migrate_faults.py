"""Chaos × migration: a move may die at any protocol step — the object
may not.

The invariants (see ``docs/MIGRATION.md`` and ``docs/FAILURES.md``):
whatever step of ``migrate_out → restore → migrate_commit`` a machine
death or wire fault lands on, the cluster is left with **at most one**
live replica, the failure surfaces as an error (never as a silently
forked or half-moved object), and when the source survives the object
keeps serving there.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro as oopp
from repro.errors import ChannelClosedError, MachineDownError
from repro.transport.faults import FaultInjector, FaultPlan, FaultRule
from repro.transport.message import KERNEL_OID, Request


class TestFaultClassification:
    """The injector must present migration kernel verbs as kind
    ``"migrate"`` so plans can target the protocol by name."""

    def _decide(self, rule, method):
        injector = FaultInjector(FaultPlan(seed=0, rules=[rule]), 0)
        msg = Request(request_id=1, object_id=KERNEL_OID, method=method,
                      args=(7,))
        return injector.decide("send", msg)

    @pytest.mark.parametrize("method", ["migrate_out", "migrate_commit",
                                        "migrate_abort"])
    def test_protocol_verbs_match_kind_migrate(self, method):
        rule = FaultRule(action="drop", kinds=("migrate",), nth=1)
        assert self._decide(rule, method) is rule

    def test_plain_kernel_verbs_do_not_match(self):
        rule = FaultRule(action="drop", kinds=("migrate",),
                         probability=1.0, max_fires=None)
        for method in ("restore", "stats", "destroy", "list_objects"):
            assert self._decide(rule, method) is None

    def test_migrate_requests_still_match_kind_req(self):
        rule = FaultRule(action="drop", kinds=("req",), nth=1)
        assert self._decide(rule, "migrate_out") is rule


SNAPSHOT_STALL_S = 30.0
INSTALL_STALL_S = 30.0


class SlowSnapshot:
    """``__getstate__`` stalls: the source is mid-snapshot for long
    enough to be killed there."""

    def __init__(self):
        self.n = 0

    def bump(self):
        self.n += 1
        return self.n

    def __getstate__(self):
        time.sleep(SNAPSHOT_STALL_S)
        return dict(self.__dict__)


class SlowInstall:
    """``__setstate__`` stalls: the destination is mid-install for long
    enough to be killed there.  ``migrate_abort`` reinstalls the parked
    source instance directly, so the stall never runs at the source."""

    def __init__(self):
        self.n = 0

    def bump(self):
        self.n += 1
        return self.n

    def __setstate__(self, state):
        time.sleep(INSTALL_STALL_S)
        self.__dict__.update(state or {})


def _replicas(cluster, skip=()):
    """Live hosted objects across every machine still standing."""
    total = 0
    for m in range(cluster.n_machines):
        if m in skip:
            continue
        total += len(cluster.fabric.kernel_call(m, "list_objects"))
    return total


def _migrate_in_thread(cluster, proxy, dest):
    box = {}

    def run():
        try:
            cluster.migrate(proxy, dest)
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            box["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


class TestKillMidMigration:
    def test_source_killed_mid_snapshot_never_forks(self, tmp_path):
        """The only replica dies with the source — an error, not a copy:
        the destination must not have installed anything."""
        with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=60.0,
                          storage_root=str(tmp_path / "r")) as cluster:
            victim = cluster.new(SlowSnapshot, machine=1)
            assert victim.bump() == 1
            thread, box = _migrate_in_thread(cluster, victim, 2)
            time.sleep(0.5)  # migrate_out is now stalled in __getstate__
            cluster.fabric.kill_machine(1, hard=True)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert isinstance(box.get("error"), MachineDownError)
            # no half-move: the survivors host zero replicas, and the
            # destination machine itself is healthy.
            assert _replicas(cluster, skip=(1,)) == 0
            probe = cluster.new(SlowInstall, machine=2)
            assert probe.bump() == 1

    def test_dest_killed_mid_install_aborts_to_source(self, tmp_path):
        """Install fails → the move aborts → the *source* copy is the
        one live replica and it keeps serving."""
        with oopp.Cluster(n_machines=3, backend="mp", call_timeout_s=60.0,
                          storage_root=str(tmp_path / "r")) as cluster:
            roamer = cluster.new(SlowInstall, machine=0)
            assert roamer.bump() == 1
            thread, box = _migrate_in_thread(cluster, roamer, 1)
            time.sleep(0.5)  # restore is now stalled in __setstate__
            cluster.fabric.kill_machine(1, hard=True)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert isinstance(box.get("error"), MachineDownError)
            # exactly one replica, back in service at the source:
            assert _replicas(cluster, skip=(1,)) == 1
            assert oopp.ref_of(roamer).machine == 0
            assert roamer.bump() == 2  # state survived the failed move


class TestWireFaults:
    def test_closed_channel_during_migrate_out_leaves_source_serving(
            self, tmp_path):
        """The migrate_out request never reaches the source: nothing was
        frozen, so the object just keeps serving where it is."""
        plan = FaultPlan(seed=11, rules=[
            FaultRule(action="close", direction="send", kinds=("migrate",),
                      methods=("migrate_out",), nth=1)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=10.0,
                          fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cluster:
            stayer = cluster.new(SlowInstall, machine=0)
            assert stayer.bump() == 1
            with pytest.raises((ChannelClosedError, MachineDownError,
                                oopp.errors.TransportError)):
                cluster.migrate(stayer, 1)
            assert oopp.ref_of(stayer).machine == 0
            assert _replicas(cluster) == 1
            assert stayer.bump() == 2
