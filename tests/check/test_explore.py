"""Schedule exploration: divergence hunting, deterministic replay, CLI."""

from __future__ import annotations

import pytest

from repro.check import __main__ as cli
from repro.check.examples import (
    atomic_increments,
    racy_increments,
    safe_increments,
)
from repro.check.explore import (
    canonical_repr,
    digest_of,
    explore,
    run_schedule,
)

pytestmark = pytest.mark.check


class TestCanonicalRepr:
    def test_dict_keys_sorted(self):
        assert canonical_repr({"b": 1, "a": 2}) == canonical_repr(
            dict([("a", 2), ("b", 1)]))

    def test_sets_sorted(self):
        assert canonical_repr({3, 1, 2}) == canonical_repr({1, 2, 3})

    def test_list_vs_tuple_distinguished(self):
        assert canonical_repr([1, 2]) != canonical_repr((1, 2))

    def test_nested(self):
        assert (canonical_repr({"x": [{2, 1}]})
                == canonical_repr({"x": [{1, 2}]}))


class TestDigest:
    def test_parts_are_separated(self):
        assert digest_of("ab", "c") != digest_of("a", "bc")

    def test_stable(self):
        assert digest_of("a", "b") == digest_of("a", "b")


class TestExplore:
    def test_racy_program_diverges_across_20_seeds(self):
        report = explore(racy_increments, 20)
        assert len(report.runs) == 21  # seed None baseline + 20 seeds
        assert report.runs[0].seed is None
        assert report.divergent
        assert report.divergent_seeds
        # the lost update: some schedules count 1, others 2
        results = {run.result_repr for run in report.runs}
        assert results == {"1", "2"}

    def test_divergent_seed_replays_byte_for_byte(self):
        report = explore(racy_increments, 20)
        seed = report.divergent_seeds[0]
        original = next(r for r in report.runs if r.seed == seed)
        replay = run_schedule(racy_increments, seed)
        assert replay.digest == original.digest
        assert replay.result_repr == original.result_repr
        assert replay.state == original.state

    def test_safe_program_is_schedule_stable(self):
        report = explore(safe_increments, 10, race_detect=True)
        assert not report.divergent
        assert report.races == []  # no false positives either
        assert all(run.result_repr == "2" for run in report.runs)

    def test_atomic_program_stable_but_flagged(self):
        # commutativity is invisible to a vector clock: every schedule
        # digests identically, yet the pipelined adds are unordered
        # writes and the detector must say so.
        report = explore(atomic_increments, 5, race_detect=True)
        assert not report.divergent
        assert report.races
        assert all(r["kind"] == "write-write" for r in report.races)

    def test_summary_names_the_replay_command(self):
        report = explore(racy_increments, 10,
                         program_name="repro.check.examples:racy_increments")
        summary = report.summary()
        assert "DIVERGENCE" in summary
        seed = report.divergent_seeds[0]
        assert (f"python -m repro.check replay --seed {seed} "
                f"--program repro.check.examples:racy_increments") in summary

    def test_explicit_seed_list(self):
        report = explore(safe_increments, seeds=[7, 8])
        assert [run.seed for run in report.runs] == [None, 7, 8]

    def test_program_exception_is_an_outcome(self):
        def boom(cluster):
            raise ValueError("schedule-independent failure")

        report = explore(boom, 3, capture_state=False)
        assert not report.divergent
        assert report.runs[0].error_type == "ValueError"
        assert "raised ValueError" in report.runs[0].describe()


class TestCli:
    RACY = "repro.check.examples:racy_increments"
    SAFE = "repro.check.examples:safe_increments"

    def test_explore_exits_nonzero_on_divergence(self, capsys):
        assert cli.main(["explore", "--seeds", "10"]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "replay --seed" in out

    def test_explore_exits_zero_when_stable(self, capsys):
        assert cli.main(["--program", self.SAFE,
                         "explore", "--seeds", "5"]) == 0
        assert "no divergence" in capsys.readouterr().out

    def test_replay_prints_digest_and_races(self, capsys):
        assert cli.main(["replay", "--seed", "1", "--races"]) == 0
        out = capsys.readouterr().out
        assert "seed=1" in out
        assert "digest=" in out
        assert "race:" in out

    def test_bad_program_spec_rejected(self):
        with pytest.raises(SystemExit):
            cli.resolve_program("no-colon")
        with pytest.raises(SystemExit):
            cli.resolve_program("repro.check.examples:missing")
