"""Race detector and checker: conflict pairing, classification, backends."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

import repro as oopp
from repro.check.checker import Checker, make_checker
from repro.check.detector import (
    IMPLICIT_READS,
    KERNEL_OID,
    Access,
    RaceDetector,
    is_read,
    readonly,
)
from repro.check.examples import SharedCounter, racy_increments
from repro.config import CheckConfig, Config

pytestmark = pytest.mark.check


class Victim:
    @readonly
    def peek(self):
        return 0

    def poke(self):
        pass


def mk_access(oid=1, method="poke", write=True, clock=None, component=1,
              machine=0, caller=-1, request_id=1):
    return Access(object_id=oid, method=method, is_write=write,
                  clock=clock or {component: 1}, component=component,
                  machine=machine, caller=caller, request_id=request_id)


class TestClassification:
    def test_readonly_decorator_marks_read(self):
        assert is_read(Victim(), "peek")
        assert Victim.peek.__oopp_readonly__ is True

    def test_undeclared_method_is_write(self):
        assert not is_read(Victim(), "poke")

    def test_implicit_reads(self):
        v = Victim()
        for method in IMPLICIT_READS:
            assert is_read(v, method)

    def test_readonly_exported_at_package_root(self):
        assert oopp.readonly is readonly


class TestDetector:
    def test_concurrent_writes_reported(self):
        d = RaceDetector()
        d.record(Victim(), mk_access(component=1, clock={1: 1}))
        d.record(Victim(), mk_access(component=2, clock={2: 1}))
        (report,) = d.reports()
        assert report.kind == "write-write"
        assert report.cls == "Victim"

    def test_ordered_writes_not_reported(self):
        d = RaceDetector()
        d.record(Victim(), mk_access(component=1, clock={1: 1}))
        d.record(Victim(), mk_access(component=2, clock={1: 1, 2: 1}))
        assert d.reports() == []

    def test_concurrent_reads_not_reported(self):
        d = RaceDetector()
        d.record(Victim(), mk_access(method="peek", write=False,
                                     component=1, clock={1: 1}))
        d.record(Victim(), mk_access(method="peek", write=False,
                                     component=2, clock={2: 1}))
        assert d.reports() == []

    def test_read_write_reported(self):
        d = RaceDetector()
        d.record(Victim(), mk_access(method="peek", write=False,
                                     component=1, clock={1: 1}))
        d.record(Victim(), mk_access(component=2, clock={2: 1}))
        (report,) = d.reports()
        assert report.kind == "read-write"

    def test_kernel_object_never_recorded(self):
        d = RaceDetector()
        d.record(Victim(), mk_access(oid=KERNEL_OID, component=1,
                                     clock={1: 1}))
        d.record(Victim(), mk_access(oid=KERNEL_OID, component=2,
                                     clock={2: 1}))
        assert d.reports() == []

    def test_internal_methods_never_recorded(self):
        d = RaceDetector()
        d.record(Victim(), mk_access(method="take_spans", component=1,
                                     clock={1: 1}))
        d.record(Victim(), mk_access(method="take_spans", component=2,
                                     clock={2: 1}))
        assert d.reports() == []

    def test_distinct_objects_never_pair(self):
        d = RaceDetector()
        d.record(Victim(), mk_access(oid=1, component=1, clock={1: 1}))
        d.record(Victim(), mk_access(oid=2, component=2, clock={2: 1}))
        assert d.reports() == []

    def test_same_oid_on_different_machines_never_pairs(self):
        # oids are per-machine: oid 1 on m0 and oid 1 on m1 are
        # different objects even through one shared detector.
        d = RaceDetector()
        d.record(Victim(), mk_access(machine=0, component=1, clock={1: 1}))
        d.record(Victim(), mk_access(machine=1, component=2, clock={2: 1}))
        assert d.reports() == []

    def test_duplicate_pair_reported_once(self):
        d = RaceDetector(max_accesses_per_object=4)
        a = mk_access(component=1, clock={1: 1})
        b = mk_access(component=2, clock={2: 1})
        d.record(Victim(), a)
        d.record(Victim(), b)
        d.record(Victim(), b)  # re-recorded (e.g. a duplicated send)
        assert len(d.reports()) == 1

    def test_history_bounded_fifo(self):
        d = RaceDetector(max_accesses_per_object=1)
        d.record(Victim(), mk_access(component=1, clock={1: 1}))
        # evicts component 1's access, then records component 3
        d.record(Victim(), mk_access(component=2, clock={1: 1, 2: 1}))
        d.record(Victim(), mk_access(component=3, clock={3: 1}))
        # 3 is concurrent with both, but only 2 was still in history
        assert len(d.reports()) == 1

    def test_report_cap_counts_dropped(self):
        d = RaceDetector(max_reports=1)
        d.record(Victim(), mk_access(component=1, clock={1: 1}))
        d.record(Victim(), mk_access(component=2, clock={2: 1}))
        d.record(Victim(), mk_access(component=3, clock={3: 1}))
        assert len(d.reports()) == 1
        assert d.dropped >= 1

    def test_forget_clears_history(self):
        d = RaceDetector()
        d.record(Victim(), mk_access(component=1, clock={1: 1}))
        d.forget(0, 1)
        d.record(Victim(), mk_access(component=2, clock={2: 1}))
        assert d.reports() == []

    def test_take_reports_drains_dicts(self):
        d = RaceDetector()
        d.record(Victim(), mk_access(component=1, clock={1: 1}))
        d.record(Victim(), mk_access(component=2, clock={2: 1}))
        (report,) = d.take_reports()
        assert report["kind"] == "write-write"
        assert report["class"] == "Victim"
        assert report["machine"] == 0
        assert report["first"]["method"] == "poke"
        assert d.take_reports() == []


def fake_request(clock=None, oid=1, method="poke", caller=-1, request_id=1):
    return SimpleNamespace(clock=clock, object_id=oid, method=method,
                           caller=caller, request_id=request_id)


class TestChecker:
    def test_pipelined_sends_record_concurrent_executions(self):
        # two requests sent without consuming the first reply: their
        # executions must pair as a race.
        driver = Checker(node=-1)
        server = Checker(node=0)
        for request_id in (1, 2):
            req = fake_request(clock=driver.on_send(),
                               request_id=request_id)
            task = server.begin_execution(req)
            with server.scope(task):
                server.record(req, Victim(), machine=0)
            server.end_execution(task)
        assert len(server.reports()) == 1

    def test_consumed_reply_orders_executions(self):
        # send → execute → consume reply → send again: the reply edge
        # orders the two executions, so no race.
        driver = Checker(node=-1)
        server = Checker(node=0)
        for request_id in (1, 2):
            req = fake_request(clock=driver.on_send(),
                               request_id=request_id)
            task = server.begin_execution(req)
            with server.scope(task):
                server.record(req, Victim(), machine=0)
            driver.on_consume(server.end_execution(task))
        assert server.reports() == []

    def test_on_consume_is_idempotent(self):
        driver = Checker(node=-1)
        snap = {99: 5}
        driver.on_consume(snap)
        driver.on_consume(snap)
        driver.on_consume(None)
        assert driver.on_send()[99] == 5

    def test_make_checker_off_by_default(self):
        assert make_checker(Config(n_machines=2), node=-1) is None
        assert make_checker(Config(n_machines=2, check=CheckConfig()),
                            node=-1) is None

    def test_make_checker_on_with_race_detect(self):
        config = Config(n_machines=2, check=CheckConfig(
            race_detect=True, max_accesses_per_object=8, max_reports=9))
        checker = make_checker(config, node=3)
        assert checker is not None
        assert checker.node == 3
        assert checker.detector.max_accesses_per_object == 8
        assert checker.detector.max_reports == 9


RACE_DETECT = {"check": CheckConfig(race_detect=True)}


class TestBackends:
    """The detector wired through real clusters, end to end."""

    @pytest.mark.parametrize("backend", ["sim", "mp"])
    def test_racy_program_flagged(self, backend, tmp_path):
        kwargs = {"call_timeout_s": 60.0} if backend == "mp" else {}
        with oopp.Cluster(n_machines=3, backend=backend,
                          storage_root=str(tmp_path / "r"),
                          **RACE_DETECT, **kwargs) as cluster:
            racy_increments(cluster)
            reports = cluster.race_reports()
        assert reports, "pipelined get-then-set bumps must be flagged"
        assert all(r["class"] == "SharedCounter" for r in reports)
        assert any(r["kind"] == "write-write" for r in reports)

    def test_inline_backend_is_genuinely_race_free(self, tmp_path):
        # inline executes calls synchronously and eagerly: every reply
        # is merged before the next send, so nothing is concurrent.
        with oopp.Cluster(n_machines=3, backend="inline",
                          storage_root=str(tmp_path / "r"),
                          **RACE_DETECT) as cluster:
            racy_increments(cluster)
            assert cluster.race_reports() == []

    def test_sequential_calls_not_flagged(self, tmp_path):
        with oopp.Cluster(n_machines=3, backend="sim",
                          storage_root=str(tmp_path / "r"),
                          **RACE_DETECT) as cluster:
            counter = cluster.on(0).new(SharedCounter)
            counter.set(1)
            counter.set(2)
            assert counter.get() == 2
            assert cluster.race_reports() == []

    def test_race_reports_drain(self, tmp_path):
        with oopp.Cluster(n_machines=3, backend="sim",
                          storage_root=str(tmp_path / "r"),
                          **RACE_DETECT) as cluster:
            racy_increments(cluster)
            assert cluster.race_reports()
            assert cluster.race_reports() == []

    def test_no_checker_without_config(self, sim_cluster):
        assert sim_cluster.fabric.checker is None
        assert sim_cluster.race_reports() == []


class TestRaceEventsExport:
    def test_reports_become_chrome_instants(self):
        from repro.obs.export import race_events

        events = race_events([{
            "machine": 2, "object_id": 1, "class": "SharedCounter",
            "kind": "write-write",
            "first": {"method": "set"}, "second": {"method": "set"},
        }])
        (ev,) = events
        assert ev["ph"] == "i"
        assert ev["cat"] == "race"
        assert ev["pid"] == 3
        assert "SharedCounter#1" in ev["name"]
