"""Cross-backend conformance: inline, sim and mp are one machine.

Program specs live at module level so mp machine processes can import
them; each uses the backend name in device filenames so the three runs
of one test never share a device file.
"""

from __future__ import annotations

import pytest

import repro as oopp
from repro.check.conformance import ALL_BACKENDS, conformance, run_program
from repro.check.examples import safe_increments
from repro.storage.blockstore import create_block_storage

pytestmark = pytest.mark.check

PAGE = 64
MP_KWARGS = {"call_timeout_s": 60.0}


def storage_stack(cluster):
    """Page → PageDevice → BlockStorage, the paper's storage spine."""
    backend = cluster.config.backend
    dev = cluster.on(1).new(oopp.PageDevice, f"conf_{backend}.dat", 4, PAGE)
    payload = bytes(range(PAGE))
    dev.write(oopp.Page(PAGE, payload), 2)
    roundtrip = dev.read(2).to_bytes() == payload
    blank = dev.read(0).to_bytes() == bytes(PAGE)

    store = create_block_storage(cluster, 3, NumberOfPages=2,
                                 n1=2, n2=2, n3=2,
                                 filename_prefix=f"bs_{backend}")
    machines = [oopp.ref_of(store.device(i)).machine
                for i in range(len(store))]
    sums = [store.device(i).sum(0) for i in range(len(store))]
    return roundtrip, blank, machines, sums


class ConfWorker:
    def __init__(self, wid):
        self.wid = wid
        self.done = 0

    def work(self, x):
        self.done += 1
        return self.wid * 10 + x


def group_barrier(cluster):
    """Round-robin group, pipelined invoke, full barrier."""
    g = cluster.new_group(ConfWorker, 6, argfn=lambda i: (i,))
    results = g.invoke("work", 1)
    g.barrier()
    machines = [oopp.ref_of(p).machine for p in g]
    return results, machines


class Faulty:
    def boom(self, code):
        raise ValueError(f"conformance boom {code}")


def error_path(cluster):
    """A remote method body raises: the original type must cross every
    backend's wire intact (the paper's transparency claim)."""
    f = cluster.on(2).new(Faulty)
    f.boom(7)


def backend_leak(cluster):
    """Deliberately non-conformant: the outcome names the backend."""
    return cluster.config.backend


class TestConformance:
    def test_storage_stack_conformant(self):
        report = conformance(storage_stack, **MP_KWARGS)
        assert report.consistent, report.summary()
        for outcome in report.outcomes:
            assert outcome.result_repr == "(True, True, [0, 1, 2], [0.0, 0.0, 0.0])"
        # one PageDevice on m1, one ArrayPageDevice per machine
        assert report.outcomes[0].objects_per_machine == [1, 2, 1]

    def test_group_barrier_conformant(self):
        report = conformance(group_barrier, **MP_KWARGS)
        assert report.consistent, report.summary()
        expected = "([1, 11, 21, 31, 41, 51], [0, 1, 2, 0, 1, 2])"
        assert report.outcomes[0].result_repr == expected
        assert "CONSISTENT" in report.summary()

    def test_error_path_conformant(self):
        report = conformance(error_path, **MP_KWARGS)
        assert report.consistent, report.summary()
        for outcome in report.outcomes:
            assert outcome.error_type == "ValueError"
            assert outcome.error_message == "conformance boom 7"
            assert outcome.result_repr is None

    def test_example_program_conformant(self):
        report = conformance(safe_increments, **MP_KWARGS)
        assert report.consistent, report.summary()
        assert report.outcomes[0].result_repr == "2"

    def test_all_three_backends_run(self):
        report = conformance(safe_increments, **MP_KWARGS)
        assert [o.backend for o in report.outcomes] == list(ALL_BACKENDS)


class TestDivergenceReporting:
    def test_backend_leak_is_caught(self):
        report = conformance(backend_leak, backends=("inline", "sim"))
        assert not report.consistent
        diffs = report.diffs()
        assert diffs and "result_repr" in diffs[0]
        assert "DIVERGENT" in report.summary()

    def test_run_program_captures_one_outcome(self):
        outcome = run_program(safe_increments, "inline")
        assert outcome.backend == "inline"
        assert outcome.result_repr == "2"
        assert outcome.error_type is None
        # SharedCounter on m0, Bumpers on m1/m2
        assert outcome.objects_per_machine == [1, 1, 1]
