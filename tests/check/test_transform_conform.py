"""The rewriter's dynamic acceptance gate: transformed programs must
*run* the same, not just lint clean.

``oopp-lint --fix --no-suppress`` rewrites the two sequential-baseline
loops shipped in ``examples/autoparallel_loops.py``.  Executing the
original and the rewritten module must produce identical conformance
digests (result repr + error + objects-per-machine, see
:mod:`repro.check.conformance`) on every in-process backend — the §4
send/receive reordering is observation-equivalent or it does not ship.

The genuinely order-dependent loop in ``examples/persistent_dataset.py``
must keep being refused, byte-identical.
"""

from __future__ import annotations

import os

import pytest

from repro.check.conformance import run_program
from repro.lint.transform import plan_source

pytestmark = pytest.mark.check

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
EXAMPLE = os.path.join(REPO_ROOT, "examples", "autoparallel_loops.py")
BACKENDS = ("inline", "sim", "mp")
MP_KWARGS = {"call_timeout_s": 60.0}


def _load(source: str) -> dict:
    ns: dict = {}
    exec(compile(source, EXAMPLE, "exec"), ns)
    return ns


@pytest.fixture(scope="module")
def variants():
    with open(EXAMPLE, encoding="utf-8") as fh:
        source = fh.read()
    plan = plan_source(source, path=EXAMPLE, honor_suppressions=False)
    assert len(plan.fixes) >= 2, \
        [r.refusal.format() for r in plan.refusals]
    assert plan.verify_error == ""
    assert "with oopp.autoparallel():" in plan.new_source
    return _load(source), _load(plan.new_source)


@pytest.mark.parametrize("backend", BACKENDS)
def test_rewritten_baselines_conform(backend, variants):
    orig, fixed = variants
    kwargs = MP_KWARGS if backend == "mp" else {}
    before = run_program(
        lambda c: orig["demo_program"](c, prefix=f"apo_{backend}"),
        backend, **kwargs)
    after = run_program(
        lambda c: fixed["demo_program"](c, prefix=f"apf_{backend}"),
        backend, **kwargs)
    assert before.error_type is None, before.describe()
    assert after.error_type is None, after.describe()
    assert before.digest == after.digest, \
        (before.describe(), after.describe())


def test_order_dependent_example_stays_sequential():
    path = os.path.join(REPO_ROOT, "examples", "persistent_dataset.py")
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    plan = plan_source(source, path=path, honor_suppressions=False)
    assert plan.fixes == []
    assert [r.refusal.reason for r in plan.refusals] == \
        ["receiver-escapes"]
    assert plan.new_source == source
