"""Vector clocks: compare/merge laws, task clocks, component minting."""

from __future__ import annotations

import pytest

from repro.check.vclock import (
    AFTER,
    BEFORE,
    CONCURRENT,
    EQUAL,
    ClockDomain,
    TaskClock,
    compare,
    component_node,
    concurrent,
    happens_before,
    merge,
)

pytestmark = pytest.mark.check


class TestCompare:
    def test_empty_clocks_equal(self):
        assert compare({}, {}) == EQUAL

    def test_identical_clocks_equal(self):
        assert compare({1: 2, 2: 1}, {1: 2, 2: 1}) == EQUAL

    def test_subset_is_before(self):
        assert compare({1: 1}, {1: 2}) == BEFORE
        assert compare({1: 1}, {1: 1, 2: 1}) == BEFORE

    def test_superset_is_after(self):
        assert compare({1: 2}, {1: 1}) == AFTER
        assert compare({1: 1, 2: 1}, {1: 1}) == AFTER

    def test_incomparable_is_concurrent(self):
        assert compare({1: 1}, {2: 1}) == CONCURRENT
        assert compare({1: 2, 2: 1}, {1: 1, 2: 2}) == CONCURRENT

    def test_missing_component_treated_as_zero(self):
        assert compare({1: 0}, {}) == EQUAL

    def test_helpers(self):
        assert happens_before({1: 1}, {1: 2})
        assert not happens_before({1: 2}, {1: 1})
        assert concurrent({1: 1}, {2: 1})
        assert not concurrent({1: 1}, {1: 1})


class TestMerge:
    def test_componentwise_max(self):
        assert merge({1: 2, 2: 1}, {1: 1, 3: 4}) == {1: 2, 2: 1, 3: 4}

    def test_merge_dominates_both_inputs(self):
        a, b = {1: 2}, {2: 3}
        m = merge(a, b)
        assert compare(a, m) in (BEFORE, EQUAL)
        assert compare(b, m) in (BEFORE, EQUAL)

    def test_merge_returns_new_dict(self):
        a = {1: 1}
        assert merge(a, {2: 1}) is not a
        assert a == {1: 1}


class TestTaskClock:
    def test_tick_advances_own_component(self):
        t = TaskClock(7)
        assert t.tick() == {7: 1}
        assert t.tick() == {7: 2}

    def test_tick_returns_snapshot_copy(self):
        t = TaskClock(7)
        snap = t.tick()
        t.tick()
        assert snap == {7: 1}

    def test_merge_folds_componentwise_max(self):
        t = TaskClock(7, {7: 1})
        t.merge({7: 5, 9: 2})
        t.merge(None)  # no-op
        assert t.snapshot() == {7: 5, 9: 2}

    def test_initial_clock_is_copied(self):
        init = {1: 1}
        t = TaskClock(7, init)
        t.tick()
        assert init == {1: 1}

    def test_message_edge_orders_tasks(self):
        # a send/receive pair creates a happens-before edge.
        sender, receiver = TaskClock(1), TaskClock(2)
        shipped = sender.tick()
        receiver.merge(shipped)
        receiver.tick()
        assert happens_before(shipped, receiver.snapshot())

    def test_no_message_edge_stays_concurrent(self):
        a, b = TaskClock(1), TaskClock(2)
        assert concurrent(a.tick(), b.tick())


class TestClockDomain:
    def test_components_unique_within_domain(self):
        d = ClockDomain(0)
        comps = {d.new_task().component for _ in range(100)}
        assert len(comps) == 100

    def test_salt_separates_nodes(self):
        driver, m0, m1 = ClockDomain(-1), ClockDomain(0), ClockDomain(1)
        assert component_node(driver.new_task().component) == -1
        assert component_node(m0.new_task().component) == 0
        assert component_node(m1.new_task().component) == 1

    def test_cross_domain_components_never_collide(self):
        a = {ClockDomain(0).new_task().component}
        b = {ClockDomain(1).new_task().component}
        assert not a & b

    def test_new_task_seeds_initial_clock(self):
        d = ClockDomain(0)
        t = d.new_task({5: 3})
        assert t.snapshot() == {5: 3}
