"""Property tests: a random-program grammar under schedule exploration.

Programs are drawn from a small grammar over the harness's example
classes — ``new`` (three SharedCounters, one per machine), ``call``
(a synchronous ``add``), and ``call_async`` rounds closed by a barrier
(pipelined ``add`` futures to *distinct* counters, then ``wait_all``).
Every program the grammar produces is race-free by construction: a
counter never has two calls in flight at once, and each barrier's
consumed replies order the rounds.  Such a program must digest
identically under every schedule, and the race detector must stay
silent.  Injecting the canonical get-then-set race breaks both.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.examples import Bumper, SharedCounter
from repro.check.explore import explore, run_schedule
from repro.runtime import wait_all

pytestmark = pytest.mark.check

N_COUNTERS = 3

deltas = st.integers(1, 3)
#: ("call", counter, delta) — synchronous add, reply consumed at once.
seq_op = st.tuples(st.just("call"), st.integers(0, N_COUNTERS - 1), deltas)
#: ("round", [(counter, delta)...]) — call_async fan-out over *distinct*
#: counters, closed by a wait_all barrier.
round_op = st.tuples(
    st.just("round"),
    st.lists(st.tuples(st.integers(0, N_COUNTERS - 1), deltas),
             min_size=1, max_size=N_COUNTERS,
             unique_by=lambda pair: pair[0]))
programs = st.lists(st.one_of(seq_op, round_op), min_size=1, max_size=6)


def expected_totals(ops) -> list:
    totals = [0] * N_COUNTERS
    for op in ops:
        if op[0] == "call":
            totals[op[1]] += op[2]
        else:
            for counter, delta in op[1]:
                totals[counter] += delta
    return totals


def make_program(ops):
    def program(cluster):
        counters = [cluster.on(m).new(SharedCounter)
                    for m in range(N_COUNTERS)]
        for op in ops:
            if op[0] == "call":
                counters[op[1]].add(op[2])
            else:
                wait_all([counters[i].add.future(d) for i, d in op[1]])
        return [c.get() for c in counters]
    return program


def make_racy_program(ops):
    """The same program with the canonical lost-update race injected."""
    base = make_program(ops)

    def program(cluster):
        totals = base(cluster)
        victim = cluster.on(0).new(SharedCounter)
        bumpers = [cluster.on(m).new(Bumper) for m in (1, 2)]
        wait_all([b.bump.future(victim) for b in bumpers])
        return totals, victim.get()
    return program


class TestRaceFreeByConstruction:
    @given(programs)
    @settings(max_examples=8, deadline=None)
    def test_identical_digests_and_silent_detector(self, ops):
        report = explore(make_program(ops), 5, race_detect=True)
        assert not report.divergent, report.summary()
        assert report.races == []
        expected = str(expected_totals(ops))
        assert all(run.result_repr == expected for run in report.runs)

    def test_representative_program_stable_across_20_seeds(self):
        ops = [("call", 0, 2),
               ("round", [(0, 1), (1, 3), (2, 2)]),
               ("call", 2, 1),
               ("round", [(1, 1)])]
        report = explore(make_program(ops), 20, race_detect=True)
        assert len(report.runs) == 21
        assert len(report.digests) == 1
        assert report.races == []


class TestInjectedRace:
    @given(programs)
    @settings(max_examples=5, deadline=None)
    def test_detector_pinpoints_the_injected_race(self, ops):
        report = explore(make_racy_program(ops), 4, race_detect=True)
        assert report.races, "the pipelined get-then-set must be flagged"
        assert any(r["class"] == "SharedCounter" for r in report.races)
        # the race-free prefix stays deterministic: only the victim
        # counter's value may vary between schedules.
        prefix = {run.result_repr.split("], ")[0] for run in report.runs}
        assert len(prefix) == 1

    def test_divergent_seed_replays_exactly(self):
        program = make_racy_program([("call", 0, 1)])
        report = explore(program, 20)
        assert report.divergent, report.summary()
        seed = report.divergent_seeds[0]
        original = next(r for r in report.runs if r.seed == seed)
        assert run_schedule(program, seed).digest == original.digest
