"""Regression: retrying a non-idempotent method is refused — and a
duplicated send, were one ever issued, is exactly what the race
detector flags.

docs/FAILURES.md promises that an ambiguous failure of a mutation
surfaces instead of being re-sent.  This suite pins both halves of the
contract: the call layer refuses the retry (the routing predicate and
the end-to-end timeout path), and the detector-side safety net — a
blind duplicate of a mutation has no happens-before edge to the
original, because the original's reply was never consumed, so it pairs
as a write-write race.
"""

from __future__ import annotations

import pytest

import repro as oopp
from repro.check.examples import SharedCounter
from repro.config import CheckConfig
from repro.errors import CallTimeoutError
from repro.runtime.proxy import is_idempotent
from repro.runtime.oid import class_spec
from repro.transport.faults import FaultPlan, FaultRule

pytestmark = pytest.mark.check


class TestRetryRouting:
    def test_mutations_are_not_idempotent(self):
        ref = oopp.ObjectRef(machine=0, oid=1,
                             spec=class_spec(SharedCounter))
        assert not is_idempotent(ref, "set")
        assert not is_idempotent(ref, "add")

    def test_implicit_reads_are_idempotent(self):
        ref = oopp.ObjectRef(machine=0, oid=1,
                             spec=class_spec(SharedCounter))
        assert is_idempotent(ref, "__oopp_getattr__")
        assert is_idempotent(ref, "ping")


class TestTimeoutRefusal:
    def test_dropped_mutation_surfaces_instead_of_retrying(self, tmp_path):
        # the first `set` request is silently dropped; with a retry
        # budget available the call must STILL fail (one deadline, no
        # re-send) and the counter must show the mutation never ran.
        plan = FaultPlan(seed=3, rules=[
            FaultRule(action="drop", direction="send", kinds=("req",),
                      methods=("set",), nth=1)])
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=1.0,
                          retry=oopp.RetryConfig(retries=3, backoff_s=0.05),
                          fault_plan=plan,
                          storage_root=str(tmp_path / "r")) as cluster:
            counter = cluster.on(1).new(SharedCounter)
            with pytest.raises(CallTimeoutError):
                counter.set(5)
            assert counter.get() == 0


class TestDuplicateSendFlagged:
    def test_blind_duplicate_is_a_write_write_race(self, tmp_path):
        # model what an (incorrect) automatic retry would do: re-send
        # the mutation without having consumed the first reply.  The
        # two executions share no reply edge, so they are concurrent
        # conflicting writes.
        with oopp.Cluster(n_machines=2, backend="sim",
                          check=CheckConfig(race_detect=True),
                          storage_root=str(tmp_path / "r")) as cluster:
            counter = cluster.on(1).new(SharedCounter)
            first = counter.set.future(5)
            second = counter.set.future(5)  # duplicate, first unconsumed
            oopp.wait_all([first, second])
            reports = cluster.race_reports()
        assert reports, "a duplicated mutation must be flagged"
        (report,) = reports
        assert report["kind"] == "write-write"
        assert report["first"]["method"] == "set"
        assert report["second"]["method"] == "set"

    def test_consumed_reply_then_resend_is_ordered(self, tmp_path):
        # the safe manual recovery: observe the first call's outcome,
        # then decide to re-issue.  The consumed reply orders the two
        # executions — no race.
        with oopp.Cluster(n_machines=2, backend="sim",
                          check=CheckConfig(race_detect=True),
                          storage_root=str(tmp_path / "r")) as cluster:
            counter = cluster.on(1).new(SharedCounter)
            counter.set(5)
            counter.set(5)
            assert counter.get() == 5
            assert cluster.race_reports() == []
