"""Utility helpers: ids, stopwatch, formatting."""

from __future__ import annotations

import threading

import pytest

from repro.util.ids import IdAllocator, fresh_token
from repro.util.timing import Stopwatch, format_bytes, format_rate, format_seconds


class TestIdAllocator:
    def test_monotonic_from_start(self):
        ids = IdAllocator(start=10)
        assert [ids.next() for _ in range(3)] == [10, 11, 12]
        assert ids.last == 12

    def test_last_before_any(self):
        assert IdAllocator(start=5).last == 4

    def test_thread_safety_no_duplicates(self):
        ids = IdAllocator()
        seen = []

        def take():
            for _ in range(500):
                seen.append(ids.next())

        threads = [threading.Thread(target=take) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 2000


class TestFreshToken:
    def test_unique_and_prefixed(self):
        a, b = fresh_token("disk"), fresh_token("disk")
        assert a != b
        assert a.startswith("disk-") and b.startswith("disk-")


class TestStopwatch:
    def test_accumulates_laps(self):
        sw = Stopwatch()
        with sw:
            pass
        with sw:
            pass
        assert len(sw.laps) == 2
        assert sw.elapsed == pytest.approx(sum(sw.laps))
        assert sw.mean_lap == pytest.approx(sw.elapsed / 2)

    def test_misuse_rejected(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.stop()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_empty_mean(self):
        assert Stopwatch().mean_lap == 0.0


class TestFormatting:
    @pytest.mark.parametrize("value,expect", [
        (0, "0 s"),
        (3e-9, "3 ns"),
        (2.5e-6, "2.5 us"),
        (1.5e-3, "1.5 ms"),
        (2.0, "2 s"),
        (180.0, "3 min"),
    ])
    def test_format_seconds(self, value, expect):
        assert format_seconds(value) == expect

    def test_negative_seconds(self):
        assert format_seconds(-1e-3) == "-1 ms"

    @pytest.mark.parametrize("value,expect", [
        (0, "0 B"),
        (512, "512 B"),
        (2048, "2 KiB"),
        (3 << 20, "3 MiB"),
        (5 << 40, "5 TiB"),
    ])
    def test_format_bytes(self, value, expect):
        assert format_bytes(value) == expect

    def test_format_rate(self):
        assert format_rate(2048) == "2 KiB/s"
