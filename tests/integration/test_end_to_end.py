"""Cross-backend integration scenarios."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.array.array3d import Array
from repro.fft.distributed import DistributedFFT3D
from repro.storage.blockstore import create_block_storage
from repro.storage.pagemap import RoundRobinPageMap


class TestSameAnswerEverywhere:
    """One non-trivial workload, identical results on every backend."""

    def run_workload(self, cluster) -> tuple[float, np.ndarray]:
        storage = create_block_storage(cluster, 3, NumberOfPages=5,
                                       n1=4, n2=4, n3=4,
                                       filename_prefix="e2e")
        pmap = RoundRobinPageMap(grid=(2, 2, 1), n_devices=3)
        array = Array(8, 8, 4, 4, 4, 4, storage, pmap)
        ref = np.random.default_rng(42).random((8, 8, 4))
        array.write(ref)
        total = array.sum()
        plan = DistributedFFT3D(cluster, (8, 8, 4), n_workers=2)
        spectrum = plan.forward(ref.astype(complex))
        return total, spectrum

    def test_consistent_across_backends(self, tmp_path):
        results = {}
        for backend in ("inline", "sim", "mp"):
            kwargs = {"call_timeout_s": 60.0} if backend == "mp" else {}
            with oopp.Cluster(n_machines=3, backend=backend,
                              storage_root=str(tmp_path / backend),
                              **kwargs) as cluster:
                results[backend] = self.run_workload(cluster)
        ref_total, ref_spec = results["inline"]
        for backend, (total, spec) in results.items():
            assert total == pytest.approx(ref_total), backend
            assert np.allclose(spec, ref_spec, atol=1e-9), backend


class TestMpPersistenceAcrossRestart:
    def test_device_survives_cluster_restart(self, tmp_path):
        """A persistent PageDevice written in one mp cluster session is
        reactivated in a fresh session — with new OS processes — and
        serves the same bytes."""
        root = str(tmp_path / "root")
        payload = bytes(range(64))
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=60.0,
                          storage_root=root) as c1:
            dev = c1.new(oopp.PageDevice, str(tmp_path / "persist.dat"),
                         4, 64, machine=1)
            dev.write(oopp.Page(64, payload), 2)
            addr = str(c1.persist(dev, "survivor"))
        with oopp.Cluster(n_machines=2, backend="mp", call_timeout_s=60.0,
                          storage_root=root) as c2:
            revived = c2.lookup(addr, machine=0)
            assert revived.read(2).to_bytes() == payload
            # and it is writable again
            revived.write(oopp.Page(64, bytes(64)), 2)
            assert revived.read(2).to_bytes() == bytes(64)


class TestManyObjectsStress:
    def test_hundred_objects_across_machines(self, inline_cluster):
        group = inline_cluster.new_group(oopp.Block, 100,
                                         argfn=lambda i: (4, "float64", i))
        sums = group.invoke("sum")
        assert sums == [4.0 * i for i in range(100)]
        group.destroy()
        assert all(s["objects"] == 0 for s in inline_cluster.stats())

    def test_deep_call_chain(self, inline_cluster):
        # relay[0] -> relay[1] -> ... -> relay[4] -> block
        blk = inline_cluster.new_block(4, machine=0, fill=5)
        chain = blk
        for i in range(5):
            chain = inline_cluster.new(_Forwarder, chain,
                                       machine=i % inline_cluster.n_machines)
        assert chain.total() == 20.0


class _Forwarder:
    def __init__(self, target):
        self.target = target

    def total(self):
        t = self.target
        # target is either a Block (has sum) or another forwarder (total)
        try:
            return t.total()
        except AttributeError:
            return t.sum()
