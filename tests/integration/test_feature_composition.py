"""Cross-feature integration: the pieces composing as one system."""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.apps.kvstore import KVStore
from repro.apps.stencil import HeatSolver, solve_serial
from repro.storage.cache import CachingPageDevice


class TestAutoparWithStorage:
    def test_paper_loop_over_devices(self, inline_cluster):
        """§4's exact loop, through autoparallel, against real devices."""
        devices = inline_cluster.new_group(
            oopp.ArrayPageDevice, 4,
            argfn=lambda i: (f"comp-{i}.dat", 4, 2, 2, 2))
        for i, d in enumerate(devices):
            d.write_page(oopp.ArrayPage(2, 2, 2, np.full(8, float(i))), 1)
        page_address = [1, 1, 1, 1]
        with oopp.autoparallel():
            buffer = [devices[i].read_page(page_address[i])
                      for i in range(4)]
        assert [b.value.sum() for b in buffer] == [0.0, 8.0, 16.0, 24.0]

    def test_autopar_with_array_reductions(self, sim_cluster):
        from repro.array.array3d import Array
        from repro.storage.blockstore import create_block_storage
        from repro.storage.pagemap import RoundRobinPageMap

        store = create_block_storage(sim_cluster, 3, NumberOfPages=4,
                                     n1=4, n2=4, n3=4,
                                     filename_prefix="comp-arr")
        a = Array(8, 4, 4, 4, 4, 4, store,
                  RoundRobinPageMap(grid=(2, 1, 1), n_devices=3))
        a.fill(1.0)
        eng = sim_cluster.fabric.engine
        t0 = eng.now
        with oopp.autoparallel():
            # three independent whole-array reductions, overlapped
            s = store[0].reduce_region.future  # noqa: F841 - warm nothing
            sums = [d.reduce_region(0, (0, 0, 0), (4, 4, 4), "sum")
                    for d in store]
        assert sum(x.value for x in sums) == 128.0


class TestCacheInBlockStorage:
    def test_cached_device_group(self, sim_cluster):
        """Client-side caches wrapping every device of a group."""
        devices = sim_cluster.new_group(
            oopp.PageDevice, 3, argfn=lambda i: (f"cg-{i}.dat", 4, 64))
        caches = [CachingPageDevice(d, 2) for d in devices]
        eng = sim_cluster.fabric.engine
        for c in caches:
            c.read(0)  # warm
        t0 = eng.now
        for c in caches:
            c.read(0)  # all hits
        assert eng.now == t0
        assert all(c.cache_stats()["hits"] == 1 for c in caches)


class TestKvStoreWithSubmit:
    def test_populate_via_remote_function(self, inline_cluster):
        kv = KVStore.deploy(inline_cluster, n_shards=2)
        # a shipped function fills the store from machine 1's context
        n = inline_cluster.submit(_fill_kv, kv, 25, machine=1)
        assert n == 25
        assert kv.size() == 25
        assert kv["key-7"] == 49


class TestStencilVsMapReduceConsistency:
    def test_heat_statistics_via_mapreduce(self, inline_cluster):
        """Solve the heat equation, then reduce temperature statistics
        over the rows with MapReduce — two models, one framework."""
        from repro.apps.mapreduce import run_mapreduce

        u0 = np.zeros((12, 8))
        u0[0, :] = 100.0
        solver = HeatSolver(inline_cluster, u0.shape, n_workers=3)
        got = solver.solve(u0, 0.2, n_steps=15)
        want = solve_serial(u0, 0.2, 15)
        assert np.allclose(got, want, atol=1e-12)

        rows = [row.tolist() for row in got]
        stats = run_mapreduce(inline_cluster, _map_row_bucket, _reduce_mean,
                              rows, n_mappers=2, n_reducers=2)
        hot = want[want >= 1.0].mean()
        assert stats["hot"] == pytest.approx(hot)


# --- shipped functions (module-level) ----------------------------------------

def _fill_kv(kv, n):
    kv.put_many([(f"key-{i}", i * i) for i in range(n)])
    return n


def _map_row_bucket(row):
    for v in row:
        yield ("hot" if v >= 1.0 else "cold"), v


def _reduce_mean(key, values):
    return sum(values) / len(values)
