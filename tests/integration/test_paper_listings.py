"""Every code listing in the paper, executed end to end.

Each test reproduces one of the paper's C++ listings with the library's
Python spelling, on a real multi-process cluster where the listing
involves multiple machines.  Comments quote the original.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as oopp
from repro.fft.distributed import DistributedFFT3D
from repro.storage.blockstore import create_block_storage
from repro.storage.domain import Domain
from repro.storage.pagemap import RoundRobinPageMap


class ComputingProcess:
    """§2's shared-memory sketch: a process holding a pointer to shared
    remote data."""

    def __init__(self, data):
        self.data = data

    def bump(self, index):
        self.data[index] = self.data[index] + 1.0
        return True


class TestSection2:
    def test_remote_page_device(self, mp_cluster):
        # PageDevice * PageStore = new(machine 1)
        #     PageDevice("pagefile", NumberOfPages, PageSize);
        NumberOfPages, PageSize = 10, 1024
        PageStore = mp_cluster.new(oopp.PageDevice, "pagefile",
                                   NumberOfPages, PageSize, machine=1)
        # Page * page = GenerateDataPage();
        page = oopp.Page(PageSize, bytes(range(256)) * 4)
        # PageStore->write(page, 17);  (addressed within bounds here)
        PageAddress = 7
        PageStore.write(page, PageAddress)
        assert PageStore.read(PageAddress) == page

    def test_remote_double_array(self, mp_cluster):
        # double * data = new(machine 2) double[1024];
        data = mp_cluster.new_block(1024, machine=2)
        # data[7] = 3.1415;
        data[7] = 3.1415
        # double x = data[2];
        x = data[2]
        assert x == 0.0 and data[7] == 3.1415

    def test_shared_data_many_processes(self, mp_cluster):
        # for (i) computer[i] = new(machine i) ComputingProcess(data);
        data = mp_cluster.new_block(8, machine=0)
        computers = mp_cluster.new_group(ComputingProcess, 3,
                                         argfn=lambda i: (data,))
        # sequential computation on shared data (the paper notes this
        # is sequential until §4's parallelization)
        for c in computers:
            c.bump(0)
        assert data[0] == 3.0

    def test_destructor_terminates_remote_process(self, mp_cluster):
        # delete page_device; — destruction of a remote object causes
        # termination of the remote process.
        dev = mp_cluster.new(oopp.PageDevice, "gone.dat", 2, 64, machine=1)
        oopp.destroy(dev)
        with pytest.raises(oopp.NoSuchObjectError):
            dev.read(0)


class TestSection3:
    def test_array_page_device_inheritance(self, mp_cluster):
        # ArrayPageDevice derives from PageDevice; no new syntax for the
        # derived remote process.
        n1 = n2 = n3 = 8
        blocks = mp_cluster.new(oopp.ArrayPageDevice, "array_blocks",
                                6, n1, n2, n3, machine=2)
        data = np.random.default_rng(0).random((n1, n2, n3))
        blocks.write_page(oopp.ArrayPage(n1, n2, n3, data), 4)

        # Variant 1: copy the page locally, then sum.
        PageAddress = 4
        page = blocks.read_page(PageAddress)
        local_result = page.sum()

        # Variant 2: sum remotely, copy only the result.
        remote_result = blocks.sum(PageAddress)

        assert local_result == pytest.approx(remote_result)
        assert remote_result == pytest.approx(float(data.sum()))

    def test_base_class_interface_still_works_remotely(self, mp_cluster):
        blocks = mp_cluster.new(oopp.ArrayPageDevice, "inherit.dat",
                                2, 2, 2, 2, machine=1)
        raw = oopp.Page(64, b"\x01" * 64)
        blocks.write(raw, 0)  # PageDevice::write through the subclass
        assert blocks.read(0).to_bytes() == b"\x01" * 64


class TestSection4:
    def test_parallel_device_reads(self, mp_cluster):
        # for (i) device[i] = new(machine i) ArrayPageDevice(...);
        devices = mp_cluster.new_group(
            oopp.ArrayPageDevice, 3,
            argfn=lambda i: (f"array_blocks-{i}", 4, 2, 2, 2))
        for i, d in enumerate(devices):
            d.write_page(oopp.ArrayPage(2, 2, 2, np.full(8, float(i))), 1)
        # the split loop: send-loop then receive-loop
        page_address = [1, 1, 1]
        futures = [d.read_page.future(a)
                   for d, a in zip(devices, page_address)]
        buffers = oopp.gather(futures)
        assert [b.sum() for b in buffers] == [0.0, 8.0, 16.0]

    def test_fft_group_protocol(self, mp_cluster):
        # The full §4 FFT listing: creation, SetGroup, transform.
        shape = (6, 6, 6)
        a = (np.random.default_rng(1).random(shape)
             + 1j * np.random.default_rng(2).random(shape))
        plan = DistributedFFT3D(mp_cluster, shape, n_workers=3,
                                collective=True)
        got = plan.forward(a)
        assert np.allclose(got, np.fft.fftn(a), atol=1e-8)

    def test_group_barrier(self, mp_cluster):
        # fft->barrier();
        plan = DistributedFFT3D(mp_cluster, (6, 6, 6), n_workers=3)
        plan.group.barrier()


class TestSection5:
    def test_array_over_block_storage(self, mp_cluster):
        storage = create_block_storage(mp_cluster, 3, NumberOfPages=5,
                                       n1=4, n2=4, n3=4)
        pmap = RoundRobinPageMap(grid=(2, 1, 1), n_devices=3)
        array = oopp.Array(8, 4, 4, 4, 4, 4, storage, pmap)
        ref = np.random.default_rng(3).random((8, 4, 4))
        array.write(ref)
        dom = Domain(1, 7, 0, 4, 1, 3)
        assert np.allclose(array.read(dom), ref[dom.slices])
        assert array.sum(dom) == pytest.approx(ref[dom.slices].sum())

    def test_symbolic_address_lookup(self, mp_cluster):
        # PageDevice * page_device = "http://data/set/PageDevice/34";
        dev = mp_cluster.new(oopp.PageDevice, "registered.dat", 4, 64,
                             machine=1)
        dev.write(oopp.Page(64, b"\x07" * 64), 3)
        addr = mp_cluster.persist(dev, "34")
        assert str(addr) == "oop://data/PageDevice/34"
        found = mp_cluster.lookup("oop://data/PageDevice/34")
        assert found.read(3).to_bytes() == b"\x07" * 64

    def test_adoption_and_replacement(self, mp_cluster):
        # ArrayPageDevice * new_device = new ArrayPageDevice(page_device);
        page_device = mp_cluster.new(oopp.PageDevice, "old.dat", 4,
                                     2 * 2 * 2 * 8, machine=1)
        new_device = mp_cluster.new(oopp.ArrayPageDevice, page_device,
                                    2, 2, 2, machine=1)
        new_device.write_page(oopp.ArrayPage(2, 2, 2, np.ones(8)), 0)
        # co-existence: both processes serve the same data
        assert page_device.read(0).to_bytes() == np.ones(8).tobytes()
        # ... or shut the original down: delete page_device;
        oopp.destroy(page_device)
        assert new_device.sum(0) == 8.0
