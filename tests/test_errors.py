"""Exception hierarchy contracts."""

from __future__ import annotations

import pickle

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_an_oopp_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.OoppError), name

    def test_object_destroyed_is_no_such_object(self):
        assert issubclass(errors.ObjectDestroyedError,
                          errors.NoSuchObjectError)

    def test_storage_errors_are_also_builtin_kinds(self):
        # so `except IndexError` etc. work naturally at call sites
        assert issubclass(errors.PageIndexError, IndexError)
        assert issubclass(errors.PageSizeError, ValueError)
        assert issubclass(errors.DomainError, ValueError)
        assert issubclass(errors.LayoutError, ValueError)

    def test_transport_under_oopp(self):
        assert issubclass(errors.ChannelClosedError, errors.TransportError)
        assert issubclass(errors.FramingError, errors.TransportError)

    def test_persistence_under_runtime(self):
        assert issubclass(errors.UnknownAddressError, errors.PersistenceError)
        assert issubclass(errors.AddressSyntaxError, errors.PersistenceError)


class TestRemoteExecutionError:
    def test_carries_remote_details(self):
        err = errors.RemoteExecutionError(
            "remote failed", remote_type_name="pkg.Boom",
            remote_traceback="Traceback...")
        assert err.remote_type_name == "pkg.Boom"
        assert "Traceback" in str(err)

    def test_pickles(self):
        err = errors.RemoteExecutionError("x", remote_type_name="T",
                                          remote_traceback="tb")
        err2 = pickle.loads(pickle.dumps(err))
        assert isinstance(err2, errors.RemoteExecutionError)


class TestGroupError:
    def test_failures_mapping(self):
        ge = errors.GroupError("2 failed", {0: ValueError(), 3: KeyError()})
        assert set(ge.failures) == {0, 3}

    def test_default_failures_empty(self):
        assert errors.GroupError("none").failures == {}
