"""Hosted synchronization primitives under the concurrent server.

Regression suite for the REVIEW deadlock: ``Rendezvous.arrive``,
``Latch.wait`` and ``Mailbox.take`` park on the hosted object's own
condition variable while (as writers under the ServePolicy) holding its
exclusive lock — the remote ``arrive`` / ``count_down`` / ``put`` that
would wake them is a writer on the same object and queues behind that
lock forever unless the wait yields it.  ``workers=1`` additionally
proves the parked call yields its worker slot: the machine's only slot
must be free for the waking call to execute at all.
"""

from __future__ import annotations

import pytest

import repro as oopp
from repro.config import Config, ServeConfig
from repro.runtime.sync import Latch, Mailbox, Rendezvous

pytestmark = pytest.mark.serve


def _mp_cluster(**serve_kwargs):
    return oopp.Cluster(config=Config(
        backend="mp", n_machines=1, serve=ServeConfig(**serve_kwargs)))


class TestHostedSync:
    def test_rendezvous_parties_meet_single_worker(self):
        with _mp_cluster(workers=1) as c:
            r = c.on(0).new(Rendezvous, 3)
            futs = [r.arrive.future(20.0) for _ in range(3)]
            assert [f.result(30.0) for f in futs] == [0, 0, 0]
            # reusable: the next generation completes too
            futs = [r.arrive.future(20.0) for _ in range(3)]
            assert [f.result(30.0) for f in futs] == [1, 1, 1]

    def test_latch_wait_unblocked_by_remote_count_down(self):
        with _mp_cluster(workers=1) as c:
            latch = c.on(0).new(Latch, 2)
            waiter = latch.wait.future(20.0)
            assert latch.count_down.future(1).result(30.0) == 1
            assert not waiter.done()      # one count still outstanding
            assert latch.count_down.future(1).result(30.0) == 0
            assert waiter.result(30.0) is True

    def test_mailbox_take_blocks_until_put(self):
        with _mp_cluster(workers=1) as c:
            mb = c.on(0).new(Mailbox)
            taker = mb.take.future("slab", 20.0)
            mb.put("slab", b"payload")
            assert taker.result(30.0) == b"payload"

    def test_many_waiters_do_not_pin_worker_slots(self):
        # Several parked arrives on one machine: every waiter yielded
        # its slot, so an unrelated object stays callable while they
        # park, and the final arrive still completes the barrier.
        with _mp_cluster(workers=2) as c:
            r = c.on(0).new(Rendezvous, 4)
            mb = c.on(0).new(Mailbox)
            futs = [r.arrive.future(20.0) for _ in range(3)]
            mb.put("probe", 1)            # must not queue behind waiters
            assert mb.take("probe", 10.0) == 1
            futs.append(r.arrive.future(20.0))
            assert [f.result(30.0) for f in futs] == [0, 0, 0, 0]
