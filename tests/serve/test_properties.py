"""Property-based tests for admission control (``-m serve``).

Three properties the serving layer promises:

* the per-object admitted depth never exceeds ``max_queue_depth``, under
  any interleaving of the admission API (including the mp backend's
  pre-admission half);
* every call a load run issues either completes or raises — admitted
  work cannot vanish, and with an unbounded queue nothing sheds;
* :class:`ServerOverloadedError` is retried only for methods marked
  ``__oopp_idempotent__`` (or implicitly idempotent reads) — an
  ambiguous failure of a writer must surface, not re-send.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends.base import Fabric
from repro.config import Config, RetryConfig, ServeConfig
from repro.errors import ServerOverloadedError
from repro.loadgen.driver import LoadSpec, run_load
from repro.loadgen.workload import KVService
from repro.runtime.futures import (
    RETRYABLE_ERRORS,
    completed_future,
    failed_future,
)
from repro.runtime.oid import ObjectRef, class_spec
from repro.runtime.server import ServePolicy

pytestmark = pytest.mark.serve

OID = 7

#: one step of the admission lifecycle, as the transports drive it:
#: "enter" is the dispatcher's normal path, "admit" the mp socket-side
#: pre-admission, "dispatch" converts a pre-admission into execution,
#: "cancel" rolls back a pre-admission whose submit failed, "exit"
#: releases a running call.
OPS = st.lists(
    st.sampled_from(["enter", "admit", "dispatch", "cancel", "exit"]),
    max_size=60)


class TestDepthBound:
    @given(ops=OPS, bound=st.integers(min_value=1, max_value=4))
    @settings(max_examples=200, deadline=None)
    def test_depth_never_exceeds_max_queue_depth(self, ops, bound):
        policy = ServePolicy(ServeConfig(workers=None, max_queue_depth=bound))
        instance = KVService()
        grants: list = []
        preadmitted = 0
        model_depth = 0
        for op in ops:
            if op == "enter" and not grants:
                # Top-level call on this thread.  (A thread already
                # holding a grant is a *nested* call and is exempt from
                # the bound by design — it must be able to finish — so
                # the single-threaded model only enters when bare;
                # cross-thread pressure is modeled by "admit".)
                try:
                    grants.append(policy.enter(OID, instance, "get"))
                    model_depth += 1
                except ServerOverloadedError:
                    assert model_depth == bound
            elif op == "admit":
                try:
                    policy.admit(OID, "get")
                    preadmitted += 1
                    model_depth += 1
                except ServerOverloadedError:
                    assert model_depth == bound
            elif op == "dispatch" and preadmitted:
                grants.append(
                    policy.enter(OID, instance, "get", preadmitted=True))
                preadmitted -= 1
            elif op == "cancel" and preadmitted:
                policy.cancel_admit(OID)
                preadmitted -= 1
                model_depth -= 1
            elif op == "exit" and grants:
                policy.exit(grants.pop())
                model_depth -= 1
            assert 0 <= model_depth <= bound
            assert policy.stats()["queued"] == model_depth
        assert policy.stats()["depth_peak"] <= bound

    @given(ops=OPS)
    @settings(max_examples=100, deadline=None)
    def test_unbounded_depth_never_sheds(self, ops):
        policy = ServePolicy(ServeConfig(workers=None, max_queue_depth=None))
        instance = KVService()
        grants: list = []
        for op in ops:
            if op in ("enter", "admit", "dispatch"):
                grants.append(policy.enter(OID, instance, "get"))
            elif op == "exit" and grants:
                policy.exit(grants.pop())
        assert policy.stats()["shed"] == 0


class TestAdmittedCompletes:
    @given(
        clients=st.integers(min_value=1, max_value=6),
        requests=st.integers(min_value=1, max_value=4),
        read_fraction=st.sampled_from([0.0, 0.5, 1.0]),
        workers=st.sampled_from([None, 1, 2, 8]),
        depth=st.sampled_from([None, 1, 2]),
        mode=st.sampled_from(["closed", "open"]),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_issued_call_completes_or_sheds(
            self, clients, requests, read_fraction, workers, depth, mode):
        result = run_load(LoadSpec(
            backend="sim", n_machines=2, objects=2,
            clients=clients, requests=requests,
            read_fraction=read_fraction, service_ms=0.5,
            mode=mode, offered_rps=1000.0,
            workers=workers, max_queue_depth=depth))
        assert result.errors == 0
        assert result.ok + result.shed == result.issued
        if depth is None:
            assert result.shed == 0
        # post-drain: nothing may remain admitted
        for machine_stats in result.serve_stats:
            assert machine_stats["queued"] == 0


class Target:
    """Module-level so ``class_spec`` round-trips for is_idempotent."""

    __oopp_idempotent__ = ("safe",)

    def safe(self):  # pragma: no cover - never executed remotely here
        return "ok"

    def unsafe(self):  # pragma: no cover
        return "ok"


class _SheddingFabric(Fabric):
    """Fails every call with ServerOverloadedError *fail_times* times."""

    def __init__(self, config: Config, fail_times: int) -> None:
        super().__init__(config)
        self.fail_times = fail_times
        self.attempts: dict[str, int] = {}

    def call_async(self, ref, method, args, kwargs):
        n = self.attempts.get(method, 0)
        self.attempts[method] = n + 1
        if n < self.fail_times:
            return failed_future(
                ServerOverloadedError(f"shed attempt {n}"), label=method)
        return completed_future("ok", label=method)

    def call_oneway(self, ref, method, args, kwargs):  # pragma: no cover
        self.call_async(ref, method, args, kwargs)


class TestOverloadRetry:
    def test_overload_is_classified_retryable(self):
        assert ServerOverloadedError in RETRYABLE_ERRORS

    @given(fail_times=st.integers(min_value=1, max_value=3),
           budget=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_retried_only_for_marked_methods(self, fail_times, budget):
        config = Config(backend="inline", n_machines=1,
                        retry=RetryConfig(retries=budget, backoff_s=1e-4))
        ref = ObjectRef(machine=0, oid=1, spec=class_spec(Target))

        fabric = _SheddingFabric(config, fail_times)
        if fail_times <= budget:
            assert fabric.call(ref, "safe", (), {}) == "ok"
            assert fabric.attempts["safe"] == fail_times + 1
        else:
            with pytest.raises(ServerOverloadedError):
                fabric.call(ref, "safe", (), {})
            assert fabric.attempts["safe"] == budget + 1

        fabric = _SheddingFabric(config, fail_times)
        with pytest.raises(ServerOverloadedError):
            fabric.call(ref, "unsafe", (), {})
        assert fabric.attempts["unsafe"] == 1  # never re-sent

    def test_implicit_reads_retried_without_marking(self):
        config = Config(backend="inline", n_machines=1,
                        retry=RetryConfig(retries=2, backoff_s=1e-4))
        ref = ObjectRef(machine=0, oid=1, spec=class_spec(Target))
        fabric = _SheddingFabric(config, fail_times=1)
        assert fabric.call(ref, "__len__", (), {}) == "ok"
        assert fabric.attempts["__len__"] == 2
