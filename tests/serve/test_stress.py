"""Stress tests for the concurrent object server (``-m serve``).

The sim backend makes concurrency *observable*: every call leaves a
server span whose ``[t_received, t_executed]`` interval is in simulated
seconds, so "these two readonly calls overlapped" is an exact statement
about timestamps, not a probabilistic one about wall-clock scheduling.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro as oopp
from repro.check.conformance import run_program
from repro.config import CheckConfig, Config, ServeConfig, TraceConfig
from repro.loadgen.workload import digest_program
from repro.runtime.context import current_hooks

pytestmark = pytest.mark.serve

SERVICE_S = 1e-3


class Store:
    """One readonly method, one writer, both costing SERVICE_S."""

    __oopp_idempotent__ = ("get",)

    def __init__(self) -> None:
        self._value = 0

    @oopp.readonly
    def get(self) -> int:
        current_hooks().charge_compute(SERVICE_S)
        return self._value

    def add(self, delta: int = 1) -> int:
        current_hooks().charge_compute(SERVICE_S)
        self._value += delta
        return self._value

    def self_total(self, peer) -> int:
        # nested remote call issued from inside a method body
        return self._value + peer.get()


def _sim_cluster(**serve_kwargs):
    return oopp.Cluster(config=Config(
        backend="sim", n_machines=1, trace=TraceConfig(),
        serve=ServeConfig(**serve_kwargs)))


def _server_spans(cluster, method):
    return [s for s in cluster.trace_spans()
            if s.kind == "server" and s.method == method and s.error is None]


def _overlaps(a, b) -> bool:
    # A server span's t_received marks *arrival* (queue wait included),
    # so execution intervals are reconstructed from the known body cost:
    # every Store method charges exactly SERVICE_S simulated seconds,
    # ending at t_executed.  The epsilon keeps back-to-back serialized
    # executions (end == next start) from reading as overlap.
    eps = 1e-9
    a0, a1 = a.t_executed - SERVICE_S + eps, a.t_executed - eps
    b0, b1 = b.t_executed - SERVICE_S + eps, b.t_executed - eps
    return a0 < b1 and b0 < a1


def _any_overlap(spans) -> bool:
    return any(_overlaps(a, b)
               for i, a in enumerate(spans) for b in spans[i + 1:])


class TestReadWriteLock:
    def test_readonly_reads_overlap(self):
        with _sim_cluster(workers=8) as c:
            s = c.on(0).new(Store)
            t0 = c.fabric.now
            futs = [s.get.future() for _ in range(8)]
            assert [f.result() for f in futs] == [0] * 8
            makespan = c.fabric.now - t0
            spans = _server_spans(c, "get")
        assert len(spans) == 8
        assert _any_overlap(spans)
        # 8 concurrent 1 ms reads on 8 workers: ~1 ms, not ~8 ms.
        assert makespan < 8 * SERVICE_S / 2

    def test_single_worker_serializes_reads(self):
        with _sim_cluster(workers=1) as c:
            s = c.on(0).new(Store)
            t0 = c.fabric.now
            futs = [s.get.future() for _ in range(8)]
            [f.result() for f in futs]
            makespan = c.fabric.now - t0
            spans = _server_spans(c, "get")
        assert not _any_overlap(spans)
        assert makespan >= 8 * SERVICE_S

    def test_writers_mutually_exclusive(self):
        with _sim_cluster(workers=8) as c:
            s = c.on(0).new(Store)
            futs = [s.add.future() for _ in range(8)]
            [f.result() for f in futs]
            assert s.get() == 8  # every increment landed
            spans = _server_spans(c, "add")
        assert len(spans) == 8
        assert not _any_overlap(spans)

    def test_write_excludes_reads(self):
        with _sim_cluster(workers=8) as c:
            s = c.on(0).new(Store)
            futs = [s.get.future() for _ in range(4)]
            futs.append(s.add.future())
            futs += [s.get.future() for _ in range(4)]
            for f in futs:
                f.result()
            # trace_spans() drains destructively: split one drain
            spans = c.trace_spans()
            reads = [s for s in spans
                     if s.kind == "server" and s.method == "get"]
            writes = [s for s in spans
                      if s.kind == "server" and s.method == "add"]
        assert len(writes) == 1
        assert not any(_overlaps(writes[0], r) for r in reads)

    def test_readonly_concurrency_flag_off_serializes(self):
        with _sim_cluster(workers=8, readonly_concurrency=False) as c:
            s = c.on(0).new(Store)
            futs = [s.get.future() for _ in range(6)]
            [f.result() for f in futs]
            spans = _server_spans(c, "get")
        assert not _any_overlap(spans)

    def test_nested_local_call_rides_parent_slot(self):
        # workers=1: the nested get() issued inside self_total's body
        # must ride the parent's slot and read lock instead of
        # deadlocking against them.
        with _sim_cluster(workers=1) as c:
            s = c.on(0).new(Store)
            s.add(5)
            assert s.self_total(s) == 10


class TestAdmission:
    def test_shed_accounting_matches_stats(self):
        with _sim_cluster(workers=1, max_queue_depth=2) as c:
            s = c.on(0).new(Store)
            futs = [s.get.future() for _ in range(10)]
            ok = shed = 0
            for f in futs:
                try:
                    f.result()
                    ok += 1
                except oopp.ServerOverloadedError as exc:
                    shed += 1
                    assert exc.oid is not None and exc.depth == 2
            stats = c.on(0).stats()["serve"]
        assert ok + shed == 10
        assert shed > 0
        assert stats["shed"] == shed
        assert stats["admitted"] == ok
        assert stats["queued"] == 0            # all drained
        assert stats["depth_peak"] <= 2

    def test_unbounded_queue_never_sheds(self):
        with _sim_cluster(workers=1, max_queue_depth=None) as c:
            s = c.on(0).new(Store)
            futs = [s.get.future() for _ in range(20)]
            assert [f.result() for f in futs] == [0] * 20
            assert c.on(0).stats()["serve"]["shed"] == 0

    def test_kernel_exempt_from_admission(self):
        # stats() is a kernel call: it must land even when the one
        # hosted object is saturated past its queue bound.
        with _sim_cluster(workers=1, max_queue_depth=1) as c:
            s = c.on(0).new(Store)
            futs = [s.get.future() for _ in range(6)]
            stats = c.on(0).stats()       # must not shed or block
            assert stats["serve"]["workers"] == 1
            for f in futs:
                try:
                    f.result()
                except oopp.ServerOverloadedError:
                    pass


class Peer:
    """Symmetric exchange: the stencil's ghost-deposit call shape."""

    def __init__(self) -> None:
        self.inbox: list = []

    def deposit(self, value) -> int:
        self.inbox.append(value)
        return len(self.inbox)

    def exchange(self, peer, value) -> int:
        # A writer that holds this object's lock while waiting on a
        # peer whose own writer is waiting on *us* — deadlock unless
        # the policy yields locks across the blocking wait.
        return peer.deposit.future(value).result(10.0)

    @oopp.readonly
    def seen(self) -> list:
        return list(self.inbox)


class CondPeer:
    """The collective-FFT shape: deposits land in an inbox guarded by
    the object's own condition variable, and the exchanging writer
    parks on that condition — a wait the futures layer cannot see."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self.inbox: list = []

    def deposit(self, value) -> int:
        with self._cond:
            self.inbox.append(value)
            self._cond.notify_all()
            return len(self.inbox)

    def exchange(self, peer, value, timeout=20.0) -> list:
        fut = peer.deposit.future(value)
        # oopp.yielding_wait() is the explicit escape hatch: without it
        # the peer's deposit queues behind this writer's held lock.
        with oopp.yielding_wait():
            with self._cond:
                if not self._cond.wait_for(lambda: self.inbox, timeout):
                    raise RuntimeError("no deposit arrived")
        fut.result(timeout)
        return list(self.inbox)


class TestLockYieldAcrossWaits:
    """Locks release while a body is parked on a remote future."""

    def test_symmetric_exchange_sim(self):
        config = Config(backend="sim", n_machines=2,
                        serve=ServeConfig(workers=1))
        with oopp.Cluster(config=config) as c:
            a, b = c.on(0).new(Peer), c.on(1).new(Peer)
            fa = a.exchange.future(b, "from-a")
            fb = b.exchange.future(a, "from-b")
            assert fa.result(10.0) == 1
            assert fb.result(10.0) == 1
            assert a.seen() == ["from-b"]
            assert b.seen() == ["from-a"]

    def test_symmetric_exchange_mp_single_worker(self):
        # workers=1 also proves the *slot* yields: each machine's only
        # worker thread is parked in exchange() when the deposit lands.
        config = Config(backend="mp", n_machines=2,
                        serve=ServeConfig(workers=1))
        with oopp.Cluster(config=config) as c:
            a, b = c.on(0).new(Peer), c.on(1).new(Peer)
            fa = a.exchange.future(b, "from-a")
            fb = b.exchange.future(a, "from-b")
            assert {fa.result(30.0), fb.result(30.0)} == {1}
            assert a.seen() == ["from-b"]
            assert b.seen() == ["from-a"]

    def test_condition_wait_yields_with_yielding_wait(self):
        # workers=1: the machine's only slot is parked in exchange()
        # when the peer's deposit arrives, so both the slot and the
        # write lock must have been yielded for this to complete.
        config = Config(backend="mp", n_machines=2,
                        serve=ServeConfig(workers=1))
        with oopp.Cluster(config=config) as c:
            a, b = c.on(0).new(CondPeer), c.on(1).new(CondPeer)
            fa = a.exchange.future(b, "from-a")
            fb = b.exchange.future(a, "from-b")
            assert fa.result(30.0) == ["from-b"]
            assert fb.result(30.0) == ["from-a"]

    def test_writer_lock_retaken_after_wait(self):
        # After the yielded wait the writer reacquires before resuming,
        # so post-wait mutations are exclusive again: hammer exchanges
        # and assert nothing is lost.
        config = Config(backend="sim", n_machines=2,
                        serve=ServeConfig(workers=4))
        with oopp.Cluster(config=config) as c:
            a, b = c.on(0).new(Peer), c.on(1).new(Peer)
            futs = [a.exchange.future(b, i) for i in range(6)]
            futs += [b.exchange.future(a, i) for i in range(6)]
            [f.result(10.0) for f in futs]
            assert sorted(a.seen()) == list(range(6))
            assert sorted(b.seen()) == list(range(6))


class TestConformance:
    def test_digest_identical_across_worker_counts(self):
        digests = {
            workers: run_program(digest_program, "sim", n_machines=2,
                                 serve=ServeConfig(workers=workers)).digest
            for workers in (1, 4, 8)
        }
        assert len(set(digests.values())) == 1, digests

    def test_race_detector_silent_under_pooled_reads(self):
        config = Config(backend="sim", n_machines=1,
                        serve=ServeConfig(workers=8),
                        check=CheckConfig(race_detect=True))
        with oopp.Cluster(config=config) as c:
            s = c.on(0).new(Store)
            s.add(1)                       # ordered before the reads
            futs = [s.get.future() for _ in range(8)]
            assert [f.result() for f in futs] == [1] * 8
            assert c.race_reports() == []


class TestMpPool:
    def test_mp_readonly_throughput_scales(self):
        sleep_s = 0.02

        def run(workers):
            config = Config(backend="mp", n_machines=1,
                            serve=ServeConfig(workers=workers))
            with oopp.Cluster(config=config) as c:
                s = c.on(0).new(SleepStore, sleep_s)
                s.get()                    # warm the connection
                t0 = time.monotonic()
                futs = [s.get.future() for _ in range(8)]
                [f.result() for f in futs]
                return time.monotonic() - t0

        serial = run(1)
        pooled = run(8)
        assert serial >= 8 * sleep_s
        assert pooled < serial / 2

    def test_mp_sheds_at_socket_and_recovers(self):
        config = Config(backend="mp", n_machines=1,
                        serve=ServeConfig(workers=1, max_queue_depth=1))
        with oopp.Cluster(config=config) as c:
            s = c.on(0).new(SleepStore, 0.05)
            futs = [s.get.future() for _ in range(6)]
            outcomes = []
            for f in futs:
                try:
                    f.result()
                    outcomes.append("ok")
                except oopp.ServerOverloadedError:
                    outcomes.append("shed")
            assert "shed" in outcomes
            assert outcomes.count("ok") >= 1
            # the shed was pre-execution: the server still works
            assert s.get() == 0


class TestKernelLane:
    def test_ping_lands_while_kernel_lane_blocked(self):
        # Kernel methods may block indefinitely (an untimed quiesce, a
        # destroy draining in-flight calls); two of them occupy both
        # kernel-lane threads.  ping and shutdown are served inline on
        # the connection reader thread, so liveness — the thing the
        # lane exists to guarantee — survives a clogged lane.
        config = Config(backend="mp", n_machines=1,
                        serve=ServeConfig(workers=2))
        with oopp.Cluster(config=config) as c:
            s = c.on(0).new(SleepStore, 1.0)
            slow = s.get.future()
            time.sleep(0.2)        # let the body start sleeping
            kref = c.fabric.kernel_ref(0)
            quiesces = [
                c.fabric.call_async(kref, "quiesce", (None, None), {})
                for _ in range(2)
            ]
            time.sleep(0.2)        # let both occupy the kernel lane
            t0 = time.monotonic()
            assert c.fabric.ping(0) == 0
            assert time.monotonic() - t0 < 0.5
            assert slow.result(10.0) == 0
            assert all(q.result(10.0) for q in quiesces)


class SleepStore:
    """Wall-clock service time: exercises the real mp thread pool."""

    __oopp_idempotent__ = ("get",)

    def __init__(self, sleep_s: float) -> None:
        self._sleep_s = sleep_s
        self._value = 0

    @oopp.readonly
    def get(self) -> int:
        time.sleep(self._sleep_s)
        return self._value
