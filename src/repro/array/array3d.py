"""The paper's Array class: a huge 3-D array over block storage.

An :class:`Array` is a *client* for computing with an ``N1 × N2 × N3``
array of doubles whose pages live on many (usually remote) devices.
Its methods mirror the paper's listing:

* :meth:`read` / :meth:`write` move a sub-domain between the devices
  and a local numpy array small enough for one machine's memory;
* :meth:`sum` (and the other reductions) execute page-local reductions
  *on the data servers* and combine only scalars at the client;
* the :class:`~repro.storage.pagemap.PageMap` chosen at construction
  "determines the degree of parallelism of these I/O operations".

Every device operation is issued through
:func:`~repro.storage.blockstore.call_on_device`: all page transfers
for a request are in flight simultaneously (the compiler-split loop of
§4), with per-device FIFO order preserved by the connection layer.

Array instances are picklable (storage proxies and page maps are
values), so applications can deploy *multiple Array clients in
parallel*, each hosted on its own machine — the paper's closing remark
of §5 and our experiment E9.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DomainError, StorageError
from ..runtime.futures import RemoteFuture
from ..storage.blockstore import BlockStorage, call_on_device
from ..storage.domain import Domain, full_domain
from ..storage.pagemap import PageMap


_REDUCE_COMBINE = {
    "sum": lambda parts: float(np.sum(parts)),
    "sumsq": lambda parts: float(np.sum(parts)),
    "min": lambda parts: float(np.min(parts)),
    "max": lambda parts: float(np.max(parts)),
}


class Array:
    """A distributed 3-D array of doubles (paper §5).

    Parameters
    ----------
    N1, N2, N3:
        Global array extents.
    n1, n2, n3:
        Page (block) extents; pages tile the array, the last page along
        an axis possibly padding past the edge.
    data:
        The :class:`~repro.storage.blockstore.BlockStorage` holding the
        pages (devices may be local objects or remote proxies).
    map:
        The :class:`~repro.storage.pagemap.PageMap` placing logical
        pages on devices.
    """

    def __init__(self, N1: int, N2: int, N3: int, n1: int, n2: int, n3: int,
                 data: BlockStorage, map: PageMap) -> None:
        if min(N1, N2, N3) <= 0:
            raise DomainError(f"array shape must be positive ({N1},{N2},{N3})")
        if min(n1, n2, n3) <= 0:
            raise DomainError(f"page shape must be positive ({n1},{n2},{n3})")
        self.N1, self.N2, self.N3 = N1, N2, N3
        self.n1, self.n2, self.n3 = n1, n2, n3
        if not isinstance(data, BlockStorage):
            data = BlockStorage(list(data))
        self.data = data
        grid = (-(-N1 // n1), -(-N2 // n2), -(-N3 // n3))
        if map.grid != grid:
            raise StorageError(
                f"page map grid {map.grid} does not match array page grid "
                f"{grid}")
        if map.n_devices != len(data):
            raise StorageError(
                f"page map expects {map.n_devices} devices, storage has "
                f"{len(data)}")
        if map.pages_per_device > self._device_capacity():
            raise StorageError(
                f"layout needs {map.pages_per_device} pages per device; "
                f"devices hold only {self._device_capacity()}")
        self.map = map

    def _device_capacity(self) -> int:
        futures = [call_on_device(d, "describe") for d in self.data]
        return min(int(f.result()["NumberOfPages"]) for f in futures)

    # -- geometry ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.N1, self.N2, self.N3)

    @property
    def page_shape(self) -> tuple[int, int, int]:
        return (self.n1, self.n2, self.n3)

    @property
    def domain(self) -> Domain:
        return full_domain(self.N1, self.N2, self.N3)

    @property
    def size(self) -> int:
        return self.N1 * self.N2 * self.N3

    def _check_domain(self, domain: Optional[Domain]) -> Domain:
        if domain is None:
            return self.domain
        if not self.domain.contains(domain):
            raise DomainError(f"{domain!r} outside array {self.shape}")
        return domain

    def _tiles(self, domain: Domain):
        """Per-page pieces of *domain* with their physical addresses.

        Yields ``(address, piece, local_lo, local_hi)``.
        """
        for (pi, pj, pk), piece in domain.tiles(self.page_shape):
            addr = self.map.physical(pi, pj, pk)
            origin = (pi * self.n1, pj * self.n2, pk * self.n3)
            local = piece.relative_to(origin)
            yield addr, piece, local.lo, local.hi

    # -- data movement ("move the data to the computation") ---------------------

    def read(self, domain: Optional[Domain] = None) -> np.ndarray:
        """Assemble the sub-array covering *domain* (default: all).

        All page-region transfers are issued before any is awaited; the
        page map decides how many devices serve them concurrently.
        """
        domain = self._check_domain(domain)
        out = np.empty(domain.shape, dtype=np.float64)
        pending: list[tuple[RemoteFuture, Domain]] = []
        for addr, piece, lo, hi in self._tiles(domain):
            future = call_on_device(self.data.device(addr.device_id),
                                    "read_region", addr.index, lo, hi)
            pending.append((future, piece))
        for future, piece in pending:
            local = piece.relative_to(domain.lo)
            out[local.slices] = future.result()
        return out

    def write(self, subarray: np.ndarray, domain: Optional[Domain] = None) -> None:
        """Scatter *subarray* over *domain* (default: the whole array)."""
        domain = self._check_domain(domain)
        subarray = np.asarray(subarray, dtype=np.float64)
        if subarray.shape != domain.shape:
            raise DomainError(
                f"subarray shape {subarray.shape} != domain shape "
                f"{domain.shape}")
        pending: list[RemoteFuture] = []
        for addr, piece, lo, hi in self._tiles(domain):
            local = piece.relative_to(domain.lo)
            values = np.ascontiguousarray(subarray[local.slices])
            pending.append(call_on_device(self.data.device(addr.device_id),
                                          "write_region", addr.index, lo, hi,
                                          values))
        for future in pending:
            future.result()

    def fill(self, value: float, domain: Optional[Domain] = None) -> None:
        """Set every element of *domain* to *value*, at the data."""
        domain = self._check_domain(domain)
        pending = [
            call_on_device(self.data.device(addr.device_id), "fill_region",
                           addr.index, lo, hi, float(value))
            for addr, _piece, lo, hi in self._tiles(domain)
        ]
        for future in pending:
            future.result()

    # -- reductions ("move the computation to the data") --------------------------

    def _reduce(self, op: str, domain: Optional[Domain]) -> float:
        domain = self._check_domain(domain)
        if domain.empty:
            raise DomainError(f"cannot reduce an empty domain with {op!r}")
        pending = [
            call_on_device(self.data.device(addr.device_id), "reduce_region",
                           addr.index, lo, hi, op)
            for addr, _piece, lo, hi in self._tiles(domain)
        ]
        parts = [f.result() for f in pending]
        return _REDUCE_COMBINE[op](parts)

    def sum(self, domain: Optional[Domain] = None) -> float:
        """Paper §5: partial sums computed by the data servers and
        combined by this client."""
        domain = self._check_domain(domain)
        if domain.empty:
            return 0.0
        return self._reduce("sum", domain)

    def min(self, domain: Optional[Domain] = None) -> float:
        return self._reduce("min", domain)

    def max(self, domain: Optional[Domain] = None) -> float:
        return self._reduce("max", domain)

    def norm2(self, domain: Optional[Domain] = None) -> float:
        """Euclidean norm via at-the-data sums of squares."""
        domain = self._check_domain(domain)
        if domain.empty:
            return 0.0
        return float(np.sqrt(self._reduce("sumsq", domain)))

    def mean(self, domain: Optional[Domain] = None) -> float:
        domain = self._check_domain(domain)
        return self.sum(domain) / domain.size

    # -- pickling (multiple Array clients in parallel, §5) -------------------------

    def __getstate__(self) -> dict:
        return {
            "shape": self.shape,
            "page_shape": self.page_shape,
            "devices": self.data.devices,
            "map": self.map,
        }

    def __setstate__(self, state: dict) -> None:
        self.N1, self.N2, self.N3 = state["shape"]
        self.n1, self.n2, self.n3 = state["page_shape"]
        self.data = BlockStorage(state["devices"])
        self.map = state["map"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Array {self.N1}x{self.N2}x{self.N3} pages "
                f"{self.n1}x{self.n2}x{self.n3} on {len(self.data)} devices>")
