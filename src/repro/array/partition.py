"""Domain decomposition helpers shared by the Array and the FFT."""

from __future__ import annotations

from ..errors import DomainError
from ..storage.domain import Domain, full_domain


def slab_bounds(extent: int, parts: int, index: int) -> tuple[int, int]:
    """Bounds of slab *index* when ``[0, extent)`` splits into *parts*.

    The first ``extent % parts`` slabs are one plane taller, matching
    :meth:`repro.storage.domain.Domain.split_axis`.
    """
    if parts < 1:
        raise DomainError(f"parts must be >= 1, got {parts}")
    if not (0 <= index < parts):
        raise DomainError(f"slab index {index} outside [0, {parts})")
    base, extra = divmod(extent, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


def slab_domains(N1: int, N2: int, N3: int, parts: int,
                 axis: int = 0) -> list[Domain]:
    """The whole array split into *parts* slabs along *axis*."""
    return full_domain(N1, N2, N3).split_axis(axis, parts)
