"""The distributed 3-D array of paper §5.

:class:`Array` implements computation with an array object "that
requires a large number of hardware devices for its storage": domain
reads/writes assembled from page-device region transfers, and
reductions executed *at the data servers* with only partial results
moving to the client.
"""

from .array3d import Array
from .partition import slab_bounds, slab_domains

__all__ = ["Array", "slab_bounds", "slab_domains"]
