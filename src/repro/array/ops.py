"""At-the-data operations between distributed arrays.

When two :class:`~repro.array.array3d.Array` objects share the same
geometry, page map *and* block storage, elementwise operations between
them never need to move array data at all: every page pair is
co-located on one device, so the work ships to the data as page-local
method executions and only scalars (if anything) come back — the
"move the computation to the data" side of paper §3 at full-array
scale.

To allocate siblings, give each array a disjoint page-index region of
the same devices via :func:`offset_map`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import StorageError
from ..storage.blockstore import call_on_device
from ..storage.pagemap import PageAddress, PageMap
from .array3d import Array


@dataclass(frozen=True)
class offset_map(PageMap):
    """A page map shifted by a fixed per-device index offset.

    Lets several arrays of identical geometry share one
    :class:`~repro.storage.blockstore.BlockStorage`: array *k* uses
    ``base`` shifted by ``k * base.pages_per_device`` slots.
    """

    base: PageMap = None  # type: ignore[assignment]
    offset: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base is None:
            raise StorageError("offset_map needs a base map")
        if self.offset < 0:
            raise StorageError(f"negative offset {self.offset}")
        if self.base.grid != self.grid or self.base.n_devices != self.n_devices:
            raise StorageError("offset_map must match its base's geometry")

    def physical(self, i1: int, i2: int, i3: int) -> PageAddress:
        addr = self.base.physical(i1, i2, i3)
        return PageAddress(addr.device_id, addr.index + self.offset)

    @property
    def pages_per_device(self) -> int:
        return self.base.pages_per_device + self.offset


def _paired_pages(x: Array, y: Array):
    """Iterate co-located page pairs of two sibling arrays.

    Yields ``(device, x_index, y_index)``; raises if the arrays do not
    share geometry and devices.
    """
    if x.shape != y.shape or x.page_shape != y.page_shape:
        raise StorageError(
            f"arrays differ in geometry: {x.shape}/{x.page_shape} vs "
            f"{y.shape}/{y.page_shape}")
    if x.data.devices != y.data.devices:
        raise StorageError("arrays must share the same block storage")
    g1, g2, g3 = x.map.grid
    for i1 in range(g1):
        for i2 in range(g2):
            for i3 in range(g3):
                xa = x.map.physical(i1, i2, i3)
                ya = y.map.physical(i1, i2, i3)
                if xa.device_id != ya.device_id:
                    raise StorageError(
                        f"page ({i1},{i2},{i3}) not co-located: device "
                        f"{xa.device_id} vs {ya.device_id}")
                yield x.data.device(xa.device_id), xa.index, ya.index


def scale(x: Array, alpha: float) -> None:
    """``x *= alpha`` with zero array-data movement."""
    pending = []
    g1, g2, g3 = x.map.grid
    for i1 in range(g1):
        for i2 in range(g2):
            for i3 in range(g3):
                addr = x.map.physical(i1, i2, i3)
                pending.append(call_on_device(
                    x.data.device(addr.device_id), "scale_page",
                    float(alpha), addr.index))
    for f in pending:
        f.result()


def axpy(alpha: float, x: Array, y: Array) -> None:
    """``y += alpha * x`` page-locally (sibling arrays only)."""
    pending = [
        call_on_device(dev, "axpy_page", float(alpha), xi, yi)
        for dev, xi, yi in _paired_pages(x, y)
    ]
    for f in pending:
        f.result()


def copy(src: Array, dst: Array) -> None:
    """``dst[:] = src`` page-locally (sibling arrays only)."""
    pending = [
        call_on_device(dev, "copy_page", si, di)
        for dev, si, di in _paired_pages(src, dst)
    ]
    for f in pending:
        f.result()


def apply(x: Array, fn, *extra_args) -> None:
    """Transform every element of *x* in place with a shipped function.

    *fn* must be module-level (see :mod:`repro.apps.funcspec`); it
    receives each page's ``(n1, n2, n3)`` array plus *extra_args* and
    returns the transformed array.  Execution happens entirely on the
    devices — no array data crosses the network.

    Pages padding past the array edge are transformed too; that is
    harmless for elementwise functions (the padding stays invisible)
    but means *fn* must tolerate the pad values (zeros unless written).
    """
    from ..apps.funcspec import func_spec

    spec = func_spec(fn)
    pending = []
    g1, g2, g3 = x.map.grid
    for i1 in range(g1):
        for i2 in range(g2):
            for i3 in range(g3):
                addr = x.map.physical(i1, i2, i3)
                pending.append(call_on_device(
                    x.data.device(addr.device_id), "apply_page", spec,
                    addr.index, *extra_args))
    for f in pending:
        f.result()


def dot(x: Array, y: Array) -> float:
    """Inner product; only one scalar per page crosses the network.

    Note: pages padding past the array edge contribute — exact only
    when the page shape divides the array shape (checked).
    """
    for N, n in zip(x.shape, x.page_shape):
        if N % n != 0:
            raise StorageError(
                "dot requires page shape dividing array shape "
                f"({x.shape} vs {x.page_shape}); pad pages hold garbage")
    futures = [
        call_on_device(dev, "dot_pages", xi, yi)
        for dev, xi, yi in _paired_pages(x, y)
    ]
    return float(np.sum([f.result() for f in futures]))
