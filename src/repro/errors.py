"""Exception hierarchy for the oopp framework.

All framework errors derive from :class:`OoppError` so applications can
catch framework-level failures without catching their own bugs.  Errors
raised *inside* a remote method body are not part of this hierarchy: they
are captured on the server, shipped back over the wire and re-raised at
the call site wrapped in :class:`RemoteExecutionError`, with the original
exception available as ``__cause__`` (when it could be pickled) and as a
formatted traceback string in :attr:`RemoteExecutionError.remote_traceback`.
"""

from __future__ import annotations


class OoppError(Exception):
    """Base class for every error raised by the oopp framework itself."""


class ConfigError(OoppError):
    """Invalid framework or backend configuration."""


# ---------------------------------------------------------------------------
# Transport layer
# ---------------------------------------------------------------------------


class TransportError(OoppError):
    """Base class for message/framing/channel failures."""


class ChannelClosedError(TransportError):
    """The underlying channel was closed while a message was in flight."""


class ChannelTimeoutError(TransportError):
    """``recv`` hit its deadline with no message — the peer is *slow*,
    not *dead*: the channel remains usable and the call may be retried.

    Deliberately not a :class:`ChannelClosedError` subclass, so retry
    policies can distinguish a stalled link from a closed one.
    """


class FramingError(TransportError):
    """A frame on the wire was malformed (bad magic, truncated, oversized)."""


class SerializationError(TransportError):
    """A payload could not be serialized or deserialized."""


class ProtocolError(TransportError):
    """A well-formed frame violated the request/response protocol."""


class PublicationError(TransportError):
    """A published-object descriptor could not be resolved.

    Raised when attaching a :class:`~repro.transport.pub.Publication`
    fails: the shared segment is gone (publisher unpublished or died),
    the descriptor is malformed, or the payload digest does not match
    the descriptor (corruption).  The call that carried the descriptor
    provably never executed, so — like every :class:`TransportError` —
    it is retryable for idempotent methods (see ``docs/FAILURES.md``).
    """


class HandshakeError(TransportError):
    """A tcp-backend daemon handshake failed.

    Raised at bootstrap when the daemon speaks a different protocol
    revision, its config digest does not match the driver's, or the
    welcome is malformed — the cluster never comes up, rather than
    failing obscurely on the first call (see ``docs/BACKENDS.md``).
    """


# ---------------------------------------------------------------------------
# Runtime layer
# ---------------------------------------------------------------------------


class RuntimeLayerError(OoppError):
    """Base class for object-runtime failures."""


class NoSuchMachineError(RuntimeLayerError):
    """A machine index/name does not exist in the cluster."""


class NoSuchObjectError(RuntimeLayerError):
    """A remote pointer refers to an object id unknown to its host machine.

    Raised both for garbage ids and for objects that have already been
    destroyed (the paper's destructor semantics: deleting a remote object
    terminates its process, so later calls must fail loudly).
    """


class ObjectDestroyedError(NoSuchObjectError):
    """The object was explicitly destroyed; the proxy is dangling."""


class ObjectMovedError(RuntimeLayerError):
    """The object migrated to another machine; the proxy is stale.

    Raised by the *source* machine's object table when a call lands on
    an oid whose instance was moved by ``cluster.migrate``.  The table
    rejects the call **before** any side effect — same contract as
    :class:`PublicationError`: the call provably never executed, so the
    caller may re-issue it (even a non-idempotent one) at the forwarded
    location.  The fabric does exactly that: one bounded forwarding hop
    per call, rebuilding the ref from ``new_machine``/``new_oid`` and
    rebinding the proxy so later calls go straight to the new home
    (see ``docs/MIGRATION.md``).

    Attributes
    ----------
    machine / oid:
        The stale location the call was addressed to.
    new_machine / new_oid:
        The object's current home, as recorded in the source table's
        forwarding entry.
    spec:
        The object's class spec, for rebuilding full refs.
    """

    def __init__(self, message: str = "", *, machine: int | None = None,
                 oid: int | None = None, new_machine: int | None = None,
                 new_oid: int | None = None,
                 spec: tuple | None = None) -> None:
        super().__init__(message)
        self.machine = machine
        self.oid = oid
        self.new_machine = new_machine
        self.new_oid = new_oid
        self.spec = spec

    def __reduce__(self):
        # Keep the forwarding fields across the pickle round trip error
        # responses take between processes (same idea as MachineDownError).
        return (self.__class__, (self.args[0] if self.args else "",),
                {"machine": self.machine, "oid": self.oid,
                 "new_machine": self.new_machine, "new_oid": self.new_oid,
                 "spec": self.spec})


class MachineDownError(RuntimeLayerError):
    """The hosting machine process died or is unreachable.

    Attributes
    ----------
    machine:
        Index of the unreachable machine, when known.
    oid:
        Object id of the call that was in flight when the machine died,
        when the failure interrupted a specific call.
    """

    def __init__(self, message: str = "", *, machine: int | None = None,
                 oid: int | None = None) -> None:
        super().__init__(message)
        self.machine = machine
        self.oid = oid

    def __reduce__(self):
        # Keep machine/oid across the pickle round trip error responses
        # take between processes (BaseException.__reduce__ only keeps args).
        return (self.__class__, (self.args[0] if self.args else "",),
                {"machine": self.machine, "oid": self.oid})


class ServerOverloadedError(RuntimeLayerError):
    """The hosting machine shed the call at admission.

    Raised (and shipped back to the caller) when an object's admission
    queue is already ``ServeConfig.max_queue_depth`` deep.  The call was
    rejected *before* the method body ran, so re-sending is always safe
    in principle — but the generic retry machinery still only retries it
    for idempotent methods, because by the time the retry lands the
    server may have partially executed a previous, genuinely ambiguous
    attempt of the same request id chain.

    Attributes
    ----------
    machine:
        Index of the machine that shed the call, when known.
    oid:
        Object id whose admission queue was full.
    method:
        Method name of the rejected call.
    depth:
        Queue depth observed at rejection time.
    """

    def __init__(self, message: str = "", *, machine: int | None = None,
                 oid: int | None = None, method: str | None = None,
                 depth: int | None = None) -> None:
        super().__init__(message)
        self.machine = machine
        self.oid = oid
        self.method = method
        self.depth = depth

    def __reduce__(self):
        # Same idea as MachineDownError: keep the diagnostic fields
        # across the pickle round trip error responses take.
        return (self.__class__, (self.args[0] if self.args else "",),
                {"machine": self.machine, "oid": self.oid,
                 "method": self.method, "depth": self.depth})


class RemoteExecutionError(RuntimeLayerError):
    """An exception escaped a remote method body.

    Attributes
    ----------
    remote_type_name:
        Fully qualified name of the original exception type.
    remote_traceback:
        The formatted traceback captured on the remote machine.
    """

    def __init__(self, message: str, *, remote_type_name: str = "",
                 remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_type_name = remote_type_name
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.remote_traceback:
            return f"{base}\n--- remote traceback ---\n{self.remote_traceback}"
        return base


class CallTimeoutError(RuntimeLayerError):
    """A remote call did not complete within its deadline."""


class GroupError(RuntimeLayerError):
    """An operation on an object group failed on one or more members."""

    def __init__(self, message: str, failures: dict[int, BaseException] | None = None):
        super().__init__(message)
        #: mapping from member index to the exception it raised
        self.failures: dict[int, BaseException] = failures or {}


# ---------------------------------------------------------------------------
# Persistence / naming
# ---------------------------------------------------------------------------


class PersistenceError(RuntimeLayerError):
    """Base class for persistent-process failures."""


class AddressSyntaxError(PersistenceError):
    """A symbolic object address (``oop://...``) could not be parsed."""


class UnknownAddressError(PersistenceError):
    """No persistent process is registered under the given address."""


class NotPersistentError(PersistenceError):
    """Operation requires a persistent object but got an ephemeral one."""


# ---------------------------------------------------------------------------
# Storage / array substrate
# ---------------------------------------------------------------------------


class StorageError(OoppError):
    """Base class for the Page/PageDevice/Array substrate."""


class PageIndexError(StorageError, IndexError):
    """Page address outside ``[0, NumberOfPages)``."""


class PageSizeError(StorageError, ValueError):
    """A page's byte size does not match the device's page size."""


class DomainError(StorageError, ValueError):
    """An invalid 3-D domain (empty, negative extent, out of bounds)."""


class LayoutError(StorageError, ValueError):
    """A PageMap produced an invalid or non-bijective physical address."""


# ---------------------------------------------------------------------------
# Simulation substrate
# ---------------------------------------------------------------------------


class SimulationError(OoppError):
    """Base class for discrete-event engine failures."""


class SimDeadlockError(SimulationError):
    """The event queue drained while simulation processes were still blocked."""


class SimProcessError(SimulationError):
    """A simulation process raised; re-raised in the driver with context."""
