"""The paper's storage substrate: pages, page devices, layouts, domains.

Class-for-class reproduction of the paper's examples:

* :class:`Page` — a block of unstructured bytes (§2);
* :class:`PageDevice` — a file-backed block store of fixed-size pages,
  meant to be *hosted on a remote machine* (§2);
* :class:`ArrayPage` / :class:`ArrayPageDevice` — structured 3-D blocks
  of doubles derived from the above (§3), including the at-the-data
  ``sum`` and the adoption constructor of §5;
* :class:`BlockStorage` — the collection of page devices a large array
  lives on (§5);
* :class:`PageMap` and concrete layouts — logical page coordinates →
  ``(device, index)`` physical addresses; "the PageMap describes the
  array data layout and is crucial in determining the I/O patterns of
  the computation" (§5);
* :class:`Domain` — rectangular 3-D index sub-domains (§5).
"""

from .domain import Domain
from .page import Page, ArrayPage
from .device import PageDevice, ArrayPageDevice
from .pagemap import (
    PageAddress,
    PageMap,
    RoundRobinPageMap,
    BlockedPageMap,
    PencilPageMap,
)
from .blockstore import BlockStorage, create_block_storage
from .cache import CachingPageDevice

__all__ = [
    "Domain",
    "Page",
    "ArrayPage",
    "PageDevice",
    "ArrayPageDevice",
    "PageAddress",
    "PageMap",
    "RoundRobinPageMap",
    "BlockedPageMap",
    "PencilPageMap",
    "BlockStorage",
    "create_block_storage",
    "CachingPageDevice",
]
