"""Rectangular 3-D index domains.

The paper's ``Domain(N11, N12, N21, N22, N31, N32)`` describes the
sub-box ``[N11, N12) × [N21, N22) × [N31, N32)`` of a 3-D array.  The
class is a small value-type algebra: intersection, shifting, splitting
into page-aligned tiles — everything the Array's read/write/sum methods
need to plan their I/O.

Bounds are half-open on every axis, matching Python slicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import DomainError


@dataclass(frozen=True)
class Domain:
    """``[lo1, hi1) × [lo2, hi2) × [lo3, hi3)``."""

    lo1: int
    hi1: int
    lo2: int
    hi2: int
    lo3: int
    hi3: int

    def __post_init__(self) -> None:
        for axis, (lo, hi) in enumerate(zip(self.lo, self.hi), start=1):
            if hi < lo:
                raise DomainError(
                    f"axis {axis}: hi {hi} < lo {lo} (use lo == hi for empty)")

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_shape(cls, shape: tuple[int, int, int],
                   origin: tuple[int, int, int] = (0, 0, 0)) -> "Domain":
        """The domain of the given shape anchored at *origin*."""
        if any(s < 0 for s in shape):
            raise DomainError(f"negative shape {shape}")
        o1, o2, o3 = origin
        s1, s2, s3 = shape
        return cls(o1, o1 + s1, o2, o2 + s2, o3, o3 + s3)

    @classmethod
    def from_bounds(cls, lo: tuple[int, int, int],
                    hi: tuple[int, int, int]) -> "Domain":
        return cls(lo[0], hi[0], lo[1], hi[1], lo[2], hi[2])

    # -- basic geometry ------------------------------------------------------

    @property
    def lo(self) -> tuple[int, int, int]:
        return (self.lo1, self.lo2, self.lo3)

    @property
    def hi(self) -> tuple[int, int, int]:
        return (self.hi1, self.hi2, self.hi3)

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.hi1 - self.lo1, self.hi2 - self.lo2, self.hi3 - self.lo3)

    @property
    def size(self) -> int:
        s1, s2, s3 = self.shape
        return s1 * s2 * s3

    @property
    def empty(self) -> bool:
        return self.size == 0

    def contains_point(self, i1: int, i2: int, i3: int) -> bool:
        return (self.lo1 <= i1 < self.hi1 and self.lo2 <= i2 < self.hi2
                and self.lo3 <= i3 < self.hi3)

    def contains(self, other: "Domain") -> bool:
        """True if *other* lies entirely inside this domain."""
        if other.empty:
            return True
        return all(self.lo[a] <= other.lo[a] and other.hi[a] <= self.hi[a]
                   for a in range(3))

    # -- algebra -----------------------------------------------------------------

    def intersect(self, other: "Domain") -> "Domain":
        """The (possibly empty) overlap of two domains."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        hi = tuple(max(l, h) for l, h in zip(lo, hi))  # clamp to empty
        return Domain.from_bounds(lo, hi)  # type: ignore[arg-type]

    def overlaps(self, other: "Domain") -> bool:
        return not self.intersect(other).empty

    def shift(self, d1: int, d2: int, d3: int) -> "Domain":
        return Domain(self.lo1 + d1, self.hi1 + d1, self.lo2 + d2,
                      self.hi2 + d2, self.lo3 + d3, self.hi3 + d3)

    def relative_to(self, origin: tuple[int, int, int]) -> "Domain":
        """This domain in coordinates local to *origin*."""
        return self.shift(-origin[0], -origin[1], -origin[2])

    # -- slicing glue ----------------------------------------------------------------

    @property
    def slices(self) -> tuple[slice, slice, slice]:
        """numpy basic-indexing slices selecting this domain."""
        return (slice(self.lo1, self.hi1), slice(self.lo2, self.hi2),
                slice(self.lo3, self.hi3))

    # -- page tiling -------------------------------------------------------------------

    def page_range(self, page_shape: tuple[int, int, int]
                   ) -> tuple[range, range, range]:
        """Ranges of page-grid coordinates overlapping this domain."""
        p1, p2, p3 = page_shape
        if min(p1, p2, p3) <= 0:
            raise DomainError(f"page shape must be positive, got {page_shape}")
        if self.empty:
            return (range(0), range(0), range(0))
        return (
            range(self.lo1 // p1, (self.hi1 - 1) // p1 + 1),
            range(self.lo2 // p2, (self.hi2 - 1) // p2 + 1),
            range(self.lo3 // p3, (self.hi3 - 1) // p3 + 1),
        )

    def tiles(self, page_shape: tuple[int, int, int]
              ) -> Iterator[tuple[tuple[int, int, int], "Domain"]]:
        """Decompose into per-page pieces.

        Yields ``((pi, pj, pk), piece)`` where *piece* is the part of
        this domain inside page ``(pi, pj, pk)`` of the given page
        shape, in global coordinates.  Pieces are non-empty, disjoint,
        and cover the domain exactly (property-tested).
        """
        p1, p2, p3 = page_shape
        r1, r2, r3 = self.page_range(page_shape)
        for pi in r1:
            for pj in r2:
                for pk in r3:
                    page_dom = Domain(pi * p1, (pi + 1) * p1,
                                      pj * p2, (pj + 1) * p2,
                                      pk * p3, (pk + 1) * p3)
                    piece = self.intersect(page_dom)
                    if not piece.empty:
                        yield (pi, pj, pk), piece

    def split_axis(self, axis: int, parts: int) -> list["Domain"]:
        """Split into *parts* near-equal slabs along *axis* (0, 1 or 2).

        The first ``extent % parts`` slabs get one extra plane; empty
        slabs are produced when parts exceed the extent, so the result
        always has exactly *parts* entries covering the domain.
        """
        if axis not in (0, 1, 2):
            raise DomainError(f"axis must be 0, 1 or 2, got {axis}")
        if parts < 1:
            raise DomainError(f"parts must be >= 1, got {parts}")
        lo, hi = self.lo[axis], self.hi[axis]
        extent = hi - lo
        base, extra = divmod(extent, parts)
        out: list[Domain] = []
        cursor = lo
        for i in range(parts):
            width = base + (1 if i < extra else 0)
            piece_lo = list(self.lo)
            piece_hi = list(self.hi)
            piece_lo[axis] = cursor
            piece_hi[axis] = cursor + width
            cursor += width
            out.append(Domain.from_bounds(tuple(piece_lo), tuple(piece_hi)))
        return out

    # -- iteration --------------------------------------------------------------------------

    def points(self) -> Iterator[tuple[int, int, int]]:
        """All index triples, axis-3 fastest (C order)."""
        for i1 in range(self.lo1, self.hi1):
            for i2 in range(self.lo2, self.hi2):
                for i3 in range(self.lo3, self.hi3):
                    yield (i1, i2, i3)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Domain([{self.lo1},{self.hi1})x[{self.lo2},{self.hi2})x"
                f"[{self.lo3},{self.hi3}))")


def full_domain(N1: int, N2: int, N3: int) -> Domain:
    """The whole index space of an ``N1 × N2 × N3`` array."""
    if min(N1, N2, N3) < 0:
        raise DomainError(f"negative array shape ({N1},{N2},{N3})")
    return Domain(0, N1, 0, N2, 0, N3)
