"""Block storage: the collection of page devices a large array spans.

The paper's ``typedef vector<ArrayPageDevice*> BlockStorage`` — a list
of (usually remote) devices.  :class:`BlockStorage` accepts any mix of
local :class:`~repro.storage.device.ArrayPageDevice` instances and
proxies to remote ones; everything downstream (the distributed
:class:`~repro.array.array3d.Array`) calls the same methods either way,
and :func:`call_on_device` hides the future-vs-direct distinction so
local unit tests and remote runs share code paths.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from ..errors import StorageError
from ..runtime.futures import RemoteFuture, completed_future, failed_future
from ..runtime.proxy import Proxy
from .device import ArrayPageDevice


class BlockStorage:
    """An indexed collection of array-page devices."""

    def __init__(self, devices: Sequence[Any]) -> None:
        if not devices:
            raise StorageError("block storage needs at least one device")
        self._devices = list(devices)

    def device(self, device_id: int) -> Any:
        if not (0 <= device_id < len(self._devices)):
            raise StorageError(
                f"device id {device_id} outside [0, {len(self._devices)})")
        return self._devices[device_id]

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._devices)

    def __getitem__(self, device_id: int) -> Any:
        return self.device(device_id)

    @property
    def devices(self) -> list[Any]:
        return list(self._devices)

    def io_stats(self) -> list[dict]:
        return [call_on_device(d, "io_stats").result() for d in self._devices]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BlockStorage of {len(self._devices)} devices>"


def call_on_device(device: Any, method: str, *args: Any,
                   **kwargs: Any) -> RemoteFuture:
    """Invoke *method* on a device, local or remote, returning a future.

    Remote proxies get a genuinely pipelined ``.future()``; local
    devices execute immediately and return a completed future, so the
    Array's fan-out code is identical in both worlds.
    """
    if isinstance(device, Proxy):
        return getattr(device, method).future(*args, **kwargs)
    label = f"local.{method}"
    try:
        value = getattr(device, method)(*args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - parity with remote path
        return failed_future(exc, label=label)
    return completed_future(value, label=label)


def create_block_storage(cluster, n_devices: int, *, NumberOfPages: int,
                         n1: int, n2: int, n3: int,
                         filename_prefix: str = "array_blocks",
                         machines: Optional[Sequence[int]] = None,
                         nominal_page_size: Optional[int] = None,
                         shared_disk: bool = False) -> BlockStorage:
    """Deploy ``n_devices`` remote ArrayPageDevices round-robin (paper §4).

    The paper's loop::

        for i: device[i] = new(machine i) ArrayPageDevice(...)

    Each device gets its own file and (by default) its own simulated
    disk; ``shared_disk=True`` forces devices *on the same machine* to
    contend for one spindle — the E8 ablation.
    """
    if machines is None:
        machines = [i % cluster.n_machines for i in range(n_devices)]
    if len(machines) != n_devices:
        raise StorageError("machines list must have one entry per device")
    kwargfn = None
    if shared_disk or nominal_page_size is not None:
        def kwargfn(i: int) -> dict:
            kw: dict = {}
            if nominal_page_size is not None:
                kw["nominal_page_size"] = nominal_page_size
            if shared_disk:
                kw["disk_key"] = f"shared-disk-m{machines[i]}"
            return kw
    group = cluster.new_group(
        ArrayPageDevice,
        len(machines),
        machines=machines,
        argfn=lambda i: (f"{filename_prefix}-{i}.dat", NumberOfPages,
                         n1, n2, n3),
        kwargfn=kwargfn,
    )
    return BlockStorage(group.proxies)
