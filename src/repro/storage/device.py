"""Page devices: file-backed block storage (paper §2–3, §5).

A :class:`PageDevice` owns one file of ``NumberOfPages × PageSize``
bytes and reads/writes whole pages at integer addresses.  Created on a
remote machine (``cluster.on(k).new(PageDevice, ...)``) it is
exactly the paper's storage process.

Simulated-disk integration: every physical transfer also reports its
size to the ambient cost hooks (:mod:`repro.runtime.context`).  Under
the real backends the hooks are no-ops and the file I/O provides the
real cost; under the ``sim`` backend the hooks queue the transfer on
the device's simulated disk — using the page's *nominal* size when the
device is constructed with ``nominal_page_size``, which is how a
laptop-sized file stands in for a petascale drive.

:class:`ArrayPageDevice` derives the structured-block device of §3,
adds the at-the-data reductions, the region I/O the distributed Array
needs, and the §5 adoption constructor
(``ArrayPageDevice(page_device)``).
"""

from __future__ import annotations

import os
import tempfile
import threading
from typing import Optional, Union

import numpy as np

from ..errors import PageIndexError, PageSizeError, StorageError
from ..runtime.context import current_hooks
from ..runtime.proxy import Proxy, remote_getattr
from ..util.ids import fresh_token
from .domain import Domain
from .page import DOUBLE, ArrayPage, Page


def default_storage_dir() -> str:
    """Directory for device files with relative names.

    Per-process (so each mp machine gets its own "disk"), overridable
    with ``$OOPP_STORAGE_DIR``.
    """
    root = os.environ.get("OOPP_STORAGE_DIR")
    if root is None:
        root = os.path.join(tempfile.gettempdir(), f"oopp-store-{os.getpid()}")
    os.makedirs(root, exist_ok=True)
    return root


class PageDevice:
    """A block storage device: ``NumberOfPages`` pages of ``PageSize`` bytes.

    Parameters mirror the paper's constructor.  Extra keyword-only
    parameters:

    nominal_page_size:
        If set, the simulator charges disks/network for pages of this
        many bytes instead of the real ``PageSize`` (the file still
        holds real pages).
    disk_key:
        Name of the simulated disk this device queues on.  Defaults to
        a fresh name per device — the paper's "each ArrayPageDevice
        should be assigned to a different hard disk".  Pass a shared
        key to model devices contending for one spindle (experiment E8
        ablation).
    """

    #: page reads are safe to re-send after an ambiguous transport
    #: failure (chaos layer: see Config.call_retries).  The ``reads``
    #: counter drifts on a duplicated read — diagnostics, not state.
    __oopp_idempotent__ = frozenset({
        "read", "read_into", "read_page", "read_region", "describe",
        "io_stats", "sum", "reduce_region", "dot_pages",
    })

    def __init__(self, filename: str, NumberOfPages: int, PageSize: int, *,
                 nominal_page_size: Optional[int] = None,
                 disk_key: Optional[str] = None) -> None:
        if NumberOfPages < 0:
            raise StorageError(f"NumberOfPages must be >= 0, got {NumberOfPages}")
        if PageSize <= 0:
            raise StorageError(f"PageSize must be > 0, got {PageSize}")
        if nominal_page_size is not None and nominal_page_size < PageSize:
            raise StorageError("nominal_page_size cannot be below PageSize")
        self.filename = filename
        self.NumberOfPages = NumberOfPages
        self.PageSize = PageSize
        self.nominal_page_size = nominal_page_size
        self.disk_key = disk_key or fresh_token("disk")
        self.reads = 0
        self.writes = 0
        self._io_lock = threading.Lock()
        self._open_file()

    # -- file management ---------------------------------------------------

    @property
    def path(self) -> str:
        if os.path.isabs(self.filename):
            return self.filename
        return os.path.join(default_storage_dir(), self.filename)

    def _open_file(self) -> None:
        path = self.path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # Open r+b, creating and sizing on first use; an existing file is
        # adopted as-is (persistent processes reopen their data).
        if not os.path.exists(path):
            with open(path, "wb") as f:
                f.truncate(self.NumberOfPages * self.PageSize)
        self._file = open(path, "r+b")
        size = os.path.getsize(path)
        wanted = self.NumberOfPages * self.PageSize
        if size < wanted:
            self._file.truncate(wanted)

    def _check_index(self, page_index: int) -> int:
        if not (0 <= page_index < self.NumberOfPages):
            raise PageIndexError(
                f"page index {page_index} outside [0, {self.NumberOfPages})")
        return page_index

    def _charged_size(self) -> int:
        return (self.nominal_page_size if self.nominal_page_size is not None
                else self.PageSize)

    # -- the paper's interface ------------------------------------------------

    def write(self, page: Page, PageIndex: int) -> None:
        """Store *page* at the given address."""
        self._check_index(PageIndex)
        data = page.to_bytes()
        if len(data) != self.PageSize:
            raise PageSizeError(
                f"device pages are {self.PageSize} bytes, got {len(data)}")
        current_hooks().charge_disk_write(self.disk_key, self._charged_size())
        with self._io_lock:
            self._file.seek(PageIndex * self.PageSize)
            self._file.write(data)
            self._file.flush()
            self.writes += 1

    def read(self, PageIndex: int) -> Page:
        """Fetch the page at the given address.

        The paper's signature fills a caller-provided ``Page*``; in
        Python the page is the return value (it crosses the network as
        the response payload either way).
        """
        self._check_index(PageIndex)
        current_hooks().charge_disk_read(self.disk_key, self._charged_size())
        with self._io_lock:
            self._file.seek(PageIndex * self.PageSize)
            data = self._file.read(self.PageSize)
            self.reads += 1
        page = Page(self.PageSize, data)
        if self.nominal_page_size is not None:
            page.with_nominal_size(self.nominal_page_size)
        return page

    def read_into(self, page: Page, PageIndex: int) -> None:
        """Closest form to the paper's out-parameter read."""
        fetched = self.read(PageIndex)
        page.update(fetched.to_bytes())

    # -- introspection ------------------------------------------------------------

    def describe(self) -> dict:
        """Device parameters, for adoption constructors and diagnostics."""
        return {
            "filename": self.filename,
            "NumberOfPages": self.NumberOfPages,
            "PageSize": self.PageSize,
            "nominal_page_size": self.nominal_page_size,
            "disk_key": self.disk_key,
        }

    def io_stats(self) -> dict:
        return {"reads": self.reads, "writes": self.writes}

    # -- lifecycle (destructor semantics, §2/§5) -------------------------------------

    def oopp_destructor(self) -> None:
        """Runs when the hosting process is destroyed; data file remains."""
        self.close()

    def close(self) -> None:
        f = getattr(self, "_file", None)
        if f is not None and not f.closed:
            f.close()

    def delete_backing_file(self) -> None:
        """Explicitly remove the data file (tests / true deletion)."""
        self.close()
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass

    # -- persistence -------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "filename": self.filename,
            "NumberOfPages": self.NumberOfPages,
            "PageSize": self.PageSize,
            "nominal_page_size": self.nominal_page_size,
            "disk_key": self.disk_key,
            "reads": self.reads,
            "writes": self.writes,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._io_lock = threading.Lock()
        self._open_file()  # re-acquire the OS resource on activation


DeviceLike = Union[PageDevice, Proxy]


def _device_description(device: DeviceLike) -> dict:
    """Describe a device whether it is local or behind a proxy."""
    if isinstance(device, Proxy):
        return device.describe()
    return device.describe()


class ArrayPageDevice(PageDevice):
    """A device storing ``n1 × n2 × n3`` blocks of doubles (paper §3).

    Construction forms::

        ArrayPageDevice("file", NumberOfPages, n1, n2, n3)   # as in §3
        ArrayPageDevice(existing_device, n1, n2, n3)         # adoption, §5

    The adoption form accepts a local :class:`PageDevice` or a proxy to
    one *on the same machine*: the new device opens the same backing
    file, reinterpreting its pages as structured blocks.  The paper uses
    this to derive a structured view of an existing persistent process,
    which may then co-exist with it or replace it.
    """

    def __init__(self, source, NumberOfPages: Optional[int] = None,
                 n1: int = 0, n2: int = 0, n3: int = 0, **kwargs) -> None:
        if isinstance(source, (PageDevice, Proxy)):
            # Adoption form: ArrayPageDevice(device, n1, n2, n3) — the
            # positional slots shift left by one relative to the string
            # form, exactly mirroring the paper's overloaded constructor.
            a1 = NumberOfPages if NumberOfPages is not None else 0
            a1, a2, a3 = int(a1), int(n1), int(n2)
            desc = _device_description(source)
            block_bytes = a1 * a2 * a3 * DOUBLE.itemsize
            if min(a1, a2, a3) <= 0:
                raise StorageError(
                    "adoption form is ArrayPageDevice(device, n1, n2, n3) "
                    f"with positive block shape, got ({a1},{a2},{a3})")
            if desc["PageSize"] != block_bytes:
                raise PageSizeError(
                    f"device pages are {desc['PageSize']} bytes; blocks "
                    f"({a1},{a2},{a3}) need {block_bytes}")
            kwargs.setdefault("nominal_page_size", desc["nominal_page_size"])
            kwargs.setdefault("disk_key", desc["disk_key"])
            source, NumberOfPages = desc["filename"], desc["NumberOfPages"]
            n1, n2, n3 = a1, a2, a3
        if min(n1, n2, n3) <= 0:
            raise StorageError(
                f"block shape must be positive, got ({n1},{n2},{n3})")
        page_size = n1 * n2 * n3 * DOUBLE.itemsize
        super().__init__(source, NumberOfPages, page_size, **kwargs)
        self.n1, self.n2, self.n3 = n1, n2, n3

    @classmethod
    def adopt(cls, device: DeviceLike, n1: int, n2: int, n3: int,
              **kwargs) -> "ArrayPageDevice":
        """Alias for the §5 adoption constructor with explicit naming."""
        return cls(device, n1, n2, n3, **kwargs)

    # -- structured reads/writes ----------------------------------------------

    @property
    def block_shape(self) -> tuple[int, int, int]:
        return (self.n1, self.n2, self.n3)

    def read_page(self, PageIndex: int) -> ArrayPage:
        raw = super().read(PageIndex)
        page = ArrayPage(self.n1, self.n2, self.n3)
        page.update(raw.to_bytes())
        if self.nominal_page_size is not None:
            page.with_nominal_size(self.nominal_page_size)
        return page

    def write_page(self, page: ArrayPage, PageIndex: int) -> None:
        if page.shape != self.block_shape:
            raise PageSizeError(
                f"device blocks are {self.block_shape}, got {page.shape}")
        super().write(page, PageIndex)

    # -- at-the-data computations (the point of §3) ------------------------------

    def sum(self, PageAddress: int) -> float:
        """Sum of all elements of one page, computed on this machine."""
        return self.read_page(PageAddress).sum()

    def reduce_region(self, PageIndex: int, lo: tuple[int, int, int],
                      hi: tuple[int, int, int], op: str = "sum") -> float:
        """Reduce a sub-box (page-local coordinates) of one page."""
        region = self._region_view(PageIndex, lo, hi)
        if op == "sum":
            return float(region.sum())
        if op == "min":
            return float(region.min())
        if op == "max":
            return float(region.max())
        if op == "sumsq":
            return float(np.square(region).sum())
        raise StorageError(f"unknown reduction {op!r}")

    def read_region(self, PageIndex: int, lo: tuple[int, int, int],
                    hi: tuple[int, int, int]) -> np.ndarray:
        """Copy out a sub-box of one page (page-local coordinates)."""
        return self._region_view(PageIndex, lo, hi).copy()

    def write_region(self, PageIndex: int, lo: tuple[int, int, int],
                     hi: tuple[int, int, int], values: np.ndarray) -> None:
        """Read-modify-write a sub-box of one page."""
        self._check_region(lo, hi)
        page = self.read_page(PageIndex)
        view = page.array[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]
        values = np.asarray(values, dtype=DOUBLE)
        if values.shape != view.shape:
            raise PageSizeError(
                f"region {lo}..{hi} has shape {view.shape}, got {values.shape}")
        view[...] = values
        self.write_page(page, PageIndex)

    def fill_region(self, PageIndex: int, lo: tuple[int, int, int],
                    hi: tuple[int, int, int], value: float) -> None:
        self._check_region(lo, hi)
        page = self.read_page(PageIndex)
        page.array[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]] = value
        self.write_page(page, PageIndex)

    # -- page-local linear algebra (close-to-the-data operations) ----------------

    def copy_page(self, src_index: int, dst_index: int) -> None:
        """Duplicate a page within this device (no network traffic)."""
        self.write_page(self.read_page(src_index), dst_index)

    def scale_page(self, alpha: float, PageIndex: int) -> None:
        """``page *= alpha`` computed on this machine."""
        page = self.read_page(PageIndex)
        page.scale(alpha)
        self.write_page(page, PageIndex)

    def axpy_page(self, alpha: float, src_index: int, dst_index: int) -> None:
        """``dst += alpha * src`` between two pages of this device."""
        src = self.read_page(src_index)
        dst = self.read_page(dst_index)
        dst.array[...] += alpha * src.array
        self.write_page(dst, dst_index)

    def dot_pages(self, a_index: int, b_index: int) -> float:
        """Inner product of two pages, only the scalar leaves the machine."""
        a = self.read_page(a_index)
        b = self.read_page(b_index)
        return float(np.vdot(a.array, b.array).real)

    def apply_page(self, func: tuple[str, str], PageIndex: int,
                   *extra_args) -> None:
        """Transform a page in place with a shipped function.

        *func* is a ``(module, qualname)`` spec of a module-level
        function taking the ``(n1, n2, n3)`` array (plus any
        *extra_args*) and returning the transformed array — arbitrary
        elementwise math executed at the data.
        """
        from ..apps.funcspec import resolve_func

        fn = resolve_func(func)
        page = self.read_page(PageIndex)
        result = np.asarray(fn(page.array.copy(), *extra_args), dtype=DOUBLE)
        if result.shape != page.array.shape:
            raise PageSizeError(
                f"page function changed shape {page.array.shape} -> "
                f"{result.shape}")
        page.array[...] = result
        self.write_page(page, PageIndex)

    def _check_region(self, lo, hi) -> None:
        block = Domain.from_shape(self.block_shape)
        region = Domain.from_bounds(tuple(lo), tuple(hi))
        if not block.contains(region):
            raise PageIndexError(
                f"region {lo}..{hi} outside block {self.block_shape}")

    def _region_view(self, PageIndex: int, lo, hi) -> np.ndarray:
        self._check_region(lo, hi)
        page = self.read_page(PageIndex)
        return page.array[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]]

    # -- persistence --------------------------------------------------------------

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["block_shape"] = (self.n1, self.n2, self.n3)
        return state

    def __setstate__(self, state: dict) -> None:
        shape = state.pop("block_shape")
        super().__setstate__(state)
        self.n1, self.n2, self.n3 = shape
