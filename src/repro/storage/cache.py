"""A write-through LRU page cache over any page device.

The paper's storage stack invites composition: a cache is just another
object standing in front of a device, local or remote.  Typical
placements:

* **client-side**, wrapping a *proxy* — repeated reads of hot pages
  skip the network entirely (measurable in simulated time);
* **server-side**, hosted on the device's machine wrapping the local
  device — repeated reads skip the disk.

Writes go through to the backing device immediately (write-through),
so the cache holds no dirty state and crash-consistency is the
device's own.  Pages are cached by value: mutating a returned page
never corrupts the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from ..errors import StorageError
from ..runtime.proxy import Proxy
from .page import Page


class CachingPageDevice:
    """LRU cache in front of a PageDevice (or a proxy to one)."""

    def __init__(self, device: Any, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise StorageError(
                f"cache needs capacity >= 1 page, got {capacity_pages}")
        self.device = device
        self.capacity_pages = capacity_pages
        desc = device.describe()
        self.NumberOfPages = desc["NumberOfPages"]
        self.PageSize = desc["PageSize"]
        self._lru: "OrderedDict[int, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- the PageDevice interface, cached ------------------------------------

    def read(self, PageIndex: int) -> Page:
        cached = self._lru.get(PageIndex)
        if cached is not None:
            self._lru.move_to_end(PageIndex)
            self.hits += 1
            return Page(self.PageSize, cached)
        self.misses += 1
        page = self.device.read(PageIndex)
        self._install(PageIndex, page.to_bytes())
        return page

    def write(self, page: Page, PageIndex: int) -> None:
        """Write-through: the device sees the write before we cache it."""
        self.device.write(page, PageIndex)
        self._install(PageIndex, page.to_bytes())

    def describe(self) -> dict:
        return self.device.describe()

    # -- cache management --------------------------------------------------------

    def _install(self, index: int, data: bytes) -> None:
        if index in self._lru:
            self._lru.move_to_end(index)
            self._lru[index] = data
            return
        self._lru[index] = data
        if len(self._lru) > self.capacity_pages:
            self._lru.popitem(last=False)
            self.evictions += 1

    def invalidate(self, PageIndex: Optional[int] = None) -> int:
        """Drop one page (or everything) — e.g. after out-of-band writes
        by another client sharing the device."""
        if PageIndex is None:
            n = len(self._lru)
            self._lru.clear()
            return n
        return 1 if self._lru.pop(PageIndex, None) is not None else 0

    @property
    def cached_pages(self) -> list[int]:
        """Resident page indices, LRU first."""
        return list(self._lru.keys())

    def cache_stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resident": len(self._lru),
            "hit_rate": self.hits / total if total else 0.0,
        }

    @property
    def is_remote(self) -> bool:
        """True when the backing device is a remote proxy."""
        return isinstance(self.device, Proxy)

    def __getattr__(self, name: str):
        """Pass anything we don't cache through to the backing device.

        Structured operations (``read_page``, ``read_region``,
        ``sum``, ...) reach the device directly and are **not** cached;
        only the raw page interface (:meth:`read`/:meth:`write`) is.
        Mixing cached raw writes with uncached structured writes on the
        same pages requires :meth:`invalidate`.
        """
        if name.startswith("_") or name == "device":
            raise AttributeError(name)
        device = self.__dict__.get("device")
        if device is None:  # mid-unpickle probing
            raise AttributeError(name)
        return getattr(device, name)

    # -- persistence: the cache is transient; only the wiring persists --------

    def __getstate__(self) -> dict:
        return {"device": self.device, "capacity_pages": self.capacity_pages}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["device"], state["capacity_pages"])
