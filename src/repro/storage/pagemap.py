"""Page maps: logical page coordinates → physical addresses (paper §5).

"The PageMap describes the array data layout and is crucial in
determining the I/O patterns of the computation."  A map takes the
page-grid coordinate ``(i1, i2, i3)`` of a logical page and answers
which :class:`~repro.storage.device.ArrayPageDevice` holds it
(``device_id``) and at which page address (``index``).

All maps here are bijections from the page grid onto
``devices × [0, pages_per_device)`` (property-tested), so every layout
stores the same array — they differ only in which devices sweat for a
given access pattern, which is exactly experiment E8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import NamedTuple

from ..errors import LayoutError


class PageAddress(NamedTuple):
    """The paper's ``struct { int device_id; int index; }``."""

    device_id: int
    index: int


@dataclass(frozen=True)
class PageMap:
    """Base class: the page grid plus the device count.

    Subclasses implement :meth:`physical`.  ``grid = (P1, P2, P3)`` is
    the number of pages along each axis; ``n_devices`` the size of the
    block storage.
    """

    grid: tuple[int, int, int]
    n_devices: int

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise LayoutError(f"need at least one device, got {self.n_devices}")
        if any(g < 1 for g in self.grid):
            raise LayoutError(f"page grid must be positive, got {self.grid}")

    # -- geometry -----------------------------------------------------------

    @property
    def n_pages(self) -> int:
        g1, g2, g3 = self.grid
        return g1 * g2 * g3

    @property
    def pages_per_device(self) -> int:
        """Capacity each device must provide (max over devices)."""
        return math.ceil(self.n_pages / self.n_devices)

    def linear(self, i1: int, i2: int, i3: int) -> int:
        """C-order linearization of a page coordinate."""
        g1, g2, g3 = self.grid
        if not (0 <= i1 < g1 and 0 <= i2 < g2 and 0 <= i3 < g3):
            raise LayoutError(f"page ({i1},{i2},{i3}) outside grid {self.grid}")
        return (i1 * g2 + i2) * g3 + i3

    # -- the mapping ----------------------------------------------------------

    def physical(self, i1: int, i2: int, i3: int) -> PageAddress:
        """The paper's ``PhysicalPageAddress``."""
        raise NotImplementedError

    def validate(self) -> None:
        """Exhaustively check bijectivity onto device slots.

        O(n_pages); meant for tests and for paranoid setup of long
        experiments, not per-access use.
        """
        seen: set[PageAddress] = set()
        g1, g2, g3 = self.grid
        cap = self.pages_per_device
        for i1 in range(g1):
            for i2 in range(g2):
                for i3 in range(g3):
                    addr = self.physical(i1, i2, i3)
                    if not (0 <= addr.device_id < self.n_devices):
                        raise LayoutError(
                            f"page ({i1},{i2},{i3}) mapped to bad device "
                            f"{addr.device_id}")
                    if not (0 <= addr.index < cap):
                        raise LayoutError(
                            f"page ({i1},{i2},{i3}) mapped to index "
                            f"{addr.index} >= capacity {cap}")
                    if addr in seen:
                        raise LayoutError(f"collision at {addr}")
                    seen.add(addr)


@dataclass(frozen=True)
class RoundRobinPageMap(PageMap):
    """Page *p* (C order) lives on device ``p % D`` at index ``p // D``.

    Consecutive pages land on distinct devices, so any contiguous sweep
    engages all spindles — the high-parallelism default.
    """

    def physical(self, i1: int, i2: int, i3: int) -> PageAddress:
        p = self.linear(i1, i2, i3)
        return PageAddress(p % self.n_devices, p // self.n_devices)


@dataclass(frozen=True)
class BlockedPageMap(PageMap):
    """Contiguous runs of ``ceil(P/D)`` pages per device.

    A contiguous sweep hammers one device at a time — the
    low-parallelism baseline of experiment E8.
    """

    def physical(self, i1: int, i2: int, i3: int) -> PageAddress:
        p = self.linear(i1, i2, i3)
        cap = self.pages_per_device
        return PageAddress(p // cap, p % cap)


@dataclass(frozen=True)
class PencilPageMap(PageMap):
    """All pages of one axis-0 pencil share a device.

    Pages with equal ``(i2, i3)`` — an *x-pencil* — are co-located, and
    pencils round-robin over devices.  Sequential access along axis 0
    stays on one spindle (cheap seeks per device, no parallelism);
    plane access across pencils engages ``min(D, pencils)`` spindles.
    The layout that makes the FFT's first pass local.
    """

    def physical(self, i1: int, i2: int, i3: int) -> PageAddress:
        g1, g2, g3 = self.grid
        self.linear(i1, i2, i3)  # bounds check
        pencil = i2 * g3 + i3
        device = pencil % self.n_devices
        slot = pencil // self.n_devices  # which of my pencils this is
        return PageAddress(device, slot * g1 + i1)

    @property
    def pages_per_device(self) -> int:
        g1, g2, g3 = self.grid
        pencils = g2 * g3
        return math.ceil(pencils / self.n_devices) * g1
