"""Pages: blocks of unstructured and structured data (paper §2–3).

A :class:`Page` stores ``n`` bytes; an :class:`ArrayPage` derives from
it to interpret those bytes as an ``n1 × n2 × n3`` block of doubles and
adds computations that exploit the structure (the paper's ``sum``).

Pages may declare a *nominal* size (``with_nominal_size``): the
simulated backend then charges the network/disks as if the page were
that large while the real buffer stays small — how the petascale-shaped
experiments run on a laptop.  Correctness paths ignore nominal sizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import PageSizeError

DOUBLE = np.dtype("float64")


class Page:
    """A fixed-size block of raw bytes."""

    def __init__(self, n: int, data: Optional[bytes] = None) -> None:
        if n < 0:
            raise PageSizeError(f"page size must be >= 0, got {n}")
        if data is None:
            self._data = bytearray(n)
        else:
            if len(data) != n:
                raise PageSizeError(
                    f"page declared {n} bytes but data has {len(data)}")
            self._data = bytearray(data)
        self._nominal: Optional[int] = None

    # -- size ------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return len(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # -- data access --------------------------------------------------------

    def to_bytes(self) -> bytes:
        return bytes(self._data)

    @property
    def raw(self) -> bytearray:
        """The mutable backing buffer (no copy)."""
        return self._data

    def update(self, data: bytes) -> None:
        """Replace the contents; the size is fixed at construction."""
        if len(data) != len(self._data):
            raise PageSizeError(
                f"page holds {len(self._data)} bytes, got {len(data)}")
        self._data[:] = data

    # -- nominal size (simulation) -----------------------------------------

    def with_nominal_size(self, nbytes: int) -> "Page":
        """Declare a pretend wire/disk size for simulated experiments."""
        if nbytes < 0:
            raise PageSizeError(f"nominal size must be >= 0, got {nbytes}")
        self._nominal = nbytes
        return self

    @property
    def __oopp_nominal_bytes__(self):  # noqa: D401 - serde protocol hook
        """Declared nominal size, or raises if undeclared (serde probes)."""
        if self._nominal is None:
            raise AttributeError("__oopp_nominal_bytes__")
        return self._nominal

    @property
    def nominal_nbytes(self) -> int:
        """Size the simulator charges for this page."""
        return self._nominal if self._nominal is not None else self.nbytes

    # -- value semantics ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Page) and other._data == self._data

    def __hash__(self) -> int:  # pages are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.nbytes} bytes>"

    # -- persistence / wire ------------------------------------------------

    def _extra_state(self) -> dict:
        return {"nominal": self._nominal}

    def __reduce_ex__(self, protocol):
        if protocol >= 5:
            # Lift the backing buffer out of band: the transport ships it
            # as its own wire section (and, above the shm threshold,
            # through a shared-memory segment with no socket copy at all).
            import pickle

            return (_rebuild_page,
                    (type(self), pickle.PickleBuffer(self._data),
                     self._extra_state()))
        return super().__reduce_ex__(protocol)

    def __getstate__(self) -> dict:
        return {"data": bytes(self._data), "nominal": self._nominal}

    def __setstate__(self, state: dict) -> None:
        self._data = bytearray(state["data"])
        self._nominal = state["nominal"]


class ArrayPage(Page):
    """A page holding an ``n1 × n2 × n3`` block of doubles (paper §3)."""

    def __init__(self, n1: int, n2: int, n3: int,
                 data: Optional[np.ndarray] = None) -> None:
        if min(n1, n2, n3) < 0:
            raise PageSizeError(f"negative block shape ({n1},{n2},{n3})")
        nbytes = n1 * n2 * n3 * DOUBLE.itemsize
        if data is None:
            super().__init__(nbytes)
        else:
            arr = np.ascontiguousarray(data, dtype=DOUBLE)
            if arr.size != n1 * n2 * n3:
                raise PageSizeError(
                    f"block ({n1},{n2},{n3}) needs {n1 * n2 * n3} doubles, "
                    f"got {arr.size}")
            super().__init__(nbytes, arr.tobytes())
        self.n1, self.n2, self.n3 = n1, n2, n3

    # -- structured view -----------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """A writable ``(n1, n2, n3)`` view of the page buffer (no copy)."""
        return np.frombuffer(self._data, dtype=DOUBLE).reshape(
            self.n1, self.n2, self.n3)

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.n1, self.n2, self.n3)

    # -- structured computations (the paper's motivating methods) -------------

    def sum(self) -> float:
        return float(self.array.sum())

    def min(self) -> float:
        return float(self.array.min())

    def max(self) -> float:
        return float(self.array.max())

    def mean(self) -> float:
        return float(self.array.mean())

    def fill(self, value: float) -> None:
        self.array[...] = value

    def scale(self, alpha: float) -> None:
        self.array[...] *= alpha

    # -- persistence ---------------------------------------------------------------

    def _extra_state(self) -> dict:
        extra = super()._extra_state()
        extra["shape"] = (self.n1, self.n2, self.n3)
        return extra

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["shape"] = (self.n1, self.n2, self.n3)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self.n1, self.n2, self.n3 = state["shape"]


def _rebuild_page(cls: type, buf, extra: dict) -> Page:
    """Reconstruct a page from its out-of-band buffer.

    The buffer arrives as whatever the deserializer hands over:

    * a shared-memory view (mp backend, big page) — **adopted** as the
      backing store, zero-copy, with a GC-tied reference on the segment;
    * any other memoryview (e.g. loopback through ``serde`` in one
      process) — copied, so the page never aliases sender memory;
    * a fresh ``bytearray`` (in-band pickle-5 load) — adopted directly;
    * ``bytes`` (socket inline sections, older stores) — copied.
    """
    page = cls.__new__(cls)
    if isinstance(buf, memoryview):
        from ..transport import shm

        mgr = shm.manager()
        if mgr.name_of(buf) is not None:
            mgr.adopt(page, buf)
            page._data = buf
        else:
            page._data = bytearray(buf)
    elif isinstance(buf, bytearray):
        page._data = buf
    else:
        page._data = bytearray(buf)
    page._nominal = extra["nominal"]
    if "shape" in extra:
        page.n1, page.n2, page.n3 = extra["shape"]
    return page
