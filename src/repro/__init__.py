"""oopp — Object-Oriented Parallel Programming for Python.

A reproduction of Givelberg's *Object-Oriented Parallel Programming*:
programming objects interpreted as processes.  A parallel program is a
collection of persistent processes that communicate by executing methods
on remote objects::

    import repro as oopp

    with oopp.Cluster(n_machines=4, backend="mp") as cluster:
        # new(machine 1) PageDevice("pagefile", 10, 1024)
        store = cluster.on(1).new(oopp.PageDevice, "pagefile", 10, 1024)
        page = oopp.Page(1024, bytes(1024))
        store.write(page, 17)            # remote method execution
        copy = store.read(17)            # result crosses the network

Public surface:

* **runtime** — :class:`Cluster`, :class:`Proxy` remote pointers,
  :class:`ObjectGroup` with pipelined ``invoke`` and ``barrier()``,
  :class:`RemoteFuture` + :func:`wait_all`/:func:`gather`,
  :func:`destroy`, remote primitive data (:class:`Block`,
  ``cluster.new_block``), persistence with ``oop://`` addresses;
* **storage substrate** — :class:`Page`, :class:`PageDevice`,
  :class:`ArrayPage`, :class:`ArrayPageDevice`, :class:`BlockStorage`,
  page-map layouts and 3-D :class:`Domain` algebra;
* **distributed array** — :class:`Array` over block storage, with
  at-the-data reductions and sibling operations (:mod:`repro.array.ops`);
* **FFT** — from-scratch serial kernels (:func:`serial_fft`) and the
  distributed 3-D transform (:class:`FFT` workers,
  :class:`DistributedFFT3D` facade);
* **backends** — ``inline`` (in-process virtual machines), ``mp`` (one
  OS process per machine, socket RPC), ``sim`` (discrete-event cluster
  simulator; see :mod:`repro.sim`), ``tcp`` (daemon-bootstrapped
  multi-host clusters, ``Cluster(hosts=[...])``; see
  ``docs/BACKENDS.md``); third-party backends plug in through
  :func:`register_backend`;
* **observability** — causal call tracing (:class:`Span`,
  ``Config(trace=...)``, ``cluster.trace_spans()`` /
  ``cluster.write_trace()``) and always-on transport counters
  (``cluster.metrics()``); see :mod:`repro.obs` and
  ``docs/OBSERVABILITY.md``;
* **correctness harness** — seeded schedule exploration over the sim
  engine, vector-clock race detection
  (``Config(check=CheckConfig(race_detect=True))``,
  ``cluster.race_reports()``, :func:`readonly`), and cross-backend
  conformance; see :mod:`repro.check` and ``docs/CHECKING.md``.

The paper's claims are reproduced as experiments E1–E10 under
:mod:`repro.bench` (``python -m repro.bench all``); results are
recorded in EXPERIMENTS.md.
"""

from .config import (
    CheckConfig,
    Config,
    DiskModel,
    HostSpec,
    MigrateConfig,
    NetworkModel,
    PubConfig,
    RetryConfig,
    ServeConfig,
    TopologyConfig,
    TraceConfig,
    WireConfig,
)
from . import errors
from .check.detector import readonly
from .obs import Span
from .errors import (
    OoppError,
    NoSuchObjectError,
    ObjectDestroyedError,
    ObjectMovedError,
    RemoteExecutionError,
    MachineDownError,
    CallTimeoutError,
    ChannelTimeoutError,
    ServerOverloadedError,
)
from .errors import HandshakeError, PublicationError
from .transport.faults import FaultPlan, FaultRule
from .transport.pub import Publication
from .runtime import (
    Cluster,
    current_cluster,
    Proxy,
    RemoteMethod,
    RemoteFuture,
    wait_all,
    gather,
    as_completed,
    yielding_wait,
    ObjectGroup,
    ObjectRef,
    Move,
    Rebalancer,
    Block,
    destroy,
    is_proxy,
    ref_of,
    remote_getattr,
    remote_setattr,
    ObjectAddress,
    parse_address,
    format_address,
    autoparallel,
    force,
    Deferred,
    CallBatch,
    DeferredError,
    Protocol,
    describe_protocol,
    protocol_of,
    validate_remote_class,
)
from .runtime.sync import Rendezvous, Latch, Mailbox
from .backends import available_backends, register_backend
from .storage import (
    Page,
    ArrayPage,
    PageDevice,
    ArrayPageDevice,
    BlockStorage,
    create_block_storage,
    CachingPageDevice,
    PageAddress,
    PageMap,
    RoundRobinPageMap,
    BlockedPageMap,
    PencilPageMap,
    Domain,
)
from .array import Array
from .fft import FFT, DistributedFFT3D
from .fft.serial import fft as serial_fft, ifft as serial_ifft
from .fft.serial import fftn as serial_fftn, ifftn as serial_ifftn
from .lint import LintFinding, lint_class, lint_paths, lint_source

__version__ = "1.0.0"

__all__ = [
    "Config",
    "DiskModel",
    "NetworkModel",
    "PubConfig",
    "WireConfig",
    "RetryConfig",
    "ServeConfig",
    "TraceConfig",
    "CheckConfig",
    "HostSpec",
    "TopologyConfig",
    "MigrateConfig",
    "register_backend",
    "available_backends",
    "readonly",
    "Span",
    "errors",
    "OoppError",
    "NoSuchObjectError",
    "ObjectDestroyedError",
    "ObjectMovedError",
    "RemoteExecutionError",
    "MachineDownError",
    "CallTimeoutError",
    "ChannelTimeoutError",
    "ServerOverloadedError",
    "FaultPlan",
    "FaultRule",
    "Publication",
    "PublicationError",
    "HandshakeError",
    "Cluster",
    "current_cluster",
    "Proxy",
    "RemoteMethod",
    "RemoteFuture",
    "wait_all",
    "gather",
    "as_completed",
    "yielding_wait",
    "ObjectGroup",
    "ObjectRef",
    "Move",
    "Rebalancer",
    "Block",
    "destroy",
    "is_proxy",
    "ref_of",
    "remote_getattr",
    "remote_setattr",
    "ObjectAddress",
    "parse_address",
    "format_address",
    "autoparallel",
    "force",
    "Deferred",
    "CallBatch",
    "DeferredError",
    "Protocol",
    "describe_protocol",
    "protocol_of",
    "validate_remote_class",
    "CachingPageDevice",
    "Rendezvous",
    "Latch",
    "Mailbox",
    "Page",
    "ArrayPage",
    "PageDevice",
    "ArrayPageDevice",
    "BlockStorage",
    "create_block_storage",
    "PageAddress",
    "PageMap",
    "RoundRobinPageMap",
    "BlockedPageMap",
    "PencilPageMap",
    "Domain",
    "Array",
    "FFT",
    "DistributedFFT3D",
    "serial_fft",
    "serial_ifft",
    "serial_fftn",
    "serial_ifftn",
    "LintFinding",
    "lint_class",
    "lint_paths",
    "lint_source",
    "__version__",
]
