"""Symbolic object addresses (the paper's DAP-style names).

Persistent processes are reachable by address::

    oop://<store>/<ClassName>/<name>

``store`` names the persistent store (a directory of the cluster's
storage root); ``ClassName`` is an unqualified class name kept for
readability and checked on lookup; ``name`` is the user-chosen identity
of the process.  The paper's example
``"http://data/set/PageDevice/34"`` maps to
``oop://data-set/PageDevice/34``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import AddressSyntaxError

SCHEME = "oop"
_SEGMENT = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclass(frozen=True)
class ObjectAddress:
    """A parsed symbolic address of a persistent process."""

    store: str
    class_name: str
    name: str

    def __str__(self) -> str:
        return format_address(self)


def _check_segment(kind: str, value: str) -> str:
    if not _SEGMENT.match(value or ""):
        raise AddressSyntaxError(
            f"bad {kind} segment {value!r}: want [A-Za-z0-9._-]+")
    return value


def format_address(addr: ObjectAddress) -> str:
    """Render an address back to ``oop://store/Class/name`` form."""
    _check_segment("store", addr.store)
    _check_segment("class", addr.class_name)
    _check_segment("name", addr.name)
    return f"{SCHEME}://{addr.store}/{addr.class_name}/{addr.name}"


def parse_address(text: str) -> ObjectAddress:
    """Parse ``oop://store/Class/name``; raises AddressSyntaxError."""
    if not isinstance(text, str):
        raise AddressSyntaxError(f"address must be a string, got {type(text).__name__}")
    prefix = f"{SCHEME}://"
    if not text.startswith(prefix):
        raise AddressSyntaxError(f"address must start with {prefix!r}: {text!r}")
    rest = text[len(prefix):]
    parts = rest.split("/")
    if len(parts) != 3:
        raise AddressSyntaxError(
            f"address needs exactly store/Class/name after the scheme: {text!r}")
    store, class_name, name = parts
    return ObjectAddress(
        store=_check_segment("store", store),
        class_name=_check_segment("class", class_name),
        name=_check_segment("name", name),
    )


def address_for(store: str, class_name: str, name: str) -> ObjectAddress:
    """Build and validate an address from its parts."""
    addr = ObjectAddress(store, class_name, name)
    format_address(addr)  # validates
    return addr
