"""Ambient runtime context.

Remote method bodies frequently need to know *where* they run (their
machine id) and need a fabric to issue further remote calls — e.g. the
paper's FFT processes invoke methods on their peers, and unpickling a
proxy inside an argument list must re-attach it to the local fabric.

The context is looked up in this order:

1. a thread-local override (set around request dispatch and around
   decode paths, so every thread that may unpickle proxies sees the
   fabric those proxies should bind to);
2. the process-wide default (set once per machine worker process, and by
   the driver's Cluster on construction).
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..backends.base import Fabric


class CostHooks:
    """Charging hooks for simulated resources.

    Real backends keep the no-op defaults (real time passes by itself);
    the simulated backend installs hooks that advance the simulated
    clock and queue on simulated devices.
    """

    def charge_compute(self, seconds: float) -> None:
        """Account *seconds* of CPU work on the current machine."""

    def charge_disk_read(self, device_key: str, nbytes: int) -> None:
        """Account a read of *nbytes* from the named disk."""

    def charge_disk_write(self, device_key: str, nbytes: int) -> None:
        """Account a write of *nbytes* to the named disk."""

    def charge_shm_attach(self, nbytes: int) -> None:
        """Account a first attach of an *nbytes* publication payload
        (mapping + decode copy) on the current machine."""


@dataclass
class RuntimeContext:
    """What a piece of code can see of the runtime around it."""

    fabric: "Fabric"
    machine_id: int  # DRIVER_MACHINE (-1) in the driver program
    hooks: CostHooks = field(default_factory=CostHooks)


_tls = threading.local()
_default: Optional[RuntimeContext] = None
_default_lock = threading.Lock()


def set_default_context(ctx: Optional[RuntimeContext]) -> None:
    """Install the process-wide fallback context."""
    global _default
    with _default_lock:
        _default = ctx


def current_context() -> Optional[RuntimeContext]:
    """The innermost active context, or None outside any runtime."""
    stack = getattr(_tls, "stack", None)
    if stack:
        return stack[-1]
    return _default


def current_fabric() -> Optional["Fabric"]:
    ctx = current_context()
    return ctx.fabric if ctx is not None else None


def current_machine_id() -> Optional[int]:
    ctx = current_context()
    return ctx.machine_id if ctx is not None else None


def current_hooks() -> CostHooks:
    ctx = current_context()
    return ctx.hooks if ctx is not None else _NOOP_HOOKS


_NOOP_HOOKS = CostHooks()


@contextlib.contextmanager
def context_scope(ctx: RuntimeContext) -> Iterator[RuntimeContext]:
    """Push *ctx* as the current thread's context for the duration."""
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    stack.append(ctx)
    try:
        yield ctx
    finally:
        popped = stack.pop()
        assert popped is ctx, "context stack corrupted"


@contextlib.contextmanager
def fabric_scope(fabric: "Fabric", machine_id: int = -1,
                 hooks: CostHooks | None = None) -> Iterator[RuntimeContext]:
    """Convenience wrapper building a context from a fabric."""
    ctx = RuntimeContext(fabric=fabric, machine_id=machine_id,
                         hooks=hooks or _NOOP_HOOKS)
    with context_scope(ctx) as c:
        yield c
