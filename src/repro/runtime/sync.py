"""Synchronization objects for worker-to-worker coordination.

These are ordinary classes meant to be *hosted* on a machine
(``cluster.on(k).new(Rendezvous, n)``) and called remotely by a
set of worker processes — the collective counterpart of the paper's
compiler-supported ``fft->barrier()``.

Every blocking wait here is wrapped in
:func:`~repro.runtime.futures.yielding_wait`: under the
:class:`~repro.runtime.server.ServePolicy` these methods are *writers*
holding the hosted object's exclusive lock, and the remote call that
would wake the waiter (``arrive`` / ``count_down`` / ``put``) is a
writer on the same object — without the yield it queues behind the
parked waiter's own lock forever.  Yielding also frees the waiter's
worker slot, so parked parties do not starve other objects on the
machine; a parked body still occupies an executor thread on the mp
backend, bounded by ``Config.serve.yield_headroom`` (see
``docs/SERVING.md``).  These blocking primitives are intended for the
``inline`` and ``mp`` backends; simulated experiments coordinate
phases from the driver instead.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Any, Hashable

from .futures import yielding_wait


class Rendezvous:
    """A reusable n-party barrier.

    Each party calls :meth:`arrive`; the call returns (with the barrier
    generation number) once all *n* parties of the current generation
    have arrived.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("rendezvous needs at least one party")
        self.n = n
        self._cond = threading.Condition()
        self._count = 0
        self._generation = 0

    def arrive(self, timeout: float | None = None) -> int:
        # yielding_wait wraps the whole critical section (not just the
        # wait loop): unyield reacquires the object's write lock, and
        # doing that while holding self._cond would deadlock against a
        # peer arrive that owns the write lock and wants self._cond.
        with yielding_wait():
            with self._cond:
                gen = self._generation
                self._count += 1
                if self._count == self.n:
                    self._count = 0
                    self._generation += 1
                    self._cond.notify_all()
                    return gen
                while self._generation == gen:
                    if not self._cond.wait(timeout):
                        raise TimeoutError(
                            f"rendezvous generation {gen} incomplete "
                            f"after {timeout}s")
                return gen

    def waiting(self) -> int:
        with self._cond:
            return self._count


class Latch:
    """A one-shot count-down latch."""

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError("latch count must be >= 0")
        self._cond = threading.Condition()
        self._count = count

    def count_down(self, n: int = 1) -> int:
        with self._cond:
            self._count = max(0, self._count - n)
            if self._count == 0:
                self._cond.notify_all()
            return self._count

    def wait(self, timeout: float | None = None) -> bool:
        with yielding_wait():  # see Rendezvous.arrive for the nesting
            with self._cond:
                while self._count > 0:
                    if not self._cond.wait(timeout):
                        return False
                return True

    def remaining(self) -> int:
        with self._cond:
            return self._count


class Mailbox:
    """Keyed blocking exchange: ``put(key, value)`` / ``take(key)``.

    The FFT transpose uses one mailbox per worker: peers deposit slabs
    under ``(phase, sender)`` keys and the owner takes them out as it
    assembles its pencil.  ``take`` blocks until the key is deposited
    and consumes it; ``peek_keys`` aids debugging.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._slots: dict[Hashable, list[Any]] = defaultdict(list)

    def put(self, key: Hashable, value: Any) -> None:
        with self._cond:
            self._slots[key].append(value)
            self._cond.notify_all()

    def take(self, key: Hashable, timeout: float | None = None) -> Any:
        with yielding_wait():  # see Rendezvous.arrive for the nesting
            with self._cond:
                while not self._slots.get(key):
                    if not self._cond.wait(timeout):
                        raise TimeoutError(
                            f"mailbox key {key!r} never arrived")
                values = self._slots[key]
                value = values.pop(0)
                if not values:
                    del self._slots[key]
                return value

    def peek_keys(self) -> list:
        with self._cond:
            return sorted(self._slots, key=repr)

    def __len__(self) -> int:
        with self._cond:
            return sum(len(v) for v in self._slots.values())
