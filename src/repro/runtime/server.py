"""The object server that runs on every machine.

Three pieces:

:class:`ObjectTable`
    oid → live instance, with per-object in-flight call counters (used
    by quiescence barriers and by destroy, which waits for running
    methods to drain before tearing the object down).

:class:`Kernel`
    The per-machine *kernel object*, installed at object id 0.  Object
    creation, destruction, statistics, quiescence and persistence
    snapshots are all ordinary methods on this object — the framework
    eats its own dog food: everything is remote method execution.

:class:`Dispatcher`
    Executes one :class:`~repro.transport.message.Request` against the
    table, with the runtime context set so that method bodies can issue
    their own remote calls and unpickled proxies bind to the machine's
    fabric.
"""

from __future__ import annotations

import threading
import traceback
from contextlib import ExitStack
from typing import TYPE_CHECKING, Any, Iterable, Optional

from ..errors import (
    NoSuchObjectError,
    ObjectDestroyedError,
    RuntimeLayerError,
)
from ..transport.message import KERNEL_OID, ErrorResponse, Request, Response
from ..util.ids import IdAllocator
from ..util.log import get_logger

log = get_logger("server")
from .context import CostHooks, RuntimeContext, context_scope
from .oid import ObjectRef, class_spec, resolve_class
from .proxy import GETATTR_METHOD, PING_METHOD, SETATTR_METHOD

if TYPE_CHECKING:  # pragma: no cover
    from ..backends.base import Fabric


#: name of the optional destructor hook on hosted instances.  Mirrors the
#: C++ destructor the paper relies on: it runs on the hosting machine when
#: the object is destroyed (explicitly or at machine shutdown).
DESTRUCTOR_HOOK = "oopp_destructor"


class ObjectTable:
    """Thread-safe registry of the objects hosted on one machine."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._objects: dict[int, Any] = {}
        self._pending: dict[int, int] = {}
        self._destroyed: set[int] = set()
        self._ids = IdAllocator(start=KERNEL_OID + 1)

    def add(self, instance: Any, oid: Optional[int] = None) -> int:
        with self._lock:
            if oid is None:
                oid = self._ids.next()
            elif oid in self._objects:
                raise RuntimeLayerError(f"object id {oid} already in use")
            self._objects[oid] = instance
            self._pending.setdefault(oid, 0)
            self._destroyed.discard(oid)
            return oid

    def get(self, oid: int) -> Any:
        with self._lock:
            try:
                return self._objects[oid]
            except KeyError:
                if oid in self._destroyed:
                    raise ObjectDestroyedError(
                        f"object {oid} was destroyed; the pointer dangles"
                    ) from None
                raise NoSuchObjectError(f"no object with id {oid} here") from None

    def remove(self, oid: int) -> Any:
        """Remove and return the instance; waits for in-flight calls."""
        with self._lock:
            if oid not in self._objects:
                if oid in self._destroyed:
                    raise ObjectDestroyedError(f"object {oid} already destroyed")
                raise NoSuchObjectError(f"no object with id {oid} here")
            while self._pending.get(oid, 0) > 0:
                self._drained.wait()
            instance = self._objects.pop(oid)
            self._pending.pop(oid, None)
            self._destroyed.add(oid)
            return instance

    def enter_call(self, oid: int) -> None:
        with self._lock:
            self._pending[oid] = self._pending.get(oid, 0) + 1

    def exit_call(self, oid: int) -> None:
        with self._lock:
            n = self._pending.get(oid, 1) - 1
            self._pending[oid] = n
            if n <= 0:
                self._drained.notify_all()

    def quiesce(self, oids: Optional[Iterable[int]] = None,
                timeout: Optional[float] = None) -> bool:
        """Block until the given objects (default: all) have no running calls.

        "All" excludes the kernel object: quiesce itself executes as a
        kernel call, so including it would be waiting for oneself.
        """
        wanted = set(oids) if oids is not None else None
        deadline = None
        if timeout is not None:
            import time
            deadline = time.monotonic() + timeout
        with self._lock:
            def busy() -> bool:
                items = self._pending.items()
                if wanted is None:
                    return any(n > 0 for oid, n in items if oid != KERNEL_OID)
                return any(n > 0 for oid, n in items if oid in wanted)

            while busy():
                remaining = None
                if deadline is not None:
                    import time
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._drained.wait(remaining)
        return True

    def oids(self) -> list[int]:
        with self._lock:
            return sorted(self._objects)

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)


class Kernel:
    """The machine's object id 0: creation, destruction, introspection."""

    def __init__(self, machine_id: int, table: ObjectTable) -> None:
        self.machine_id = machine_id
        self.table = table
        self.calls_served = 0
        self._stats_lock = threading.Lock()
        #: set by the hosting backend; kernel.shutdown() fires it.
        self.stop_event = threading.Event()
        #: the process's span recorder, set by the hosting backend when
        #: tracing is on.  take_spans/obs_metrics are kernel methods so
        #: the driver gathers observability data the same way it does
        #: everything else: by remote method execution.
        self.tracer = None
        #: the process's race checker (see :mod:`repro.check`), set by
        #: the hosting backend when ``Config(check=...)`` enables
        #: detection; take_race_reports is the gather path.
        self.checker = None

    # -- observability --------------------------------------------------------

    def take_spans(self) -> list[dict]:
        """Drain this process's recorded spans (as plain dicts)."""
        if self.tracer is None:
            return []
        return [span.to_dict() for span in self.tracer.drain()]

    def take_race_reports(self) -> list[dict]:
        """Drain this process's race reports (as plain dicts)."""
        if self.checker is None:
            return []
        return self.checker.take_reports()

    def obs_metrics(self) -> dict:
        """This machine's stats + process-wide transport counters."""
        from ..obs.metrics import snapshot_process

        out = self.stats()
        out.update(snapshot_process())
        return out

    # -- liveness ----------------------------------------------------------

    def ping(self) -> int:
        return self.machine_id

    # -- object lifecycle ---------------------------------------------------

    def create(self, spec: tuple[str, str], args: tuple, kwargs: dict) -> ObjectRef:
        """Instantiate ``spec(*args, **kwargs)`` here; returns its ref.

        The constructor runs with the machine's runtime context already
        set (the dispatcher arranged that), so constructors may
        themselves create further remote objects — the paper's derived
        devices do exactly this.
        """
        cls = resolve_class(spec)
        instance = cls(*args, **kwargs)
        oid = self.table.add(instance)
        return ObjectRef(machine=self.machine_id, oid=oid, spec=spec)

    def call_function(self, spec: tuple[str, str], args: tuple,
                      kwargs: dict) -> Any:
        """Execute a module-level function on this machine.

        The remote-procedure complement of remote objects: the driver's
        ``cluster.submit(fn, ..., machine=k)`` lands here.  The function
        runs with the machine's runtime context set (the dispatcher
        arranged that), so it may create objects and call proxies.
        """
        from ..apps.funcspec import resolve_func

        return resolve_func(spec)(*args, **kwargs)

    def adopt(self, instance: Any) -> ObjectRef:
        """Register an already-constructed local instance (backend use)."""
        oid = self.table.add(instance)
        return ObjectRef(machine=self.machine_id, oid=oid,
                         spec=class_spec(type(instance)))

    def destroy(self, oid: int) -> bool:
        """Run the destructor hook and drop the object.

        Waits for in-flight calls on the object to complete first, so a
        method body never loses its instance mid-execution.
        """
        if oid == KERNEL_OID:
            raise RuntimeLayerError("cannot destroy the kernel object")
        instance = self.table.remove(oid)
        if self.checker is not None:
            # the oid may be reused; stale history must not pair with it
            self.checker.forget(self.machine_id, oid)
        hook = getattr(instance, DESTRUCTOR_HOOK, None)
        if callable(hook):
            hook()
        return True

    def destroy_all(self) -> int:
        """Destroy every hosted object (machine shutdown path)."""
        count = 0
        for oid in self.table.oids():
            try:
                self.destroy(oid)
                count += 1
            except (NoSuchObjectError, ObjectDestroyedError):
                pass
        return count

    # -- synchronization -----------------------------------------------------

    def quiesce(self, oids: Optional[list[int]] = None,
                timeout: Optional[float] = None) -> bool:
        return self.table.quiesce(oids, timeout)

    # -- persistence support (see repro.runtime.persistence) ----------------

    def snapshot(self, oid: int) -> tuple[tuple[str, str], Any]:
        """Capture ``(class spec, state)`` of a hosted object."""
        instance = self.table.get(oid)
        getter = getattr(instance, "__getstate__", None)
        state = getter() if callable(getter) else dict(instance.__dict__)
        return class_spec(type(instance)), state

    def restore(self, spec: tuple[str, str], state: Any) -> ObjectRef:
        """Recreate an object from a snapshot without running __init__."""
        cls = resolve_class(spec)
        instance = cls.__new__(cls)
        setter = getattr(instance, "__setstate__", None)
        if callable(setter):
            setter(state)
        else:
            instance.__dict__.update(state)
        oid = self.table.add(instance)
        return ObjectRef(machine=self.machine_id, oid=oid, spec=spec)

    def evict(self, oid: int) -> tuple[tuple[str, str], Any]:
        """Snapshot then drop — deactivation of a persistent process."""
        snap = self.snapshot(oid)
        self.table.remove(oid)
        return snap

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        with self._stats_lock:
            served = self.calls_served
        return {
            "machine": self.machine_id,
            "objects": len(self.table),
            "calls_served": served,
        }

    def count_call(self) -> None:
        with self._stats_lock:
            self.calls_served += 1

    # -- shutdown ---------------------------------------------------------------

    def shutdown(self) -> bool:
        """Request machine shutdown; the hosting backend watches stop_event."""
        self.stop_event.set()
        return True


class Dispatcher:
    """Executes requests against one machine's object table."""

    def __init__(self, machine_id: int, table: ObjectTable, kernel: Kernel,
                 fabric: "Fabric", hooks=None, tracer=None,
                 checker=None) -> None:
        self.machine_id = machine_id
        self.table = table
        self.kernel = kernel
        self.tracer = tracer
        self.checker = checker
        self._context = RuntimeContext(fabric=fabric, machine_id=machine_id,
                                       hooks=hooks or CostHooks())

    @property
    def context(self) -> RuntimeContext:
        return self._context

    def execute(self, request: Request) -> Response | ErrorResponse | None:
        """Run one request; returns the reply (None for oneway).

        When tracing is on, the method body runs inside a *server span*
        scoped as the current span, so remote calls the body issues
        parent to it — that is what turns a pile of spans into the
        paper's object-to-object call tree.  When race detection is on,
        the body likewise runs inside a fresh vector-clock *task* that
        merged the request's clock — remote calls the body issues carry
        that task's clock, and the reply ships its final snapshot.
        """
        self.kernel.count_call()
        tracer = self.tracer
        checker = self.checker
        span = None
        ctask = None
        if tracer is not None and tracer.wants(request.method):
            # machine= pins the span to this machine even when the
            # tracer is the driver's (inline/sim host every machine
            # in-process and share one tracer).
            span = tracer.start_server(request, machine=self.machine_id)
        if checker is not None:
            ctask = checker.begin_execution(request)
        try:
            if span is not None or ctask is not None:
                with ExitStack() as scopes:
                    if span is not None:
                        scopes.enter_context(tracer.scope(span))
                    if ctask is not None:
                        scopes.enter_context(checker.scope(ctask))
                    value = self._run(request)
                if span is not None:
                    span.t_executed = tracer.now()
            else:
                value = self._run(request)
        except BaseException as exc:  # noqa: BLE001 - everything crosses the wire
            log.debug("machine %d: %s.%s raised %r (caller %d)",
                      self.machine_id, request.object_id, request.method,
                      exc, request.caller)
            if span is not None:
                span.t_executed = tracer.now()
                tracer.finish_server(span, error=type(exc).__name__)
            if request.oneway:
                return None
            picklable = _try_picklable(exc)
            return ErrorResponse(
                request_id=request.request_id,
                type_name=f"{type(exc).__module__}.{type(exc).__qualname__}",
                message=str(exc),
                remote_traceback=traceback.format_exc(),
                exception=picklable,
                clock=None if ctask is None else checker.end_execution(ctask),
            )
        if span is not None:
            tracer.finish_server(span)
        if request.oneway:
            return None
        return Response(
            request_id=request.request_id, value=value,
            clock=None if ctask is None else checker.end_execution(ctask))

    def _run(self, request: Request) -> Any:
        oid = request.object_id
        instance = self.kernel if oid == KERNEL_OID else self.table.get(oid)
        name = request.method
        if self.checker is not None:
            # recorded before the body runs: a method that raises may
            # already have mutated the object.
            self.checker.record(request, instance, machine=self.machine_id)
        self.table.enter_call(oid)
        try:
            with context_scope(self._context):
                if name == GETATTR_METHOD:
                    return getattr(instance, *request.args)
                if name == SETATTR_METHOD:
                    attr, value = request.args
                    setattr(instance, attr, value)
                    return None
                if name == PING_METHOD:
                    return self.machine_id
                method = getattr(instance, name, None)
                if method is None or not callable(method):
                    raise AttributeError(
                        f"{type(instance).__name__} object {oid} has no "
                        f"callable method {name!r}")
                return method(*request.args, **request.kwargs)
        finally:
            self.table.exit_call(oid)


def _try_picklable(exc: BaseException) -> BaseException | None:
    """Return *exc* if it survives a pickle round trip, else None."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:  # noqa: BLE001 - any failure means "not picklable"
        return None
    return exc
