"""The object server that runs on every machine.

Four pieces:

:class:`ObjectTable`
    oid → live instance, with per-object in-flight call counters (used
    by quiescence barriers and by destroy, which waits for running
    methods to drain before tearing the object down).
    :meth:`ObjectTable.checkout` resolves the instance and registers
    the call in one atomic step, so a concurrent destroy can never slip
    between the lookup and the counter increment.

:class:`ServePolicy`
    Per-machine concurrency policy (see ``docs/SERVING.md``):
    ``@oopp.readonly`` methods on one object run concurrently under a
    per-object read/write lock, writers stay exclusive, a bounded pool
    of worker slots caps concurrent executions, and a per-object
    admission bound sheds excess load with
    :class:`~repro.errors.ServerOverloadedError`.

:class:`Kernel`
    The per-machine *kernel object*, installed at object id 0.  Object
    creation, destruction, statistics, quiescence and persistence
    snapshots are all ordinary methods on this object — the framework
    eats its own dog food: everything is remote method execution.

:class:`Dispatcher`
    Executes one :class:`~repro.transport.message.Request` against the
    table, with the runtime context set so that method bodies can issue
    their own remote calls and unpickled proxies bind to the machine's
    fabric.
"""

from __future__ import annotations

import threading
import traceback
from contextlib import ExitStack
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from ..errors import (
    NoSuchObjectError,
    ObjectDestroyedError,
    ObjectMovedError,
    RuntimeLayerError,
    ServerOverloadedError,
)
from ..transport.message import KERNEL_OID, ErrorResponse, Request, Response
from ..util.ids import IdAllocator
from ..util.log import get_logger

log = get_logger("server")
from .context import CostHooks, RuntimeContext, context_scope
from .futures import set_wait_yielder
from .oid import ObjectRef, class_spec, resolve_class
from .proxy import GETATTR_METHOD, PING_METHOD, SETATTR_METHOD

if TYPE_CHECKING:  # pragma: no cover
    from ..backends.base import Fabric


#: name of the optional destructor hook on hosted instances.  Mirrors the
#: C++ destructor the paper relies on: it runs on the hosting machine when
#: the object is destroyed (explicitly or at machine shutdown).
DESTRUCTOR_HOOK = "oopp_destructor"


class ObjectTable:
    """Thread-safe registry of the objects hosted on one machine.

    *yield_wait*, when given, replaces condition-variable blocking in
    :meth:`remove`'s drain wait: the lock is dropped, ``yield_wait()``
    is called, and the wait loop re-checks.  The sim backend passes an
    ``engine.sleep`` poll here so a destroy issued from a simulation
    process blocks in *simulated* time instead of stalling the clock on
    an OS condition variable.
    """

    #: default per-object bound on calls parked during a migration
    #: freeze window (overridden from ``Config.migrate.forward_buffer``).
    DEFAULT_FORWARD_BUFFER = 64

    def __init__(self, *, yield_wait: Optional[Callable[[], None]] = None,
                 forward_buffer: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._objects: dict[int, Any] = {}
        self._pending: dict[int, int] = {}
        self._destroyed: set[int] = set()
        #: oids whose destroy is waiting for in-flight calls: lookups
        #: fail fast so the drain can actually finish.
        self._draining: set[int] = set()
        #: oids frozen by an in-progress migration: lookups park in a
        #: bounded buffer until the move commits or aborts.
        self._migrating: set[int] = set()
        #: oid → parked-lookup count during its freeze window.
        self._forward_waiters: dict[int, int] = {}
        #: oid → new ObjectRef after a committed migration; lookups
        #: raise ObjectMovedError carrying the forward (retryable hop).
        self._forwards: dict[int, "ObjectRef"] = {}
        self._forward_buffer = (self.DEFAULT_FORWARD_BUFFER
                                if forward_buffer is None else forward_buffer)
        #: set by the hosting Kernel so table-raised errors can name
        #: their machine (ObjectMovedError's stale side).
        self.machine_id: Optional[int] = None
        self._yield_wait = yield_wait
        self._ids = IdAllocator(start=KERNEL_OID + 1)

    def add(self, instance: Any, oid: Optional[int] = None) -> int:
        with self._lock:
            if oid is None:
                oid = self._ids.next()
            elif oid in self._objects:
                raise RuntimeLayerError(f"object id {oid} already in use")
            self._objects[oid] = instance
            self._pending.setdefault(oid, 0)
            self._destroyed.discard(oid)
            return oid

    def get(self, oid: int) -> Any:
        with self._lock:
            self._await_migration_locked(oid)
            return self._get_locked(oid)

    def _get_locked(self, oid: int) -> Any:
        try:
            return self._objects[oid]
        except KeyError:
            fwd = self._forwards.get(oid)
            if fwd is not None:
                raise ObjectMovedError(
                    f"object {oid} migrated to machine {fwd.machine} "
                    f"(oid {fwd.oid})", machine=self.machine_id, oid=oid,
                    new_machine=fwd.machine, new_oid=fwd.oid,
                    spec=fwd.spec) from None
            if oid in self._destroyed:
                raise ObjectDestroyedError(
                    f"object {oid} was destroyed; the pointer dangles"
                ) from None
            raise NoSuchObjectError(f"no object with id {oid} here") from None

    def _await_migration_locked(self, oid: int) -> None:
        """Park (lock held on entry/exit) while *oid* is frozen mid-move.

        This is the migration "forwarding buffer": calls that land
        during the freeze window wait here — without registering in
        ``_pending``, so the freeze's own drain is never starved — and
        re-resolve once the move commits (→ ObjectMovedError hop from
        the forwarding entry) or aborts (→ normal execution).  At most
        ``forward_buffer`` callers may park per object; beyond that the
        call is shed with a retryable ServerOverloadedError, exactly
        like an admission-queue overflow.
        """
        if oid not in self._migrating:
            return
        n = self._forward_waiters.get(oid, 0)
        if n >= self._forward_buffer:
            raise ServerOverloadedError(
                f"object {oid} is mid-migration and its forwarding "
                f"buffer is full ({n}/{self._forward_buffer})",
                machine=self.machine_id, oid=oid, depth=n)
        self._forward_waiters[oid] = n + 1
        try:
            if self._yield_wait is None:
                while oid in self._migrating:
                    self._drained.wait()
            else:
                # sim: park in simulated time (lock dropped per poll)
                while oid in self._migrating:
                    self._lock.release()
                    try:
                        self._yield_wait()
                    finally:
                        self._lock.acquire()
        finally:
            left = self._forward_waiters.get(oid, 1) - 1
            if left <= 0:
                self._forward_waiters.pop(oid, None)
            else:
                self._forward_waiters[oid] = left

    def checkout(self, oid: int) -> Any:
        """Resolve *oid* and register an in-flight call, atomically.

        The separate ``get(oid)`` + ``enter_call(oid)`` two-step is a
        race under concurrent dispatch: a destroy between the lookup and
        the increment sees pending == 0, drops the object, and the call
        then executes against a corpse.  Checkout holds the table lock
        across both, and refuses oids whose destroy is already draining.
        Pair every successful checkout with exactly one :meth:`checkin`.
        """
        with self._lock:
            # Order matters: a migration freeze parks the call (it will
            # re-resolve), a destroy drain fails it fast (it never will).
            self._await_migration_locked(oid)
            if oid in self._draining:
                raise ObjectDestroyedError(
                    f"object {oid} is being destroyed")
            instance = self._get_locked(oid)
            self._pending[oid] = self._pending.get(oid, 0) + 1
            return instance

    def checkin(self, oid: int) -> None:
        """Release a call registered by :meth:`checkout`.

        Unlike the historical ``exit_call``, a checkin racing a
        completed remove never resurrects the oid's pending entry.
        """
        with self._lock:
            n = self._pending.get(oid)
            if n is None:  # removed while we ran; nothing to release
                return
            self._pending[oid] = n - 1
            if n - 1 <= 0:
                self._drained.notify_all()

    def remove(self, oid: int) -> Any:
        """Remove and return the instance; waits for in-flight calls.

        While the wait drains, the oid is marked *draining*: new
        checkouts fail with :class:`ObjectDestroyedError` instead of
        racing the teardown (without this, a steady stream of callers
        could starve the destroy forever).

        A destroy that lands during a migration freeze parks with the
        other buffered calls: once the move commits it raises
        :class:`ObjectMovedError` (the fabric re-issues the destroy at
        the new home); if the move aborts it proceeds normally.
        """
        with self._lock:
            self._await_migration_locked(oid)
            if oid not in self._objects or oid in self._draining:
                fwd = self._forwards.get(oid)
                if fwd is not None and oid not in self._draining:
                    raise ObjectMovedError(
                        f"object {oid} migrated to machine {fwd.machine} "
                        f"(oid {fwd.oid})", machine=self.machine_id,
                        oid=oid, new_machine=fwd.machine, new_oid=fwd.oid,
                        spec=fwd.spec)
                if oid in self._destroyed or oid in self._draining:
                    raise ObjectDestroyedError(f"object {oid} already destroyed")
                raise NoSuchObjectError(f"no object with id {oid} here")
            self._draining.add(oid)
            try:
                if self._yield_wait is None:
                    while self._pending.get(oid, 0) > 0:
                        self._drained.wait()
                else:
                    # sim: block in simulated time (lock dropped per poll)
                    while self._pending.get(oid, 0) > 0:
                        self._lock.release()
                        try:
                            self._yield_wait()
                        finally:
                            self._lock.acquire()
                instance = self._objects.pop(oid)
                self._pending.pop(oid, None)
                self._destroyed.add(oid)
            finally:
                self._draining.discard(oid)
            return instance

    # -- migration (see docs/MIGRATION.md) ----------------------------------

    def begin_migrate(self, oid: int) -> Any:
        """Freeze *oid* for migration: drain in-flight calls, detach it.

        Returns the live instance (for snapshotting / abort restore).
        During the drain the oid sits in the same ``_draining`` set
        destroy uses, so a concurrent destroy cannot slip between the
        drain and the detach and execute against a corpse — it parks in
        :meth:`_await_migration_locked` and re-resolves after the move.
        From here until :meth:`finish_migrate` or :meth:`abort_migrate`
        the oid is *migrating*: new lookups park in the bounded
        forwarding buffer instead of failing.
        """
        with self._lock:
            if oid in self._draining or oid in self._migrating:
                raise RuntimeLayerError(
                    f"object {oid} is already draining or migrating")
            instance = self._get_locked(oid)
            self._migrating.add(oid)
            self._draining.add(oid)
            try:
                if self._yield_wait is None:
                    while self._pending.get(oid, 0) > 0:
                        self._drained.wait()
                else:
                    # sim: drain in simulated time (lock dropped per poll)
                    while self._pending.get(oid, 0) > 0:
                        self._lock.release()
                        try:
                            self._yield_wait()
                        finally:
                            self._lock.acquire()
                self._objects.pop(oid)
                self._pending.pop(oid, None)
            except BaseException:
                self._migrating.discard(oid)
                self._drained.notify_all()
                raise
            finally:
                self._draining.discard(oid)
            return instance

    def finish_migrate(self, oid: int, new_ref: "ObjectRef") -> None:
        """Commit a migration: install the forwarding entry, wake parkers."""
        with self._lock:
            if oid not in self._migrating:
                raise RuntimeLayerError(
                    f"object {oid} has no migration in progress")
            self._forwards[oid] = new_ref
            self._migrating.discard(oid)
            self._drained.notify_all()

    def abort_migrate(self, oid: int, instance: Any) -> None:
        """Undo a :meth:`begin_migrate`: reinstall the instance in place."""
        with self._lock:
            if oid not in self._migrating:
                raise RuntimeLayerError(
                    f"object {oid} has no migration in progress")
            self._objects[oid] = instance
            self._pending.setdefault(oid, 0)
            self._migrating.discard(oid)
            self._drained.notify_all()

    def forward_of(self, oid: int) -> Optional["ObjectRef"]:
        """The forwarding entry left by a committed migration, if any."""
        with self._lock:
            return self._forwards.get(oid)

    def enter_call(self, oid: int) -> None:
        with self._lock:
            self._pending[oid] = self._pending.get(oid, 0) + 1

    def exit_call(self, oid: int) -> None:
        with self._lock:
            n = self._pending.get(oid)
            if n is None:  # see checkin: never resurrect removed entries
                return
            self._pending[oid] = n - 1
            if n - 1 <= 0:
                self._drained.notify_all()

    def quiesce(self, oids: Optional[Iterable[int]] = None,
                timeout: Optional[float] = None) -> bool:
        """Block until the given objects (default: all) have no running calls.

        "All" excludes the kernel object: quiesce itself executes as a
        kernel call, so including it would be waiting for oneself.
        """
        wanted = set(oids) if oids is not None else None
        deadline = None
        if timeout is not None:
            import time
            deadline = time.monotonic() + timeout
        with self._lock:
            def busy() -> bool:
                items = self._pending.items()
                if wanted is None:
                    return any(n > 0 for oid, n in items if oid != KERNEL_OID)
                return any(n > 0 for oid, n in items if oid in wanted)

            while busy():
                remaining = None
                if deadline is not None:
                    import time
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._drained.wait(remaining)
        return True

    def oids(self) -> list[int]:
        with self._lock:
            return sorted(self._objects)

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)


class _ObjectServeState:
    """Lock + admission bookkeeping for one hosted object."""

    __slots__ = ("depth", "readers", "writer", "writer_depth",
                 "waiting_writers")

    def __init__(self) -> None:
        #: admitted calls: queued (waiting for a slot or the lock) plus
        #: executing.  This is the quantity max_queue_depth bounds.
        self.depth = 0
        #: thread ident → read-lock hold count (reentrant).
        self.readers: dict[int, int] = {}
        #: thread ident holding the write lock, or None.
        self.writer: Optional[int] = None
        self.writer_depth = 0
        #: writers blocked on the lock; readers defer to them so a
        #: steady read stream cannot starve a writer.
        self.waiting_writers = 0


class _Grant:
    """Token returned by :meth:`ServePolicy.enter`; closes the call."""

    __slots__ = ("oid", "tid", "mode", "slot", "prev_yielder")

    def __init__(self, oid: int, tid: int, mode: str, slot: bool) -> None:
        self.oid = oid
        self.tid = tid
        self.mode = mode  # "r" | "w"
        self.slot = slot  # True when this call took a worker slot
        #: the thread's previous wait-yielder, restored at exit
        self.prev_yielder = None


class ServePolicy:
    """One machine's concurrent-execution policy (``Config.serve``).

    Three mechanisms, applied in admission → slot → lock order:

    * **Admission**: at most ``max_queue_depth`` calls may be admitted
      (queued + executing) per object; beyond that the call is shed
      with :class:`~repro.errors.ServerOverloadedError` before any
      side effect.  The kernel object is exempt — shutdown, quiesce
      and metric gathers must land even on a saturated machine.
    * **Worker slots**: at most ``workers`` threads execute method
      bodies at once (``None`` = unbounded).  Slots are reentrant per
      thread: a nested local call made *by* a method body rides its
      parent's slot instead of deadlocking against it.
    * **Per-object read/write lock**: ``@oopp.readonly`` methods (and
      the implicit reads — getattr, ``__len__``, ...) share the
      object; every other method is a writer and runs alone.  Both
      sides are reentrant on the owning thread, and a reader may
      upgrade to writer while it is the sole reader.

    Locks are **yielded across blocking waits** (monitor semantics): a
    method body that parks on a remote future releases its object locks
    and worker slot for the duration of the wait and reacquires them
    before resuming (:meth:`yield_for_wait` / :meth:`unyield`) — the
    paper's symmetric call patterns (ghost exchange, FFT deposit rounds)
    hold an object while calling peers that call back in, and holding
    the lock across the wait would deadlock them.

    Blocking is backend-aware: on thread-per-call backends waiters park
    on a condition variable; on the sim backend (*engine* given) each
    waiter parks on an engine :class:`~repro.sim.engine.Trigger` that
    every release fires, so waiting blocks in *simulated* time — the
    clock keeps advancing for everyone else, and a wait under a
    zero-cost holder costs zero simulated seconds.
    """

    #: simulated seconds per poll for the coarse-grained sim waits that
    #: still poll (ObjectTable's destroy drain).  Small next to the
    #: network model's 25 us latency.
    SIM_POLL_S = 5e-6

    def __init__(self, serve, *, machine: Optional[int] = None,
                 engine=None) -> None:
        from ..check.detector import is_read  # late: check imports cluster
        from ..obs.metrics import counters

        self._serve = serve
        self._is_read = is_read
        self._machine = machine
        self._engine = engine
        # cached per-process registry (policies are built post-fork):
        # saves the registry lock round trip on every admission.
        self._counters = counters()
        self._cond = threading.Condition()
        #: sim waiters parked on engine triggers, fired by every release
        self._trigger_waiters: list = []
        self._states: dict[int, _ObjectServeState] = {}
        self._local = threading.local()
        #: threads currently holding a worker slot
        self._active = 0
        # peak gauges, exposed through Kernel.stats()["serve"]
        self._active_peak = 0
        self._depth_peak = 0
        self._shed = 0
        self._admitted = 0
        #: oid → monotone per-object gauges (admitted/shed/depth_peak).
        #: Kept after the object's _ObjectServeState is dropped — the
        #: Rebalancer reads these through cluster.metrics() to find hot
        #: objects, and hotness must survive idle gaps.
        self._per_object: dict[int, dict[str, int]] = {}

    # -- waiting ------------------------------------------------------------

    def _wait_for(self, pred: Callable[[], bool]) -> None:
        """Block (cond held) until *pred* holds; never busy-spins the CPU."""
        if self._engine is None:
            self._cond.wait_for(pred)
            return
        from ..sim.engine import Trigger

        while not pred():
            # Registered under the cond, fired by _notify under the
            # cond: a release between our pred check and engine.wait
            # already sees (and fires) this trigger, so the wakeup
            # cannot be lost — engine.wait returns fired triggers
            # immediately.
            trigger = Trigger(label="serve-wait")
            self._trigger_waiters.append(trigger)
            self._cond.release()
            try:
                self._engine.wait(trigger)
            finally:
                self._cond.acquire()

    def _notify(self) -> None:
        """Wake every waiter to re-check its predicate (cond held)."""
        if self._engine is None:
            self._cond.notify_all()
            return
        waiters, self._trigger_waiters = self._trigger_waiters, []
        for trigger in waiters:
            self._engine.fire(trigger)

    # -- admission / locking ------------------------------------------------

    def _admit_locked(self, oid: int, method: str, *,
                      held: bool) -> "_ObjectServeState":
        st = self._states.setdefault(oid, _ObjectServeState())
        serve = self._serve
        gauges = self._per_object.get(oid)
        if gauges is None:
            gauges = self._per_object[oid] = {
                "admitted": 0, "shed": 0, "depth_peak": 0}
        if (serve.max_queue_depth is not None and not held
                and st.depth >= serve.max_queue_depth):
            self._shed += 1
            gauges["shed"] += 1
            self._counters.inc("serve.shed")
            raise ServerOverloadedError(
                f"object {oid} admission queue full "
                f"({st.depth}/{serve.max_queue_depth}) for {method!r}",
                machine=self._machine, oid=oid, method=method,
                depth=st.depth)
        st.depth += 1
        self._admitted += 1
        gauges["admitted"] += 1
        self._counters.inc("serve.admitted")
        if st.depth > gauges["depth_peak"]:
            gauges["depth_peak"] = st.depth
        if st.depth > self._depth_peak:
            self._depth_peak = st.depth
            self._counters.record_max("serve.depth_peak", st.depth)
        return st

    def admit(self, oid: int, method: str) -> None:
        """Admission-only half of :meth:`enter`, for transport enqueue.

        The mp backend calls this on the connection reader thread
        *before* handing the request to its worker pool, so the pool's
        internal queue counts toward the object's depth and overload is
        shed at the socket instead of hiding in the executor backlog.
        A request admitted here must be dispatched with
        ``preadmitted=True`` (and will be released by the normal
        :meth:`exit`); a shed raises without any state to undo.  Kernel
        requests are exempt and need no pre-admission.
        """
        if oid == KERNEL_OID:
            return
        with self._cond:
            self._admit_locked(oid, method, held=False)

    def cancel_admit(self, oid: int) -> None:
        """Roll back an :meth:`admit` whose dispatch never happened."""
        if oid == KERNEL_OID:
            return
        with self._cond:
            st = self._states.get(oid)
            if st is None:
                return
            st.depth -= 1
            if st.depth <= 0 and not st.readers and st.writer is None:
                del self._states[oid]
            self._notify()

    def enter(self, oid: int, instance: Any, method: str, *,
              preadmitted: bool = False) -> Optional[_Grant]:
        """Admit, take a slot, and lock *oid* for *method*; may shed.

        Returns a grant to pass to :meth:`exit`, or ``None`` for calls
        the policy does not govern (the kernel object).  Raises
        :class:`~repro.errors.ServerOverloadedError` when the object's
        admission queue is full.  *preadmitted* marks requests whose
        depth was already counted by :meth:`admit` on the enqueue path.
        """
        if oid == KERNEL_OID:
            return None
        serve = self._serve
        tid = threading.get_ident()
        readonly = (serve.readonly_concurrency
                    and self._is_read(instance, method))
        with self._cond:
            if preadmitted:
                st = self._states.setdefault(oid, _ObjectServeState())
            else:
                st = self._states.get(oid)
                # a thread already holding the object's lock (nested
                # local call) is never shed: it must be able to finish.
                held = (st is not None
                        and (st.writer == tid or tid in st.readers))
                st = self._admit_locked(oid, method, held=held)
            slot = False
            nested = getattr(self._local, "depth", 0)
            try:
                if serve.workers is not None and nested == 0:
                    self._wait_for(lambda: self._active < serve.workers)
                    self._active += 1
                    slot = True
                    if self._active > self._active_peak:
                        self._active_peak = self._active
                if readonly:
                    if st.writer != tid and tid not in st.readers:
                        # writer-preference; reentrant readers are exempt
                        # (deferring would deadlock against the waiting
                        # writer we ourselves block).
                        self._wait_for(
                            lambda: st.writer is None
                            and st.waiting_writers == 0)
                    st.readers[tid] = st.readers.get(tid, 0) + 1
                    mode = "r"
                else:
                    if st.writer == tid:
                        st.writer_depth += 1
                    else:
                        st.waiting_writers += 1
                        try:
                            # sole-reader upgrade allowed: readers - {tid}
                            # must be empty, not readers itself.
                            self._wait_for(
                                lambda: st.writer is None
                                and not (set(st.readers) - {tid}))
                        finally:
                            st.waiting_writers -= 1
                        st.writer = tid
                        st.writer_depth = 1
                    mode = "w"
            except BaseException:
                st.depth -= 1
                if slot:
                    self._active -= 1
                self._notify()
                raise
            self._local.depth = nested + 1
            grant = _Grant(oid, tid, mode, slot)
            grants = getattr(self._local, "grants", None)
            if grants is None:
                grants = self._local.grants = []
            grants.append(grant)
            # blocking future waits on this thread now yield the locks
            # this policy granted (monitor semantics, docs/SERVING.md)
            grant.prev_yielder = set_wait_yielder(self)
            return grant

    def exit(self, grant: Optional[_Grant]) -> None:
        if grant is None:
            return
        grants = getattr(self._local, "grants", None)
        if grants:
            if grants[-1] is grant:
                grants.pop()
            else:  # defensive: out-of-order exits (direct policy driving)
                try:
                    grants.remove(grant)
                except ValueError:
                    pass
        set_wait_yielder(grant.prev_yielder)
        with self._cond:
            st = self._states[grant.oid]
            if grant.mode == "r":
                n = st.readers.get(grant.tid, 1) - 1
                if n <= 0:
                    st.readers.pop(grant.tid, None)
                else:
                    st.readers[grant.tid] = n
            else:
                st.writer_depth -= 1
                if st.writer_depth <= 0:
                    st.writer = None
            st.depth -= 1
            self._local.depth = getattr(self._local, "depth", 1) - 1
            if grant.slot:
                self._active -= 1
            # waiters have depth > 0, so nobody holds a reference to a
            # state we drop here
            if (st.depth == 0 and not st.readers and st.writer is None):
                del self._states[grant.oid]
            self._notify()

    # -- lock yielding around blocking waits --------------------------------

    def yield_for_wait(self) -> Optional[list]:
        """Release this thread's locks + slots for a blocking future wait.

        Monitor semantics: a method body that blocks waiting on a remote
        reply is not *executing* — the object it serves must stay
        callable, or the paper's symmetric patterns deadlock (the
        stencil's ghost exchange holds every worker's write lock while
        each waits on a ``deposit_ghost`` reply from a neighbour that is
        queued behind that very lock).  Called by the futures layer
        (:func:`~repro.runtime.futures.set_wait_yielder` wiring) just
        before parking; returns a token for :meth:`unyield`.  Admission
        depth is *kept* — a yielded call is still in flight and still
        counts toward ``max_queue_depth``.
        """
        grants = getattr(self._local, "grants", None)
        if not grants:
            return None
        token = list(grants)
        with self._cond:
            for g in reversed(token):
                st = self._states[g.oid]
                if g.mode == "r":
                    n = st.readers.get(g.tid, 1) - 1
                    if n <= 0:
                        st.readers.pop(g.tid, None)
                    else:
                        st.readers[g.tid] = n
                else:
                    st.writer_depth -= 1
                    if st.writer_depth <= 0:
                        st.writer = None
                if g.slot:
                    self._active -= 1
            self._notify()
        return token

    def unyield(self, token: Optional[list]) -> None:
        """Reacquire the locks released by :meth:`yield_for_wait`.

        Grants are retaken outermost-first, each with the same slot-
        then-lock discipline as :meth:`enter`.  The method body resumes
        only once every lock is back, so exclusivity holds again the
        instant execution continues — but state *may* have been mutated
        by other calls during the wait, exactly as under the paper's
        free-running executor.
        """
        if not token:
            return
        serve = self._serve
        with self._cond:
            for g in token:
                st = self._states.setdefault(g.oid, _ObjectServeState())
                if g.slot and serve.workers is not None:
                    self._wait_for(lambda: self._active < serve.workers)
                    self._active += 1
                    if self._active > self._active_peak:
                        self._active_peak = self._active
                if g.mode == "r":
                    if st.writer != g.tid and g.tid not in st.readers:
                        self._wait_for(
                            lambda st=st: st.writer is None
                            and st.waiting_writers == 0)
                    st.readers[g.tid] = st.readers.get(g.tid, 0) + 1
                else:
                    if st.writer == g.tid:
                        st.writer_depth += 1
                    else:
                        st.waiting_writers += 1
                        try:
                            self._wait_for(
                                lambda st=st, tid=g.tid: st.writer is None
                                and not (set(st.readers) - {tid}))
                        finally:
                            st.waiting_writers -= 1
                        st.writer = g.tid
                        st.writer_depth = 1

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Serving gauges for ``Kernel.stats()`` / ``cluster.metrics()``."""
        serve = self._serve
        with self._cond:
            return {
                "workers": serve.workers,
                "max_queue_depth": serve.max_queue_depth,
                "active": self._active,
                "active_peak": self._active_peak,
                "queued": sum(s.depth for s in self._states.values()),
                "depth_peak": self._depth_peak,
                "admitted": self._admitted,
                "shed": self._shed,
                # per-oid gauges for the Rebalancer (hot-spot detection)
                "per_object": {oid: dict(g)
                               for oid, g in self._per_object.items()},
            }


class Kernel:
    """The machine's object id 0: creation, destruction, introspection."""

    def __init__(self, machine_id: int, table: ObjectTable) -> None:
        self.machine_id = machine_id
        self.table = table
        # table-raised ObjectMovedError names the stale machine with this
        table.machine_id = machine_id
        #: instances detached by migrate_out, parked until commit/abort
        self._migrating_out: dict[int, Any] = {}
        self.calls_served = 0
        self._stats_lock = threading.Lock()
        #: set by the hosting backend; kernel.shutdown() fires it.
        self.stop_event = threading.Event()
        #: the process's span recorder, set by the hosting backend when
        #: tracing is on.  take_spans/obs_metrics are kernel methods so
        #: the driver gathers observability data the same way it does
        #: everything else: by remote method execution.
        self.tracer = None
        #: the process's race checker (see :mod:`repro.check`), set by
        #: the hosting backend when ``Config(check=...)`` enables
        #: detection; take_race_reports is the gather path.
        self.checker = None
        #: the machine's :class:`ServePolicy`, set by the hosting
        #: backend; stats() exposes its gauges (queue depth, sheds).
        self.policy: Optional[ServePolicy] = None

    # -- observability --------------------------------------------------------

    def take_spans(self) -> list[dict]:
        """Drain this process's recorded spans (as plain dicts)."""
        if self.tracer is None:
            return []
        return [span.to_dict() for span in self.tracer.drain()]

    def take_race_reports(self) -> list[dict]:
        """Drain this process's race reports (as plain dicts)."""
        if self.checker is None:
            return []
        return self.checker.take_reports()

    def obs_metrics(self) -> dict:
        """This machine's stats + process-wide transport counters."""
        from ..obs.metrics import snapshot_process

        out = self.stats()
        serve = out.get("serve")
        out.update(snapshot_process())
        if serve is not None:
            # the process-wide "serve" counter group must not clobber
            # the policy gauges (per_object feeds the Rebalancer)
            merged = dict(out.get("serve") or {})
            merged.update(serve)
            out["serve"] = merged
        return out

    # -- liveness ----------------------------------------------------------

    def ping(self) -> int:
        return self.machine_id

    # -- object lifecycle ---------------------------------------------------

    def create(self, spec: tuple[str, str], args: tuple, kwargs: dict) -> ObjectRef:
        """Instantiate ``spec(*args, **kwargs)`` here; returns its ref.

        The constructor runs with the machine's runtime context already
        set (the dispatcher arranged that), so constructors may
        themselves create further remote objects — the paper's derived
        devices do exactly this.
        """
        cls = resolve_class(spec)
        instance = cls(*args, **kwargs)
        oid = self.table.add(instance)
        return ObjectRef(machine=self.machine_id, oid=oid, spec=spec)

    def call_function(self, spec: tuple[str, str], args: tuple,
                      kwargs: dict) -> Any:
        """Execute a module-level function on this machine.

        The remote-procedure complement of remote objects: the driver's
        ``cluster.submit(fn, ..., machine=k)`` lands here.  The function
        runs with the machine's runtime context set (the dispatcher
        arranged that), so it may create objects and call proxies.
        """
        from ..apps.funcspec import resolve_func

        return resolve_func(spec)(*args, **kwargs)

    def adopt(self, instance: Any) -> ObjectRef:
        """Register an already-constructed local instance (backend use)."""
        oid = self.table.add(instance)
        return ObjectRef(machine=self.machine_id, oid=oid,
                         spec=class_spec(type(instance)))

    def destroy(self, oid: int) -> bool:
        """Run the destructor hook and drop the object.

        Waits for in-flight calls on the object to complete first, so a
        method body never loses its instance mid-execution.
        """
        if oid == KERNEL_OID:
            raise RuntimeLayerError("cannot destroy the kernel object")
        instance = self.table.remove(oid)
        if self.checker is not None:
            # the oid may be reused; stale history must not pair with it
            self.checker.forget(self.machine_id, oid)
        hook = getattr(instance, DESTRUCTOR_HOOK, None)
        if callable(hook):
            hook()
        return True

    def destroy_all(self) -> int:
        """Destroy every hosted object (machine shutdown path)."""
        count = 0
        for oid in self.table.oids():
            try:
                self.destroy(oid)
                count += 1
            except (NoSuchObjectError, ObjectDestroyedError):
                pass
        return count

    # -- synchronization -----------------------------------------------------

    def quiesce(self, oids: Optional[list[int]] = None,
                timeout: Optional[float] = None) -> bool:
        return self.table.quiesce(oids, timeout)

    # -- persistence support (see repro.runtime.persistence) ----------------

    def snapshot(self, oid: int) -> tuple[tuple[str, str], Any]:
        """Capture ``(class spec, state)`` of a hosted object."""
        instance = self.table.get(oid)
        getter = getattr(instance, "__getstate__", None)
        state = getter() if callable(getter) else dict(instance.__dict__)
        return class_spec(type(instance)), state

    def restore(self, spec: tuple[str, str], state: Any) -> ObjectRef:
        """Recreate an object from a snapshot without running __init__."""
        cls = resolve_class(spec)
        instance = cls.__new__(cls)
        setter = getattr(instance, "__setstate__", None)
        if callable(setter):
            setter(state)
        elif state is not None:
            # pickle's contract: object.__getstate__ returns None for a
            # stateless instance, meaning "nothing to apply".
            instance.__dict__.update(state)
        oid = self.table.add(instance)
        return ObjectRef(machine=self.machine_id, oid=oid, spec=spec)

    def evict(self, oid: int) -> tuple[tuple[str, str], Any]:
        """Snapshot then drop — deactivation of a persistent process."""
        snap = self.snapshot(oid)
        self.table.remove(oid)
        return snap

    # -- live migration (see docs/MIGRATION.md) -----------------------------

    def migrate_out(self, oid: int) -> tuple[tuple[str, str], Any]:
        """Freeze *oid* and return its ``(spec, state)`` snapshot.

        Drains in-flight calls through the table's migration gate (new
        arrivals park in the bounded forwarding buffer), detaches the
        instance and snapshots it with the same encoder the persistence
        layer uses.  The instance is parked locally until the driver
        calls :meth:`migrate_commit` (install succeeded at the dest) or
        :meth:`migrate_abort` (it did not; the object is reinstalled
        here and keeps serving).
        """
        from ..obs.metrics import counters

        if oid == KERNEL_OID:
            raise RuntimeLayerError("cannot migrate the kernel object")
        instance = self.table.begin_migrate(oid)
        try:
            getter = getattr(instance, "__getstate__", None)
            state = getter() if callable(getter) else dict(instance.__dict__)
            spec = class_spec(type(instance))
        except BaseException:
            self.table.abort_migrate(oid, instance)
            raise
        self._migrating_out[oid] = instance
        counters().inc("migrate.out")
        return spec, state

    def migrate_commit(self, oid: int, new_ref: ObjectRef) -> bool:
        """Flip the forwarding entry: *oid* now lives at *new_ref*."""
        from ..obs.metrics import counters

        self._migrating_out.pop(oid, None)
        self.table.finish_migrate(oid, new_ref)
        if self.checker is not None:
            # the oid's access history must not pair with its new life
            self.checker.forget(self.machine_id, oid)
        counters().inc("migrate.committed")
        return True

    def migrate_abort(self, oid: int) -> bool:
        """Reinstall a frozen instance after a failed move."""
        from ..obs.metrics import counters

        instance = self._migrating_out.pop(oid, None)
        if instance is None:
            return False
        self.table.abort_migrate(oid, instance)
        counters().inc("migrate.aborted")
        return True

    def list_objects(self) -> list[tuple[int, tuple[str, str]]]:
        """``(oid, class spec)`` of every live hosted object."""
        out = []
        for oid in self.table.oids():
            try:
                instance = self.table.get(oid)
            except (NoSuchObjectError, ObjectMovedError):
                continue
            out.append((oid, class_spec(type(instance))))
        return out

    def snapshot_all(self) -> list[tuple[tuple[str, str], Any]]:
        """``(spec, state)`` snapshots of every live hosted object.

        The migration-aware conformance harness digests these across
        the whole cluster: the multiset of object states is placement-
        independent, unlike the per-machine object counts.
        """
        out = []
        for oid in self.table.oids():
            try:
                out.append(self.snapshot(oid))
            except (NoSuchObjectError, ObjectMovedError):
                continue
        return out

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        with self._stats_lock:
            served = self.calls_served
        out = {
            "machine": self.machine_id,
            "objects": len(self.table),
            "calls_served": served,
        }
        if self.policy is not None:
            out["serve"] = self.policy.stats()
        return out

    def count_call(self) -> None:
        with self._stats_lock:
            self.calls_served += 1

    # -- shutdown ---------------------------------------------------------------

    def shutdown(self) -> bool:
        """Request machine shutdown; the hosting backend watches stop_event."""
        self.stop_event.set()
        return True


class Dispatcher:
    """Executes requests against one machine's object table."""

    def __init__(self, machine_id: int, table: ObjectTable, kernel: Kernel,
                 fabric: "Fabric", hooks=None, tracer=None,
                 checker=None, policy: Optional[ServePolicy] = None) -> None:
        self.machine_id = machine_id
        self.table = table
        self.kernel = kernel
        self.tracer = tracer
        self.checker = checker
        self.policy = policy
        self._context = RuntimeContext(fabric=fabric, machine_id=machine_id,
                                       hooks=hooks or CostHooks())

    @property
    def context(self) -> RuntimeContext:
        return self._context

    def execute(self, request: Request, *,
                preadmitted: bool = False) -> Response | ErrorResponse | None:
        """Run one request; returns the reply (None for oneway).

        *preadmitted* marks requests the transport already admitted
        through :meth:`ServePolicy.admit` (the mp socket path).

        When tracing is on, the method body runs inside a *server span*
        scoped as the current span, so remote calls the body issues
        parent to it — that is what turns a pile of spans into the
        paper's object-to-object call tree.  When race detection is on,
        the body likewise runs inside a fresh vector-clock *task* that
        merged the request's clock — remote calls the body issues carry
        that task's clock, and the reply ships its final snapshot.
        """
        self.kernel.count_call()
        tracer = self.tracer
        checker = self.checker
        span = None
        ctask = None
        if tracer is not None and tracer.wants(request.method):
            # machine= pins the span to this machine even when the
            # tracer is the driver's (inline/sim host every machine
            # in-process and share one tracer).
            span = tracer.start_server(request, machine=self.machine_id)
        if checker is not None:
            ctask = checker.begin_execution(request)
        try:
            if span is not None or ctask is not None:
                with ExitStack() as scopes:
                    if span is not None:
                        scopes.enter_context(tracer.scope(span))
                    if ctask is not None:
                        scopes.enter_context(checker.scope(ctask))
                    value = self._run(request, preadmitted)
                if span is not None:
                    span.t_executed = tracer.now()
            else:
                value = self._run(request, preadmitted)
        except BaseException as exc:  # noqa: BLE001 - everything crosses the wire
            log.debug("machine %d: %s.%s raised %r (caller %d)",
                      self.machine_id, request.object_id, request.method,
                      exc, request.caller)
            if span is not None:
                span.t_executed = tracer.now()
                tracer.finish_server(span, error=type(exc).__name__)
            if request.oneway:
                return None
            picklable = _try_picklable(exc)
            return ErrorResponse(
                request_id=request.request_id,
                type_name=f"{type(exc).__module__}.{type(exc).__qualname__}",
                message=str(exc),
                remote_traceback=traceback.format_exc(),
                exception=picklable,
                clock=None if ctask is None else checker.end_execution(ctask),
            )
        if span is not None:
            tracer.finish_server(span)
        if request.oneway:
            return None
        return Response(
            request_id=request.request_id, value=value,
            clock=None if ctask is None else checker.end_execution(ctask))

    def _run(self, request: Request, preadmitted: bool = False) -> Any:
        oid = request.object_id
        name = request.method
        if oid == KERNEL_OID:
            # the kernel is not table-hosted; it keeps the historical
            # enter/exit accounting and bypasses the serve policy
            # entirely (shutdown must land on a saturated machine).
            instance = self.kernel
            self.table.enter_call(oid)
        else:
            # atomic lookup + in-flight registration: a concurrent
            # destroy either drains us or beats us, never interleaves.
            try:
                instance = self.table.checkout(oid)
            except BaseException:
                if preadmitted and self.policy is not None:
                    # the reader thread already counted this call in the
                    # object's depth; without the rollback a destroy
                    # race leaks it forever and (under max_queue_depth)
                    # eventually sheds every later call to the oid.
                    self.policy.cancel_admit(oid)
                raise
        try:
            grant = (None if self.policy is None
                     else self.policy.enter(oid, instance, name,
                                            preadmitted=preadmitted))
            try:
                if self.checker is not None:
                    # recorded after admission (a shed call never runs)
                    # but before the body: a method that raises may
                    # already have mutated the object.
                    self.checker.record(request, instance,
                                        machine=self.machine_id)
                with context_scope(self._context):
                    if name == GETATTR_METHOD:
                        return getattr(instance, *request.args)
                    if name == SETATTR_METHOD:
                        attr, value = request.args
                        setattr(instance, attr, value)
                        return None
                    if name == PING_METHOD:
                        return self.machine_id
                    method = getattr(instance, name, None)
                    if method is None or not callable(method):
                        raise AttributeError(
                            f"{type(instance).__name__} object {oid} has no "
                            f"callable method {name!r}")
                    return method(*request.args, **request.kwargs)
            finally:
                if self.policy is not None:
                    self.policy.exit(grant)
        finally:
            if oid == KERNEL_OID:
                self.table.exit_call(oid)
            else:
                self.table.checkin(oid)


def _try_picklable(exc: BaseException) -> BaseException | None:
    """Return *exc* if it survives a pickle round trip, else None."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:  # noqa: BLE001 - any failure means "not picklable"
        return None
    return exc
