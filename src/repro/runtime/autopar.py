"""Automatic loop parallelization — the paper's compiler transformation.

Paper §4 shows the compiler splitting ::

    for (int i = 0; i < N; i ++)
        device[i]->read(buffer[k[i]], page_address[i]);

into a send-loop and a receive-loop.  :func:`autoparallel` performs the
same transformation on unmodified call sites at runtime::

    with oopp.autoparallel() as batch:
        pages = [device[i].read_page(addr[i]) for i in range(N)]
    # all N requests were in flight simultaneously; the with-block exit
    # is the synchronization point ("processes are naturally synchronized
    # at the end of the for loop").
    data = [p.value for p in pages]

Inside the block every remote method call returns immediately with a
:class:`Deferred`; the request has been *sent* but not awaited.  At
block exit all outstanding replies are collected (errors are aggregated
and re-raised).  After exit each Deferred's ``value`` holds the result.

Like the compiler the paper imagines, this transformation is only valid
when iterations are independent: a body that feeds one call's result
into the next must read ``.value`` inside the block, which forces the
wait for that call (and only that call) — dependencies degrade
gracefully to sequential execution instead of breaking.

The paper also warns that "such parallelization may expose subtle
programming bugs".  The ones this implementation surfaces loudly:
passing a still-pending Deferred as an argument to another remote call
raises immediately (use ``.value`` to force the dependency), and
unawaited errors surface at the synchronization point, not silently.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from ..errors import GroupError, OoppError
from .futures import RemoteFuture

_tls = threading.local()


class DeferredError(OoppError):
    """Misuse of a Deferred (read before resolution, passed while pending)."""


class Deferred:
    """The placeholder a remote call returns inside an autoparallel block."""

    __slots__ = ("_future", "_batch")

    def __init__(self, future: RemoteFuture, batch: "CallBatch") -> None:
        self._future = future
        self._batch = batch

    @property
    def done(self) -> bool:
        return self._future.done()

    @property
    def value(self) -> Any:
        """The call's result.

        Inside the block this *forces* the call (waits for this reply
        only) — the escape hatch for loop-carried dependencies.  After
        the block it is an immediate read.
        """
        return self._future.result(self._batch.timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        return self._future.result(timeout if timeout is not None
                                   else self._batch.timeout)

    def __reduce__(self):
        raise DeferredError(
            "a pending Deferred cannot be sent to another object; read "
            "`.value` first to force the dependency")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done else "pending"
        return f"<Deferred {state}>"


class CallBatch:
    """The in-flight calls of one autoparallel block."""

    def __init__(self, timeout: Optional[float] = None) -> None:
        self.timeout = timeout
        self._futures: list[RemoteFuture] = []
        self._lock = threading.Lock()
        self._closed = False

    def add(self, future: RemoteFuture) -> Deferred:
        with self._lock:
            if self._closed:
                raise DeferredError("batch already synchronized")
            self._futures.append(future)
        return Deferred(future, self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._futures)

    @property
    def pending(self) -> int:
        with self._lock:
            return sum(1 for f in self._futures if not f.done())

    def wait(self) -> None:
        """The receive-loop: collect every reply, aggregate failures."""
        with self._lock:
            self._closed = True
            futures = list(self._futures)
        failures: dict[int, BaseException] = {}
        for i, f in enumerate(futures):
            err = f.exception(self.timeout)
            if err is not None:
                failures[i] = err
        if failures:
            if len(failures) == 1:
                raise next(iter(failures.values()))
            raise GroupError(
                f"{len(failures)}/{len(futures)} parallelized calls failed",
                failures)


class _AutoparScope:
    def __init__(self, timeout: Optional[float]) -> None:
        self.batch = CallBatch(timeout)

    def __enter__(self) -> CallBatch:
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self.batch)
        return self.batch

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = _tls.stack
        popped = stack.pop()
        assert popped is self.batch, "autoparallel scopes unbalanced"
        if exc_type is None:
            # the natural synchronization at the end of the loop
            self.batch.wait()
        # on exception, leave replies in flight; the block's error wins


def autoparallel(timeout: Optional[float] = None) -> _AutoparScope:
    """Parallelize the remote calls made inside the with-block.

    Returns the :class:`CallBatch` for introspection.  Nestable: calls
    bind to the innermost block.
    """
    return _AutoparScope(timeout)


def force(value: Any) -> Any:
    """Resolve *value* if it is a :class:`Deferred` or
    :class:`RemoteFuture`; return it unchanged otherwise.

    The receive-phase primitive the automatic rewriter
    (:mod:`repro.lint.transform`) emits: a collector list may mix
    pre-loop plain values with pipelined placeholders, and ``force``
    normalizes both without caring which is which.
    """
    if isinstance(value, Deferred):
        return value.value
    if isinstance(value, RemoteFuture):
        return value.result()
    return value


def active_batch() -> Optional[CallBatch]:
    """The innermost autoparallel batch of this thread, if any."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None


def check_args_for_pending(args: tuple, kwargs: dict) -> None:
    """Reject still-pending Deferreds used as call arguments."""
    for v in args:
        if isinstance(v, Deferred) and not v.done:
            raise DeferredError(
                "argument is a pending Deferred; read `.value` to force "
                "the dependency before passing it on")
    for v in kwargs.values():
        if isinstance(v, Deferred) and not v.done:
            raise DeferredError(
                "argument is a pending Deferred; read `.value` to force "
                "the dependency before passing it on")
