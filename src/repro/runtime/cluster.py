"""The Cluster facade — the programmer's view of the machine pool.

``Cluster`` stands in for the paper's runtime: the driver program plays
*machine 0's client code* and allocates objects on remote machines with
:meth:`Cluster.new`, the Python spelling of ``new(machine k) Cls(...)``::

    with Cluster(n_machines=4, backend="mp") as cluster:
        store = cluster.new(PageDevice, "pagefile", 10, 1024, machine=1)
        store.write(page, 17)            # remote method execution

A cluster installs itself as the process-default runtime context so
that proxies unpickled in the driver re-attach automatically.  Clusters
nest (tests create several): the previous default is restored on
shutdown.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Sequence

from ..backends.base import Fabric, make_fabric
from ..config import Config
from ..errors import ConfigError
from .context import RuntimeContext, set_default_context
from .group import ObjectGroup
from .naming import ObjectAddress, parse_address
from .persistence import PersistentStore
from .proxy import Proxy
from .remotedata import Block

_cluster_stack: list["Cluster"] = []
_stack_lock = threading.Lock()


def current_cluster() -> Optional["Cluster"]:
    """The most recently constructed, still-open cluster (or None)."""
    with _stack_lock:
        return _cluster_stack[-1] if _cluster_stack else None


class MachineHandle:
    """Driver-side handle to one machine: identity and health checks."""

    def __init__(self, cluster: "Cluster", machine_id: int) -> None:
        self.cluster = cluster
        self.id = machine_id

    def ping(self) -> int:
        return self.cluster.fabric.ping(self.id)

    def stats(self) -> dict:
        return self.cluster.fabric.stats(self.id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<machine {self.id}>"


class Cluster:
    """A pool of machines hosting remote objects.

    Parameters
    ----------
    n_machines:
        Number of machines (``machine 0 .. n-1``).
    backend:
        ``"inline"``, ``"mp"`` or ``"sim"`` (see :mod:`repro.backends`).
    config:
        A full :class:`~repro.config.Config`; keyword overrides win.
    """

    def __init__(self, n_machines: int | None = None,
                 backend: str | None = None,
                 config: Config | None = None, **overrides: Any) -> None:
        cfg = config or Config()
        fields: dict[str, Any] = dict(overrides)
        if n_machines is not None:
            fields["n_machines"] = n_machines
        if backend is not None:
            fields["backend"] = backend
        if fields:
            cfg = cfg.replace(**fields)
        cfg.validate()
        self.config = cfg
        self.fabric: Fabric = make_fabric(cfg)
        self._stores: dict[str, PersistentStore] = {}
        self._stores_lock = threading.Lock()
        self._open = True
        set_default_context(RuntimeContext(fabric=self.fabric, machine_id=-1))
        with _stack_lock:
            _cluster_stack.append(self)

    # -- topology -----------------------------------------------------------

    @property
    def n_machines(self) -> int:
        return self.fabric.machine_count

    @property
    def machines(self) -> list[MachineHandle]:
        return [MachineHandle(self, i) for i in range(self.n_machines)]

    def ping_all(self) -> list[int]:
        """Round-trip every machine; returns their ids (health check)."""
        futures = [
            self.fabric.call_async(self.fabric.kernel_ref(i), "ping", (), {})
            for i in range(self.n_machines)
        ]
        return [f.result(self.config.call_timeout_s) for f in futures]

    def stats(self) -> list[dict]:
        return [self.fabric.stats(i) for i in range(self.n_machines)]

    # -- object creation ---------------------------------------------------------

    def new(self, cls: type, *args: Any, machine: int = 0, **kwargs: Any) -> Proxy:
        """``new(machine k) cls(*args, **kwargs)`` — returns a remote pointer."""
        self._require_open()
        return self.fabric.create(cls, args, kwargs, machine=machine)

    def new_group(self, cls: type, count: int | None = None, *args: Any,
                  machines: Sequence[int] | None = None,
                  argfn: Callable[[int], tuple] | None = None,
                  kwargfn: Callable[[int], dict] | None = None,
                  **kwargs: Any) -> ObjectGroup:
        """Create *count* objects round-robin over the machines, pipelined.

        Member *i* is constructed as ``cls(*argfn(i), **kwargfn(i))`` when
        the callables are given, else with the shared ``*args, **kwargs``
        — the paper's ``for id: fft[id] = new(machine id) FFT(id)`` is
        ``cluster.new_group(FFT, N, argfn=lambda i: (i,))``.
        """
        self._require_open()
        if machines is None:
            if count is None:
                count = self.n_machines
            machines = [i % self.n_machines for i in range(count)]
        elif count is not None and count != len(machines):
            raise ConfigError("count and machines disagree")
        from .oid import class_spec

        spec = class_spec(cls)
        futures = []
        for i, m in enumerate(machines):
            a = argfn(i) if argfn is not None else args
            kw = kwargfn(i) if kwargfn is not None else kwargs
            futures.append(self.fabric.call_async(
                self.fabric.kernel_ref(m), "create", (spec, tuple(a), kw), {}))
        refs = [f.result(self.config.call_timeout_s) for f in futures]
        return ObjectGroup([Proxy(r, self.fabric) for r in refs])

    def new_block(self, n: int, dtype: str = "float64", *, machine: int = 0,
                  fill: float | int | None = 0) -> Proxy:
        """The paper's ``new(machine k) double[n]`` (see :class:`Block`)."""
        return self.new(Block, n, dtype, fill, machine=machine)

    # -- remote procedure execution -----------------------------------------

    def submit(self, fn: Callable, *args: Any, machine: int = 0,
               **kwargs: Any) -> Any:
        """Execute a module-level function on *machine*, synchronously.

        The functional complement of :meth:`new`: no object outlives the
        call.  The function runs with the machine's runtime context, so
        it may itself create remote objects or call proxies.
        """
        self._require_open()
        from ..apps.funcspec import func_spec

        return self.fabric.kernel_call(machine, "call_function",
                                       func_spec(fn), args, kwargs)

    def submit_async(self, fn: Callable, *args: Any, machine: int = 0,
                     **kwargs: Any):
        """Pipelined :meth:`submit`; returns a RemoteFuture."""
        self._require_open()
        from ..apps.funcspec import func_spec

        return self.fabric.call_async(
            self.fabric.kernel_ref(machine), "call_function",
            (func_spec(fn), args, kwargs), {})

    def map_on_machines(self, fn: Callable, items: Sequence[Any]) -> list:
        """Run ``fn(item)`` for each item, round-robin over machines,
        all in flight simultaneously."""
        futures = [self.submit_async(fn, item,
                                     machine=i % self.n_machines)
                   for i, item in enumerate(items)]
        return [f.result(self.config.call_timeout_s) for f in futures]

    # -- synchronization ------------------------------------------------------------

    def barrier(self, timeout: float | None = None) -> None:
        """Wait until every machine has no method execution in flight."""
        futures = [
            self.fabric.call_async(self.fabric.kernel_ref(i), "quiesce",
                                   (None, timeout), {})
            for i in range(self.n_machines)
        ]
        for f in futures:
            f.result(self.config.call_timeout_s)

    # -- persistence ------------------------------------------------------------------

    def store(self, name: str = "data") -> PersistentStore:
        """The named persistent store (created on first use)."""
        with self._stores_lock:
            st = self._stores.get(name)
            if st is None:
                st = PersistentStore(self.config.resolve_storage_root(),
                                     name, self.fabric)
                self._stores[name] = st
            return st

    def persist(self, proxy: Proxy, name: str,
                store: str = "data") -> ObjectAddress:
        """Register *proxy* as a persistent process named *name*."""
        return self.store(store).persist(proxy, name)

    def lookup(self, address: "ObjectAddress | str",
               machine: int | None = None) -> Proxy:
        """Resolve a symbolic address, re-activating a passive process."""
        if isinstance(address, str):
            address = parse_address(address)
        return self.store(address.store).activate(address, machine)

    # -- lifecycle ----------------------------------------------------------------------

    def _require_open(self) -> None:
        if not self._open:
            raise ConfigError("cluster already shut down")

    def shutdown(self) -> None:
        """Checkpoint persistent processes, destroy objects, stop machines."""
        if not self._open:
            return
        self._open = False
        with self._stores_lock:
            stores = list(self._stores.values())
        for st in stores:
            st.detach_all()
        self.fabric.close()
        with _stack_lock:
            if self in _cluster_stack:
                _cluster_stack.remove(self)
            prev = _cluster_stack[-1] if _cluster_stack else None
        if prev is not None:
            set_default_context(RuntimeContext(fabric=prev.fabric, machine_id=-1))
        else:
            set_default_context(None)

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self._open else "closed"
        return (f"<Cluster backend={self.config.backend} "
                f"n_machines={self.n_machines} {state}>")
