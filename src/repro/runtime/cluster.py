"""The Cluster facade — the programmer's view of the machine pool.

``Cluster`` stands in for the paper's runtime: the driver program plays
*machine 0's client code* and allocates objects on remote machines with
:meth:`MachineHandle.new`, the Python spelling of
``new(machine k) Cls(...)`` — the machine is named first, then the
constructor, exactly as in the paper's syntax::

    with Cluster(n_machines=4, backend="mp") as cluster:
        store = cluster.on(1).new(PageDevice, "pagefile", 10, 1024)
        store.write(page, 17)            # remote method execution

(``cluster.new(Cls, ..., machine=k)`` remains as a thin alias.)

Multi-box clusters name their hosts instead of a machine count — this
implies the tcp backend, and machines can be addressed by host::

    with Cluster(hosts=["hostA/2", "hostB/2"]) as cluster:
        fft = cluster.on("hostB/1").new(FFT, 2)
        print(cluster.on(3).host)        # "hostB"

A cluster installs itself as the process-default runtime context so
that proxies unpickled in the driver re-attach automatically.  Clusters
nest (tests create several): the previous default is restored on
shutdown.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Optional, Sequence

from ..backends.base import Fabric, make_fabric
from ..config import Config, HostSpec
from ..errors import ConfigError
from ..transport import serde
from ..transport.pub import Publication
from .context import RuntimeContext, set_default_context
from .group import ObjectGroup
from .naming import ObjectAddress, parse_address
from .persistence import PersistentStore
from .proxy import Proxy
from .remotedata import Block

_cluster_stack: list["Cluster"] = []
_stack_lock = threading.Lock()


def _same_argset(x: tuple[tuple, dict], y: tuple[tuple, dict]) -> bool:
    """Conservative equality for per-member ``(args, kwargs)`` pairs.

    Anything that is not provably equal (raising comparisons, truthy
    non-bool results from exotic ``__eq__``) counts as different — the
    memoization must never merge argument sets that could differ.
    """
    if x is y or (x[0] is y[0] and x[1] is y[1]):
        return True
    try:
        return (x[0] == y[0]) is True and (x[1] == y[1]) is True
    except Exception:
        return False


def current_cluster() -> Optional["Cluster"]:
    """The most recently constructed, still-open cluster (or None)."""
    with _stack_lock:
        return _cluster_stack[-1] if _cluster_stack else None


class MachineHandle:
    """Driver-side handle to one machine: placement, identity, health.

    Returned by :meth:`Cluster.on`; the placement methods read as the
    paper's allocation syntax — machine first, then the constructor::

        fft = cluster.on(2).new(FFT, 2)      # new(machine 2) FFT(2)
        page = cluster.on(2).new_block(1024)  # new(machine 2) double[1024]
    """

    def __init__(self, cluster: "Cluster", machine_id: int) -> None:
        self.cluster = cluster
        self.id = machine_id

    # -- placement ----------------------------------------------------------

    def new(self, cls: type, *args: Any, **kwargs: Any) -> Proxy:
        """``new(machine self.id) cls(*args, **kwargs)``."""
        self.cluster._require_open()
        return self.cluster.fabric.create(cls, args, kwargs, machine=self.id)

    def new_block(self, n: int, dtype: str = "float64", *,
                  fill: float | int | None = 0) -> Proxy:
        """``new(machine self.id) double[n]`` (see :class:`Block`)."""
        return self.new(Block, n, dtype, fill)

    def submit(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Execute a module-level function here, synchronously."""
        return self.cluster.submit(fn, *args, machine=self.id, **kwargs)

    def submit_async(self, fn: Callable, *args: Any, **kwargs: Any):
        """Pipelined :meth:`submit`; returns a RemoteFuture."""
        return self.cluster.submit_async(fn, *args, machine=self.id,
                                         **kwargs)

    # -- identity / health --------------------------------------------------

    def ping(self) -> int:
        return self.cluster.fabric.ping(self.id)

    def stats(self) -> dict:
        return self.cluster.fabric.stats(self.id)

    @property
    def host(self) -> str:
        """Address of the box carrying this machine (``"localhost"`` on
        the single-host backends; the host's configured address on tcp)."""
        return self.cluster.fabric.host_of(self.id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<machine {self.id}>"


class Cluster:
    """A pool of machines hosting remote objects.

    Parameters
    ----------
    n_machines:
        Number of machines (``machine 0 .. n-1``).
    backend:
        A registered backend name — ``"inline"``, ``"mp"``, ``"sim"``,
        ``"tcp"`` or anything added via
        :func:`repro.backends.register_backend`.
    hosts:
        Host topology for multi-box clusters: a sequence of
        :class:`~repro.config.HostSpec` or ``"addr"`` / ``"addr/N"`` /
        ``"addr:port/N"`` strings (``N`` machines on that box, default
        1).  Machine ids are assigned host by host in order, so
        ``hosts=["a/2", "b/2"]`` puts machines 0-1 on ``a`` and 2-3 on
        ``b``; address them as ints or as ``cluster.on("b/1")``.
        Implies ``backend="tcp"`` unless a backend is named explicitly,
        and fixes ``n_machines`` to the topology's total.
    config:
        A full :class:`~repro.config.Config`; keyword overrides win.
    """

    def __init__(self, n_machines: int | None = None,
                 backend: str | None = None,
                 config: Config | None = None,
                 hosts: Sequence["HostSpec | str"] | None = None,
                 **overrides: Any) -> None:
        cfg = config or Config()
        fields: dict[str, Any] = dict(overrides)
        if hosts is not None:
            specs = [HostSpec.parse(h) for h in hosts]
            total = sum(spec.machines for spec in specs)
            if n_machines is not None and n_machines != total:
                raise ConfigError(
                    f"n_machines={n_machines} disagrees with hosts= "
                    f"(the topology carries {total} machines)")
            fields["n_machines"] = total
            fields["topology"] = dataclasses.replace(cfg.topology,
                                                     hosts=specs)
            if backend is None and "backend" not in fields:
                backend = "tcp" if config is None else cfg.backend
        elif n_machines is not None:
            fields["n_machines"] = n_machines
        if backend is not None:
            fields["backend"] = backend
        if fields:
            cfg = cfg.replace(**fields)
        cfg.validate()
        self.config = cfg
        self.fabric: Fabric = make_fabric(cfg)
        self._stores: dict[str, PersistentStore] = {}
        self._stores_lock = threading.Lock()
        self._open = True
        set_default_context(RuntimeContext(fabric=self.fabric, machine_id=-1))
        with _stack_lock:
            _cluster_stack.append(self)

    # -- topology -----------------------------------------------------------

    @property
    def n_machines(self) -> int:
        return self.fabric.machine_count

    @property
    def machines(self) -> list[MachineHandle]:
        return [MachineHandle(self, i) for i in range(self.n_machines)]

    def on(self, machine: "int | str") -> MachineHandle:
        """The handle for *machine* — ``cluster.on(k).new(Cls, ...)`` is
        the paper's ``new(machine k) Cls(...)``.

        *machine* is an integer id, or — on host-aware backends — an
        ``"addr"`` / ``"addr/k"`` string naming the k-th machine on
        that host (``cluster.on("host1/2")``)."""
        return MachineHandle(self, self.fabric.resolve_machine(machine))

    def ping_all(self) -> list[int]:
        """Round-trip every machine; returns their ids (health check)."""
        futures = [
            self.fabric.call_async(self.fabric.kernel_ref(i), "ping", (), {})
            for i in range(self.n_machines)
        ]
        return [f.result(self.config.call_timeout_s) for f in futures]

    def stats(self) -> list[dict]:
        return [self.fabric.stats(i) for i in range(self.n_machines)]

    # -- object creation ---------------------------------------------------------

    def new(self, cls: type, *args: Any, machine: int = 0, **kwargs: Any) -> Proxy:
        """Alias for ``cluster.on(machine).new(cls, *args, **kwargs)``.

        Kept for callers who prefer the machine as a trailing keyword;
        the placement-first spelling (:meth:`on` + ``new``) mirrors the
        paper's ``new(machine k) Cls(...)`` more closely.
        """
        return self.on(machine).new(cls, *args, **kwargs)

    def new_group(self, cls: type, count: int | None = None, *args: Any,
                  machines: Sequence[int] | None = None,
                  argfn: Callable[[int], tuple] | None = None,
                  kwargfn: Callable[[int], dict] | None = None,
                  **kwargs: Any) -> ObjectGroup:
        """Create *count* objects round-robin over the machines, pipelined.

        Member *i* is constructed as ``cls(*argfn(i), **kwargfn(i))`` when
        the callables are given, else with the shared ``*args, **kwargs``
        — the paper's ``for id: fft[id] = new(machine id) FFT(id)`` is
        ``cluster.new_group(FFT, N, argfn=lambda i: (i,))``.
        """
        self._require_open()
        if machines is None:
            if count is None:
                count = self.n_machines
            machines = [i % self.n_machines for i in range(count)]
        elif count is not None and count != len(machines):
            raise ConfigError("count and machines disagree")
        from .oid import class_spec

        spec = class_spec(cls)
        pairs: list[tuple[tuple, dict]] = []
        for i in range(len(machines)):
            a = tuple(argfn(i)) if argfn is not None else tuple(args)
            kw = kwargfn(i) if kwargfn is not None else kwargs
            # Large shared values are pinned once per host (a no-op
            # unless ``wire.pub`` opts in) — the registry dedupes by
            # identity, so a value shared across members publishes once.
            a, kw = self.fabric.auto_publish_args(a, kw)
            pairs.append((a, kw))
        # Members with identical argument sets share one frozen pickle:
        # the argument graph is encoded once and replayed per member
        # instead of re-pickled N times.  (The no-copy inline debug mode
        # skips the serializer entirely, so the wrapper would leak into
        # the constructor there.)
        no_copy = (self.config.backend == "inline"
                   and not self.config.inline_copy)
        groups: list[tuple[tuple[tuple, dict], list[int]]] = []
        for idx, pair in enumerate(pairs):
            for rep, idxs in groups:
                if _same_argset(rep, pair):
                    idxs.append(idx)
                    break
            else:
                groups.append((pair, [idx]))
        payloads: list[Any] = [None] * len(pairs)
        for (a, kw), idxs in groups:
            payload: Any = (spec, a, kw)
            if len(idxs) > 1 and not no_copy:
                payload = serde.prepickle(payload,
                                          self.config.pickle_protocol)
            for idx in idxs:
                payloads[idx] = payload
        futures = [
            self.fabric.call_async(self.fabric.kernel_ref(m), "create",
                                   payloads[i], {})
            for i, m in enumerate(machines)
        ]
        refs = [f.result(self.config.call_timeout_s) for f in futures]
        return ObjectGroup([Proxy(r, self.fabric) for r in refs])

    def new_block(self, n: int, dtype: str = "float64", *, machine: int = 0,
                  fill: float | int | None = 0) -> Proxy:
        """Alias for ``cluster.on(machine).new_block(n, dtype, fill=fill)``."""
        return self.on(machine).new_block(n, dtype, fill=fill)

    # -- publication (zero-copy broadcast) ------------------------------------

    def publish(self, obj: Any) -> Publication:
        """Pin one pickled copy of *obj* per host for zero-copy broadcast.

        While the publication is live, any call argument containing
        *obj* (or the returned handle) ships a ~100-byte descriptor over
        the wire instead of the payload; each receiving process attaches
        the pinned copy once and reuses it for every call.  Broadcast to
        an N-member group therefore costs one payload per host instead
        of N pickles.  Published objects must be treated as read-only.

        The handle's :meth:`~repro.transport.pub.Publication.unpublish`
        unpins early; anything still pinned is swept at shutdown.  See
        ``docs/WIRE.md`` ("Publication & broadcast").
        """
        self._require_open()
        return self.fabric.publish(obj)

    # -- remote procedure execution -----------------------------------------

    def submit(self, fn: Callable, *args: Any, machine: int = 0,
               **kwargs: Any) -> Any:
        """Execute a module-level function on *machine*, synchronously.

        The functional complement of :meth:`new`: no object outlives the
        call.  The function runs with the machine's runtime context, so
        it may itself create remote objects or call proxies.
        """
        self._require_open()
        from ..apps.funcspec import func_spec

        return self.fabric.kernel_call(machine, "call_function",
                                       func_spec(fn), args, kwargs)

    def submit_async(self, fn: Callable, *args: Any, machine: int = 0,
                     **kwargs: Any):
        """Pipelined :meth:`submit`; returns a RemoteFuture."""
        self._require_open()
        from ..apps.funcspec import func_spec

        return self.fabric.call_async(
            self.fabric.kernel_ref(machine), "call_function",
            (func_spec(fn), args, kwargs), {})

    def map_on_machines(self, fn: Callable, items: Sequence[Any]) -> list:
        """Run ``fn(item)`` for each item, round-robin over machines,
        all in flight simultaneously."""
        futures = [self.submit_async(fn, item,
                                     machine=i % self.n_machines)
                   for i, item in enumerate(items)]
        return [f.result(self.config.call_timeout_s) for f in futures]

    # -- synchronization ------------------------------------------------------------

    def barrier(self, timeout: float | None = None) -> None:
        """Wait until every machine has no method execution in flight."""
        futures = [
            self.fabric.call_async(self.fabric.kernel_ref(i), "quiesce",
                                   (None, timeout), {})
            for i in range(self.n_machines)
        ]
        for f in futures:
            f.result(self.config.call_timeout_s)

    # -- migration ------------------------------------------------------------

    def migrate(self, handle: "Proxy | Any", dest: "int | str") -> Proxy:
        """Move a live object to machine *dest*, transparently.

        The source machine quiesces the object (in-flight calls drain,
        new arrivals park in a bounded forwarding buffer), its state is
        snapshotted through the persistence encoder, re-installed at
        *dest*, and a forwarding entry is left behind so stale proxies
        re-resolve on their next call — callers never observe the move
        beyond latency.

        Accepts a :class:`Proxy` (rebound in place to the new address
        and returned) or a bare :class:`~repro.runtime.oid.ObjectRef`.
        ``dest`` is a machine id or, on host-aware backends, an
        ``"addr"`` / ``"addr/k"`` string.

        Failure contract: if installation at *dest* fails the migration
        aborts and the object keeps serving at the source; if the source
        dies after installation the object lives at *dest* (stale
        proxies on the dead source surface a retryable
        :class:`~repro.errors.MachineDownError`).  There is never a
        moment with two live replicas.
        """
        from ..errors import MachineDownError, ObjectMovedError
        from ..obs.metrics import counters
        from ..transport.message import KERNEL_OID
        from .oid import ObjectRef
        from .proxy import is_proxy, ref_of

        self._require_open()
        proxy: Optional[Proxy] = None
        if is_proxy(handle):
            proxy = handle
            ref = ref_of(handle)
        elif isinstance(handle, ObjectRef):
            ref = handle
        else:
            raise TypeError(
                f"expected a Proxy or ObjectRef, got {type(handle).__name__}")
        if ref.oid == KERNEL_OID:
            raise ConfigError("machine kernels cannot migrate")
        dest_id = self.fabric.resolve_machine(dest)
        fabric = self.fabric
        hops_left = self.config.migrate.max_hops
        while True:
            if ref.machine == dest_id:
                # Already there (possibly after following a forward).
                if proxy is not None:
                    proxy._rebind(ref)
                    return proxy
                return Proxy(ref, fabric)
            try:
                spec, state = fabric.kernel_call(ref.machine, "migrate_out",
                                                 ref.oid)
                break
            except ObjectMovedError as exc:
                # Someone migrated it first — chase the forward.
                fwd = fabric.forwarded_ref(ref, exc)
                if fwd is None or hops_left <= 0:
                    raise
                hops_left -= 1
                counters().inc("migrate.hops")
                ref = fwd
        try:
            new_ref = fabric.kernel_call(dest_id, "restore", spec, state)
        except BaseException:
            # Install failed: put the object back in service at the source.
            try:
                fabric.kernel_call(ref.machine, "migrate_abort", ref.oid)
            except Exception:  # noqa: BLE001 - source may have died too
                counters().inc("migrate.abort_lost")
            raise
        new_ref = ObjectRef(machine=new_ref.machine, oid=new_ref.oid,
                            spec=new_ref.spec or ref.spec)
        try:
            fabric.kernel_call(ref.machine, "migrate_commit", ref.oid, new_ref)
        except MachineDownError:
            # The source died after install: the object is live (only) at
            # dest; stale proxies get MachineDownError, which is
            # retryable once they are rebound or the machine restarts.
            counters().inc("migrate.commit_lost")
        counters().inc("migrate.moves")
        with self._stores_lock:
            stores = list(self._stores.values())
        for st in stores:
            st.rebind(ref, new_ref)
        if proxy is not None:
            proxy._rebind(new_ref)
            return proxy
        return Proxy(new_ref, fabric)

    def rebalancer(self, **kwargs: Any) -> "Rebalancer":
        """A :class:`~repro.runtime.rebalance.Rebalancer` for this cluster.

        Reads per-object serve gauges from :meth:`metrics` and proposes
        moves from hot machines to cold ones; see ``docs/MIGRATION.md``.
        """
        from .rebalance import Rebalancer

        return Rebalancer(self, **kwargs)

    # -- observability --------------------------------------------------------

    def metrics(self) -> dict:
        """Transport metrics per process (see ``docs/OBSERVABILITY.md``).

        Always-on counters — no tracing required: coalesce batch
        occupancy, header-cache hit rate, shm hits/bytes, retry and
        injected-fault events.  Keyed ``"driver"`` / ``"machine <k>"``;
        on single-process backends only the driver entry exists (all
        machines share its process).  A dead mp machine reports
        ``{"down": <reason>}``.
        """
        self._require_open()
        return self.fabric.metrics()

    def trace_spans(self) -> list:
        """Drain every recorded call span (empty when ``trace`` is off).

        Destructive read: each span is returned once.  On mp this
        gathers machine-process buffers over the wire, so call it while
        the cluster is still open — spans die with their process.
        """
        self._require_open()
        return self.fabric.trace_spans()

    def race_reports(self) -> list[dict]:
        """Drain every race report (empty unless ``check`` enables
        ``race_detect``; see ``docs/CHECKING.md``).

        Destructive read, like :meth:`trace_spans`: each report is
        returned once, and on mp the gather crosses the wire — call it
        while the cluster is still open.
        """
        self._require_open()
        return self.fabric.race_reports()

    def write_trace(self, path: str, fmt: str = "chrome") -> int:
        """Drain spans and write them to *path*; returns the span count.

        ``fmt="chrome"`` writes a Perfetto-loadable trace
        (https://ui.perfetto.dev); ``fmt="jsonl"`` writes one span dict
        per line.
        """
        from ..obs.export import write_chrome, write_jsonl

        spans = self.trace_spans()
        if fmt == "chrome":
            return write_chrome(spans, path)
        if fmt == "jsonl":
            return write_jsonl(spans, path)
        raise ConfigError(f"unknown trace format {fmt!r}; chrome|jsonl")

    # -- persistence ------------------------------------------------------------------

    def store(self, name: str = "data") -> PersistentStore:
        """The named persistent store (created on first use)."""
        with self._stores_lock:
            st = self._stores.get(name)
            if st is None:
                st = PersistentStore(self.config.resolve_storage_root(),
                                     name, self.fabric)
                self._stores[name] = st
            return st

    def persist(self, proxy: Proxy, name: str,
                store: str = "data") -> ObjectAddress:
        """Register *proxy* as a persistent process named *name*."""
        return self.store(store).persist(proxy, name)

    def lookup(self, address: "ObjectAddress | str",
               machine: int | None = None) -> Proxy:
        """Resolve a symbolic address, re-activating a passive process."""
        if isinstance(address, str):
            address = parse_address(address)
        return self.store(address.store).activate(address, machine)

    # -- lifecycle ----------------------------------------------------------------------

    def _require_open(self) -> None:
        if not self._open:
            raise ConfigError("cluster already shut down")

    def shutdown(self) -> None:
        """Checkpoint persistent processes, destroy objects, stop machines."""
        if not self._open:
            return
        self._open = False
        with self._stores_lock:
            stores = list(self._stores.values())
        for st in stores:
            st.detach_all()
        self.fabric.close()
        with _stack_lock:
            if self in _cluster_stack:
                _cluster_stack.remove(self)
            prev = _cluster_stack[-1] if _cluster_stack else None
        if prev is not None:
            set_default_context(RuntimeContext(fabric=prev.fabric, machine_id=-1))
        else:
            set_default_context(None)

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self._open else "closed"
        return (f"<Cluster backend={self.config.backend} "
                f"n_machines={self.n_machines} {state}>")
