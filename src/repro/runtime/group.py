"""Arrays of remote objects and the loop-splitting transformation.

The paper parallelizes ``for i: device[i]->read(...)`` by letting the
compiler split the loop into a send-loop and a receive-loop.
:class:`ObjectGroup` packages that transformation:

* :meth:`invoke` — pipelined: issue every request, then collect every
  reply (the transformed program);
* :meth:`invoke_sequential` — one full round trip per member (the
  untransformed program; kept as the baseline for experiment E4);
* :meth:`barrier` — the paper's ``fft->barrier()``: returns when every
  member has no method execution in flight.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import GroupError
from .futures import RemoteFuture, wait_all
from .proxy import Proxy, destroy as destroy_proxy


class ObjectGroup:
    """An ordered collection of remote objects addressed as one unit."""

    def __init__(self, proxies: Sequence[Proxy]) -> None:
        self._proxies = list(proxies)
        if not self._proxies:
            raise GroupError("an object group cannot be empty")

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._proxies)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ObjectGroup(self._proxies[index])
        return self._proxies[index]

    def __iter__(self) -> Iterator[Proxy]:
        return iter(self._proxies)

    @property
    def proxies(self) -> list[Proxy]:
        return list(self._proxies)

    # -- pipelined invocation (the compiler's transformed loop) ----------------

    def _auto_publish(self, args: tuple, kwargs: dict) -> tuple[tuple, dict]:
        """Pin large broadcast arguments once per host (no-op unless
        ``wire.pub`` opts in, or for single-member groups)."""
        if len(self._proxies) > 1:
            fabric = self._proxies[0]._bound_fabric()
            return fabric.auto_publish_args(args, kwargs)
        return args, kwargs

    def futures(self, method: str, *args: Any, **kwargs: Any) -> list[RemoteFuture]:
        """The send-loop: issue ``method(*args)`` on every member."""
        args, kwargs = self._auto_publish(args, kwargs)
        return [getattr(p, method).future(*args, **kwargs) for p in self._proxies]

    def invoke(self, method: str, *args: Any, **kwargs: Any) -> list:
        """Pipelined call on every member; results in member order."""
        futures = self.futures(method, *args, **kwargs)
        return _collect(futures, method)

    def invoke_each(self, method: str, argtuples: Iterable[tuple],
                    kwtuples: Iterable[dict] | None = None) -> list:
        """Pipelined call with per-member positional (and keyword) args."""
        argtuples = list(argtuples)
        if len(argtuples) != len(self._proxies):
            raise GroupError(
                f"got {len(argtuples)} argument tuples for "
                f"{len(self._proxies)} members")
        if kwtuples is None:
            kwargs_list: list[dict] = [{}] * len(argtuples)
        else:
            kwargs_list = list(kwtuples)
            if len(kwargs_list) != len(argtuples):
                raise GroupError("kwtuples length mismatch")
        futures = [
            getattr(p, method).future(*a, **kw)
            for p, a, kw in zip(self._proxies, argtuples, kwargs_list)
        ]
        return _collect(futures, method)

    def invoke_indexed(self, method: str,
                       argfn: Callable[[int], tuple]) -> list:
        """Pipelined call where member *i* receives ``argfn(i)``."""
        return self.invoke_each(method, [argfn(i) for i in range(len(self))])

    # -- sequential invocation (the untransformed loop; E4 baseline) ----------

    def invoke_sequential(self, method: str, *args: Any, **kwargs: Any) -> list:
        """One complete round trip per member, in order."""
        args, kwargs = self._auto_publish(args, kwargs)
        return [getattr(p, method)(*args, **kwargs) for p in self._proxies]

    def invoke_each_sequential(self, method: str,
                               argtuples: Iterable[tuple]) -> list:
        argtuples = list(argtuples)
        if len(argtuples) != len(self._proxies):
            raise GroupError("argument tuples length mismatch")
        return [getattr(p, method)(*a)
                for p, a in zip(self._proxies, argtuples)]

    # -- synchronization --------------------------------------------------------

    def barrier(self, timeout: float | None = None) -> None:
        """Wait until no member has a method execution in flight.

        The guarantee covers calls that have *reached* their machine.
        Calls still pipelined in the caller's hands are synchronized by
        waiting on their futures first (``wait_all``); doing both is the
        full synchronization point the paper attaches to the end of a
        parallel loop.
        """
        per_machine: dict[int, list[int]] = {}
        for p in self._proxies:
            per_machine.setdefault(p._ref.machine, []).append(p._ref.oid)
        fabric = self._proxies[0]._bound_fabric()
        futures = [
            fabric.call_async(fabric.kernel_ref(m), "quiesce", (oids, timeout), {})
            for m, oids in sorted(per_machine.items())
        ]
        ok = _collect(futures, "quiesce")
        if not all(ok):
            raise GroupError(f"barrier did not drain within {timeout}s")

    # -- lifecycle -----------------------------------------------------------------

    def destroy(self) -> None:
        """Destroy every member (pipeline-unfriendly but rare)."""
        failures: dict[int, BaseException] = {}
        for i, p in enumerate(self._proxies):
            try:
                destroy_proxy(p)
            except BaseException as exc:  # noqa: BLE001 - aggregate and report
                failures[i] = exc
        if failures:
            raise GroupError(f"{len(failures)} members failed to destroy",
                             failures)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ObjectGroup of {len(self._proxies)}>"


def _collect(futures: Sequence[RemoteFuture], method: str) -> list:
    """Receive-loop with aggregated error reporting."""
    wait_all_errors: dict[int, BaseException] = {}
    results: list = [None] * len(futures)
    for i, f in enumerate(futures):
        err = f.exception()
        if err is not None:
            wait_all_errors[i] = err
        else:
            results[i] = f.result(0)
    if wait_all_errors:
        if len(wait_all_errors) == 1:
            raise next(iter(wait_all_errors.values()))
        raise GroupError(
            f"{len(wait_all_errors)}/{len(futures)} members failed during "
            f"{method!r}", wait_all_errors)
    return results
