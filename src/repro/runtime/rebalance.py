"""Load-driven object rebalancing on top of live migration.

A :class:`Rebalancer` watches the per-object serving gauges every
machine's :class:`~repro.runtime.server.ServePolicy` maintains
(``stats()["serve"]["per_object"]``) and proposes migrations that move
the hottest objects off the most loaded machine onto the least loaded
one.  Proposals are plain data — callers inspect them and invoke
:meth:`Rebalancer.apply`, or opt into the background loop with
:meth:`start` for hands-off rebalancing::

    rb = cluster.rebalancer(min_calls=32)
    moves = rb.propose()          # look before you leap
    rb.apply(moves)               # cluster.migrate() per move

    rb.start(interval_s=2.0)      # or: continuous, until stop()/shutdown
    ...
    rb.stop()

Load is measured as the *delta* of admitted calls per object since the
previous observation, so long-lived but idle objects do not pin their
machine as "hot" forever.  See ``docs/MIGRATION.md`` for the knobs.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Optional, Sequence

from ..errors import (
    MachineDownError,
    NoSuchObjectError,
    ObjectDestroyedError,
    ObjectMovedError,
    RuntimeLayerError,
)
from .oid import ObjectRef

if TYPE_CHECKING:  # pragma: no cover
    from .cluster import Cluster


@dataclasses.dataclass(frozen=True)
class Move:
    """One proposed migration: object *oid* from *src* to *dest*.

    ``load`` is the object's admitted-call delta over the observation
    window — the weight the move shifts between machines.
    """

    oid: int
    src: int
    dest: int
    load: int


class Rebalancer:
    """Propose and apply migrations that even out per-machine load.

    Parameters
    ----------
    cluster:
        The cluster to watch and rebalance.
    threshold:
        Imbalance ratio that triggers a proposal: the hottest machine
        must carry more than ``threshold ×`` the coldest machine's load
        (default 1.5).
    min_calls:
        Ignore machines whose window load is below this many admitted
        calls (default 16) — tiny samples produce noise, not hot spots.
    max_moves:
        Upper bound on proposals per :meth:`propose` round (default 1;
        moving one object and re-observing beats a speculative shuffle).
    """

    def __init__(self, cluster: "Cluster", *, threshold: float = 1.5,
                 min_calls: int = 16, max_moves: int = 1) -> None:
        if threshold < 1.0:
            raise ValueError("threshold must be >= 1.0")
        if min_calls < 1 or max_moves < 1:
            raise ValueError("min_calls and max_moves must be >= 1")
        self.cluster = cluster
        self.threshold = threshold
        self.min_calls = min_calls
        self.max_moves = max_moves
        self._last: dict[tuple[int, int], int] = {}
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- observation -------------------------------------------------------

    def observe(self) -> dict[int, dict[int, int]]:
        """Per-machine ``{oid: admitted-call delta}`` since last call.

        Machines that are down (mp kill, tcp host loss) contribute an
        empty window — they cannot serve, so they cannot be hot.
        """
        window: dict[int, dict[int, int]] = {}
        with self._lock:
            for m in range(self.cluster.n_machines):
                window[m] = {}
                try:
                    serve = self.cluster.on(m).stats().get("serve") or {}
                except (MachineDownError, RuntimeLayerError):
                    continue
                for oid, gauges in (serve.get("per_object") or {}).items():
                    admitted = int(gauges.get("admitted", 0))
                    prev = self._last.get((m, oid), 0)
                    self._last[(m, oid)] = admitted
                    if admitted > prev:
                        window[m][oid] = admitted - prev
        return window

    # -- planning ----------------------------------------------------------

    def propose(self) -> list[Move]:
        """Moves that would reduce the current imbalance (maybe empty)."""
        window = self.observe()
        loads = {m: sum(per.values()) for m, per in window.items()}
        moves: list[Move] = []
        for _ in range(self.max_moves):
            src = max(loads, key=lambda m: loads[m])
            dest = min(loads, key=lambda m: loads[m])
            if src == dest or loads[src] < self.min_calls:
                break
            if loads[src] <= self.threshold * max(loads[dest], 1):
                break
            candidates = {oid: n for oid, n in window[src].items()
                          if not any(mv.oid == oid for mv in moves)}
            if not candidates:
                break
            # Hottest object first, but never one so hot that moving it
            # just swaps which machine is overloaded.
            gap = loads[src] - loads[dest]
            oid = min(candidates,
                      key=lambda o: (abs(candidates[o] - gap // 2),
                                     -candidates[o], o))
            load = candidates.pop(oid)
            moves.append(Move(oid=oid, src=src, dest=dest, load=load))
            loads[src] -= load
            loads[dest] += load
        return moves

    # -- execution ---------------------------------------------------------

    def apply(self, moves: Optional[Sequence[Move]] = None) -> list[Move]:
        """Execute *moves* (default: a fresh :meth:`propose` round).

        Races are tolerated: an object destroyed or already migrated
        between propose and apply is skipped, not an error.  Returns the
        moves that actually happened.
        """
        if moves is None:
            moves = self.propose()
        applied: list[Move] = []
        for mv in moves:
            ref = ObjectRef(machine=mv.src, oid=mv.oid, spec=None)
            try:
                self.cluster.migrate(ref, mv.dest)
            except (NoSuchObjectError, ObjectDestroyedError,
                    ObjectMovedError, MachineDownError):
                continue
            applied.append(mv)
        return applied

    # -- background loop ---------------------------------------------------

    def start(self, interval_s: float = 1.0) -> None:
        """Rebalance every *interval_s* seconds until :meth:`stop`."""
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self._thread is not None and self._thread.is_alive():
            raise RuntimeLayerError("rebalancer already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.apply()
                except Exception:  # noqa: BLE001 - keep the loop alive
                    if self._stop.is_set():
                        return

        self._thread = threading.Thread(target=loop, name="oopp-rebalancer",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the background loop (idempotent)."""
        self._stop.set()
        t = self._thread
        if t is not None:
            t.join(timeout)
            self._thread = None
