"""Runtime core: objects as processes, remote pointers, groups, persistence.

This package is the paper's primary contribution.  The pieces:

``oid``
    :class:`ObjectRef` — the wire form of a *remote pointer*: which
    machine hosts the object and its object id there.

``proxy``
    :class:`Proxy` — the client stub a remote pointer dereferences
    through.  Attribute access synthesizes method stubs (the work the
    paper assigns to the compiler); calls are sequential-by-default,
    with explicit ``.future()`` pipelining and ``.oneway()`` sends.

``server``
    The object server that runs on every machine: an object table, a
    *kernel object* (object id 0) whose methods implement object
    creation/destruction/quiescence/persistence, and the dispatcher that
    executes incoming requests with the runtime context set.

``futures``
    :class:`RemoteFuture` and helpers (:func:`wait_all`, :func:`gather`).

``group``
    :class:`ObjectGroup` — arrays of remote objects with pipelined
    ``invoke`` (the paper's compiler loop-splitting) and ``barrier()``.

``remotedata``
    The paper's ``new(machine 2) double[1024]``: server-side
    :class:`Block` plus convenience constructors.

``persistence`` / ``naming``
    Persistent processes with symbolic ``oop://`` addresses.
"""

from .oid import ObjectRef, class_spec, resolve_class
from .context import RuntimeContext, current_context, current_fabric, fabric_scope
from .futures import RemoteFuture, wait_all, gather, as_completed, yielding_wait
from .proxy import Proxy, RemoteMethod, destroy, is_proxy, ref_of, remote_getattr, remote_setattr
from .group import ObjectGroup
from .remotedata import Block
from .cluster import Cluster, current_cluster
from .rebalance import Move, Rebalancer
from .naming import ObjectAddress, parse_address, format_address
from .autopar import autoparallel, Deferred, CallBatch, DeferredError, force
from .protocol import Protocol, describe_protocol, protocol_of, validate_remote_class

__all__ = [
    "ObjectRef",
    "class_spec",
    "resolve_class",
    "RuntimeContext",
    "current_context",
    "current_fabric",
    "fabric_scope",
    "RemoteFuture",
    "wait_all",
    "gather",
    "as_completed",
    "yielding_wait",
    "Proxy",
    "RemoteMethod",
    "destroy",
    "is_proxy",
    "ref_of",
    "remote_getattr",
    "remote_setattr",
    "ObjectGroup",
    "Block",
    "Cluster",
    "current_cluster",
    "Move",
    "Rebalancer",
    "ObjectAddress",
    "parse_address",
    "format_address",
    "autoparallel",
    "force",
    "Deferred",
    "CallBatch",
    "DeferredError",
    "Protocol",
    "describe_protocol",
    "protocol_of",
    "validate_remote_class",
]
