"""Remote primitive data — the paper's ``new(machine 2) double[1024]``.

:class:`Block` is the server-side object standing in for a raw memory
allocation on a remote machine.  Through a proxy it supports exactly the
paper's example::

    data = cluster.on(2).new_block(1024)        # new(machine 2) double[1024]
    data[7] = 3.1415                            # one round trip
    x = data[2]                                 # one round trip

plus the bulk operations real applications need to amortize latency
(:meth:`read`, :meth:`write`, slicing), which travel on the zero-copy
buffer path of the transport.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class Block:
    """A typed, fixed-length array hosted on a remote machine."""

    #: pure reads: safe to re-send under the chaos layer's retry budget.
    __oopp_idempotent__ = frozenset({
        "read", "sum", "min", "max", "dot", "dtype_name", "nbytes",
    })

    def __init__(self, n: int, dtype: str = "float64",
                 fill: float | int | None = 0) -> None:
        if n < 0:
            raise ValueError("block length must be >= 0")
        if fill is None:
            self._data = np.empty(n, dtype=dtype)
        else:
            self._data = np.full(n, fill, dtype=dtype)

    # -- scalar access (one round trip each, as the paper notes) ----------

    def __getitem__(self, index: Any) -> Any:
        value = self._data[index]
        if isinstance(value, np.ndarray):
            return value.copy()
        return value.item()

    def __setitem__(self, index: Any, value: Any) -> None:
        self._data[index] = value

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, value: Any) -> bool:
        return bool(np.isin(value, self._data).all())

    # -- bulk access (buffer path; amortizes the round trip) ---------------

    def read(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Copy out ``[start:stop)`` as one message."""
        return self._data[start:stop].copy()

    def write(self, start: int, values: np.ndarray) -> int:
        """Copy *values* in at *start*; returns elements written."""
        values = np.asarray(values, dtype=self._data.dtype)
        self._data[start:start + len(values)] = values
        return len(values)

    def fill(self, value: Any) -> None:
        self._data[:] = value

    # -- whole-block computation ("move the computation to the data") -------

    def sum(self) -> Any:
        return self._data.sum().item()

    def min(self) -> Any:
        return self._data.min().item()

    def max(self) -> Any:
        return self._data.max().item()

    def dot(self, other: np.ndarray) -> Any:
        return float(np.dot(self._data, np.asarray(other, dtype=self._data.dtype)))

    def scale(self, alpha: float) -> None:
        self._data *= alpha

    def axpy(self, alpha: float, x: np.ndarray) -> None:
        """``self += alpha * x`` computed entirely on the hosting machine."""
        self._data += alpha * np.asarray(x, dtype=self._data.dtype)

    # -- introspection -----------------------------------------------------

    def dtype_name(self) -> str:
        return str(self._data.dtype)

    def nbytes(self) -> int:
        return int(self._data.nbytes)

    # -- persistence -------------------------------------------------------

    def __getstate__(self) -> dict:
        return {"data": self._data}

    def __setstate__(self, state: dict) -> None:
        self._data = state["data"]
