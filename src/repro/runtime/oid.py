"""Object references and class specs — the wire form of remote pointers."""

from __future__ import annotations

import importlib
import sys
from dataclasses import dataclass

from ..errors import RuntimeLayerError

#: machine id used for "the driver program itself" in caller fields.
DRIVER_MACHINE = -1


@dataclass(frozen=True)
class ObjectRef:
    """A remote pointer: ``(machine, object id)`` plus the class spec.

    Instances are small, hashable and picklable; they are what actually
    travels when a proxy is passed to a remote method (the paper's
    "remote pointer to an array of remote processes").
    """

    machine: int
    oid: int
    spec: tuple[str, str] | None = None  # (module, qualname) of the class

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cls = self.spec[1] if self.spec else "?"
        return f"<ref {cls}@machine{self.machine}#{self.oid}>"


def class_spec(cls: type) -> tuple[str, str]:
    """The (module, qualname) pair identifying *cls* across processes."""
    return (cls.__module__, cls.__qualname__)


def resolve_class(spec: tuple[str, str]) -> type:
    """Resolve a class spec to the class object.

    Looks in :data:`sys.modules` first — under the fork start method the
    worker inherits the parent's loaded modules, which makes classes
    defined in test files or ``__main__`` resolvable without being
    importable by path.  Falls back to a real import.

    A module another thread is still executing (``__spec__._initializing``)
    is treated as absent: peeking at :data:`sys.modules` bypasses the
    per-module import lock, so a daemon hosting several machine servers
    could otherwise see a half-initialized test module when concurrent
    creates race on the first import.  ``import_module`` waits on the
    lock and returns the finished module.
    """
    module_name, qualname = spec
    module = sys.modules.get(module_name)
    if module is not None:
        module_spec = getattr(module, "__spec__", None)
        if module_spec is not None and getattr(module_spec, "_initializing",
                                               False):
            module = None
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise RuntimeLayerError(
                f"cannot resolve class {module_name}:{qualname}: {exc}") from exc
    obj: object = module
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError as exc:
            raise RuntimeLayerError(
                f"cannot resolve class {module_name}:{qualname}: "
                f"no attribute {part!r}") from exc
    if not isinstance(obj, type):
        raise RuntimeLayerError(
            f"{module_name}:{qualname} resolved to {type(obj).__name__}, not a class")
    return obj
