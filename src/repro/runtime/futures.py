"""Futures for pipelined remote calls.

The paper's compiler parallelizes a loop of remote calls by splitting it
into a send-loop and a receive-loop.  :class:`RemoteFuture` is the
library form of that transformation: ``stub.future(*args)`` performs the
*send* half and returns immediately; ``future.result()`` performs the
*receive* half.  :func:`wait_all` / :func:`gather` are the idiomatic
receive-loops.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from ..errors import (
    CallTimeoutError,
    ChannelTimeoutError,
    MachineDownError,
    ServerOverloadedError,
    TransportError,
)

#: failures worth retrying for an idempotent call: the call may not have
#: executed (lost request, dead connection, stalled link).  A
#: :class:`~repro.errors.MachineDownError` is included because the mp
#: backend re-dials dead connections — a retry after a transient
#: connection loss reaches the (still alive) machine again.  A
#: :class:`~repro.errors.ServerOverloadedError` is included because the
#: server shed the call at admission, before any side effect — backing
#: off and re-sending is exactly what admission control asks of the
#: client.
RETRYABLE_ERRORS: tuple[type[BaseException], ...] = (
    CallTimeoutError,
    ChannelTimeoutError,
    MachineDownError,
    ServerOverloadedError,
    TransportError,
)


def retry_call(attempt: Callable[[], Any], *, retries: int,
               backoff_s: float,
               retry_on: tuple[type[BaseException], ...] = RETRYABLE_ERRORS,
               sleep: Callable[[float], None] = time.sleep,
               on_retry: Optional[Callable[[int, BaseException], None]] = None,
               ) -> Any:
    """Run ``attempt()`` with exponential backoff — the receive half of a
    retried idempotent call.

    The first try runs immediately; each of the up-to-*retries* further
    tries is preceded by a sleep of ``backoff_s * 2**i``.  Only
    exceptions in *retry_on* are retried; anything else (including a
    remote application error, which proves the call executed) passes
    straight through.  The last failure is re-raised when the budget is
    exhausted.  *on_retry* (if given) is called as ``on_retry(i, exc)``
    before each re-send — the metrics layer hangs its ``retry.*``
    counters there.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    delay = backoff_s
    for i in range(retries + 1):
        try:
            return attempt()
        except retry_on as exc:
            if i == retries:
                raise
            if on_retry is not None:
                on_retry(i, exc)
        sleep(delay)
        delay *= 2


#: per-thread lock yielder (monitor semantics, see docs/SERVING.md).
#: When a method body blocks waiting on a remote future, the object
#: server must release that thread's per-object locks and worker slot
#: for the duration of the wait: the paper's apps hold an object while
#: calling out to peers that call back in (the stencil's symmetric
#: ghost exchange), and holding the lock across the wait deadlocks
#: them.  The server registers itself here around each execution;
#: driver threads have no yielder and waits are plain blocking.
_yield_local = threading.local()


def set_wait_yielder(yielder: Optional[Any]) -> Optional[Any]:
    """Install *yielder* for this thread's blocking waits; returns the
    previous one so nested executions can restore it."""
    prev = getattr(_yield_local, "yielder", None)
    _yield_local.yielder = yielder
    return prev


class _YieldedLocks:
    """Releases the current thread's object locks around a blocking wait."""

    __slots__ = ("_yielder", "_token")

    def __enter__(self) -> "_YieldedLocks":
        self._yielder = getattr(_yield_local, "yielder", None)
        self._token = (None if self._yielder is None
                       else self._yielder.yield_for_wait())
        return self

    def __exit__(self, *exc) -> None:
        if self._yielder is not None:
            self._yielder.unyield(self._token)


def yielding_wait() -> _YieldedLocks:
    """Release the calling method's object locks around a blocking wait.

    Future waits yield automatically; a method body that instead parks
    on its *own* synchronization — a condition variable filled in by
    another remote call, like the FFT worker waiting for peer
    ``deposit``s — must wrap that wait in this context manager, or the
    depositors queue behind the waiter's own write lock forever::

        with yielding_wait():
            with self._cond:
                self._cond.wait_for(have_all, timeout)

    Outside a served method (driver code, inline execution) this is a
    no-op.
    """
    return _YieldedLocks()


#: one condition shared by every future.  A per-future Event + Lock
#: costs ~7us to construct — more than the wire cost of a coalesced
#: call — and each future is waited on at most a handful of times, so
#: contention on a shared condition is cheaper than per-instance
#: allocation.  Completions notify_all; waiters re-check their own
#: ``_done`` flag.
_COND = threading.Condition()


class RemoteFuture:
    """Completion handle for one in-flight remote call.

    Thread-safe; may be completed exactly once (with a value or an
    exception).  Completion callbacks run on the completing thread.
    Backends with their own notion of blocking (the simulator) override
    :meth:`_wait`.
    """

    __slots__ = ("_value", "_error", "_done", "_callbacks", "label",
                 "__weakref__", "__dict__")

    #: race-detection hooks (class defaults keep the common path to two
    #: attribute reads).  When checking is on, the issuing backend sets
    #: ``_consume_hook`` to the checker's merge and attaches the reply's
    #: clock snapshot as ``_check_clock`` at completion; consuming the
    #: future then merges the executing task's clock into the caller's —
    #: the happens-before edge that only *waiting* on a reply creates.
    _consume_hook = None
    _check_clock = None

    def __init__(self, *, label: str = "") -> None:
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._done = False
        self._callbacks: Optional[list[Callable[["RemoteFuture"], None]]] = None
        #: free-form description for diagnostics ("machine3.read")
        self.label = label

    # -- completion (backend side) ---------------------------------------

    def set_result(self, value: Any) -> None:
        with _COND:
            if self._done:
                raise RuntimeError(f"future {self.label!r} completed twice")
            self._value = value
            self._done = True
            callbacks, self._callbacks = self._callbacks, None
            _COND.notify_all()
        for cb in callbacks or ():
            cb(self)

    def set_exception(self, exc: BaseException) -> None:
        with _COND:
            if self._done:
                raise RuntimeError(f"future {self.label!r} completed twice")
            self._error = exc
            self._done = True
            callbacks, self._callbacks = self._callbacks, None
            _COND.notify_all()
        for cb in callbacks or ():
            cb(self)

    # -- consumption (caller side) ----------------------------------------

    def done(self) -> bool:
        return self._done

    def _wait(self, timeout: Optional[float]) -> bool:
        """Block until complete; backends may interpose (sim time)."""
        if self._done:
            return True
        with _YieldedLocks():
            with _COND:
                return _COND.wait_for(lambda: self._done, timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the reply; the *receive* half of a pipelined call.

        The timeout contract is uniform across backends: if the call has
        not completed within *timeout*, raise
        :class:`~repro.errors.CallTimeoutError`.  What "*timeout*
        seconds" means differs by construction —

        * **mp**: wall-clock seconds, measured here on the caller.
        * **sim**: *simulated* seconds — ``result(timeout=5.0)`` runs
          the event engine until the reply arrives or five simulated
          seconds elapse (see ``SimRemoteFuture._wait``).
        * **inline**: calls execute synchronously inside ``call_async``,
          so every inline future is born completed and ``result`` can
          never time out.  A timeout argument is accepted and trivially
          satisfied.
        """
        if not self._wait(timeout):
            raise CallTimeoutError(
                f"remote call {self.label!r} did not complete within {timeout}s")
        if self._consume_hook is not None:
            self._consume_hook(self._check_clock)
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._wait(timeout):
            raise CallTimeoutError(
                f"remote call {self.label!r} did not complete within {timeout}s")
        if self._consume_hook is not None:
            self._consume_hook(self._check_clock)
        return self._error

    def add_done_callback(self, cb: Callable[["RemoteFuture"], None]) -> None:
        with _COND:
            if not self._done:
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(cb)
                return
        cb(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done() else "pending"
        return f"<RemoteFuture {self.label or '?'} {state}>"


def completed_future(value: Any = None, *, label: str = "") -> RemoteFuture:
    """A future that is already resolved (used by the inline backend)."""
    f = RemoteFuture(label=label)
    f.set_result(value)
    return f


def failed_future(exc: BaseException, *, label: str = "") -> RemoteFuture:
    f = RemoteFuture(label=label)
    f.set_exception(exc)
    return f


def wait_all(futures: Iterable[RemoteFuture],
             timeout: Optional[float] = None) -> None:
    """Block until every future completes (the paper's receive-loop).

    Raises the first exception encountered, *after* waiting for all —
    so no call is silently abandoned in flight.
    """
    futures = list(futures)
    first_error: Optional[BaseException] = None
    for f in futures:
        err = f.exception(timeout)
        if err is not None and first_error is None:
            first_error = err
    if first_error is not None:
        raise first_error


def gather(futures: Sequence[RemoteFuture],
           timeout: Optional[float] = None) -> list:
    """Wait for all futures and return their results, in order."""
    wait_all(futures, timeout)
    return [f.result(0) for f in futures]


def as_completed(futures: Sequence[RemoteFuture],
                 timeout: Optional[float] = None) -> Iterator[RemoteFuture]:
    """Yield futures as they complete (order of completion).

    Note: with the simulated backend, prefer :func:`wait_all` — ordering
    by wall-clock completion is meaningless under simulated time.
    """
    import queue as _queue

    q: _queue.Queue = _queue.Queue()
    for f in futures:
        f.add_done_callback(q.put)
    for _ in range(len(futures)):
        try:
            yield q.get(timeout=timeout)
        except _queue.Empty:
            raise CallTimeoutError(
                f"not all of {len(futures)} calls completed within {timeout}s"
            ) from None
