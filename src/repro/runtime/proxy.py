"""Client stubs for remote objects (what the paper's compiler generates).

A :class:`Proxy` wraps an :class:`~repro.runtime.oid.ObjectRef` together
with the fabric used to reach it.  ``proxy.method(args)`` executes the
method on the remote object and blocks until the result returns — the
paper's sequential semantics.  ``proxy.method.future(args)`` performs
only the *send* half and returns a :class:`RemoteFuture`;
``proxy.method.oneway(args)`` sends with no reply at all.

Subscription operators work the way the paper's ``data[7] = 3.1415``
example requires: ``proxy[i]``, ``proxy[i] = v`` and ``len(proxy)``
forward to ``__getitem__``/``__setitem__``/``__len__`` on the remote
instance, each costing one round trip.

Proxies pickle down to their ``ObjectRef`` and re-attach to the ambient
fabric on arrival, so passing a proxy to a remote method hands the
*pointer*, not the object — exactly the paper's remote-pointer
semantics (see the deep-copy discussion around ``FFT::SetGroup``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import RuntimeLayerError
from .context import current_fabric
from .futures import RemoteFuture
from .oid import ObjectRef

if TYPE_CHECKING:  # pragma: no cover
    from ..backends.base import Fabric

#: reserved method names understood by every object server
GETATTR_METHOD = "__oopp_getattr__"
SETATTR_METHOD = "__oopp_setattr__"
PING_METHOD = "__oopp_ping__"

#: class attribute naming the methods a class declares safe to re-send
#: after an ambiguous failure (executed-twice must equal executed-once).
IDEMPOTENT_ATTR = "__oopp_idempotent__"

#: operations that are idempotent on *every* remote object: liveness
#: probes and pure reads.  Used by the retry machinery in
#: :meth:`repro.backends.base.Fabric.call`.
IDEMPOTENT_IMPLICIT = frozenset({
    GETATTR_METHOD,
    PING_METHOD,
    "ping",          # kernel liveness probe
    "stats",         # kernel / device counters
    "__len__",
    "__contains__",
    "__getitem__",
})


def is_idempotent(ref: ObjectRef, method: str) -> bool:
    """True when re-sending ``method`` on *ref* after an ambiguous
    failure is safe: implicit reads, or methods the target class lists
    in its ``__oopp_idempotent__`` attribute."""
    if method in IDEMPOTENT_IMPLICIT:
        return True
    if ref.spec is None:
        return False
    from .oid import resolve_class

    try:
        cls = resolve_class(ref.spec)
    except Exception:  # noqa: BLE001 - unresolvable spec: assume unsafe
        return False
    return method in getattr(cls, IDEMPOTENT_ATTR, ())


class RemoteMethod:
    """A bound stub for one method of one remote object."""

    __slots__ = ("_proxy", "_name")

    def __init__(self, proxy: "Proxy", name: str) -> None:
        self._proxy = proxy
        self._name = name

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        """Execute remotely; block until the result (or exception) returns.

        Inside an :func:`repro.runtime.autopar.autoparallel` block the
        same call site is transformed into its pipelined form: the
        request is sent, a ``Deferred`` placeholder returns immediately,
        and the block exit is the synchronization point.
        """
        from .autopar import active_batch, check_args_for_pending

        p = self._proxy
        batch = active_batch()
        if batch is not None:
            check_args_for_pending(args, kwargs)
            future = p._bound_fabric().call_forwarded_async(
                p._ref, self._name, args, kwargs, on_move=p._rebind)
            return batch.add(future)
        return p._bound_fabric().call(p._ref, self._name, args, kwargs,
                                      on_move=p._rebind)

    def future(self, *args: Any, **kwargs: Any) -> RemoteFuture:
        """Send the request and return immediately with a future.

        The future transparently follows a migration forward: if the
        object moved while the call was in flight, consuming the result
        re-issues the call at the new address (the send provably never
        executed, same contract as :class:`~repro.errors.PublicationError`).
        """
        p = self._proxy
        return p._bound_fabric().call_forwarded_async(
            p._ref, self._name, args, kwargs, on_move=p._rebind)

    def oneway(self, *args: Any, **kwargs: Any) -> None:
        """Send with no reply channel (fire-and-forget)."""
        p = self._proxy
        p._bound_fabric().call_oneway(p._ref, self._name, args, kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<remote method {self._name} of {self._proxy!r}>"


class Proxy:
    """A remote pointer the program can dereference.

    Only underscore-prefixed attributes exist locally; every other
    attribute access synthesizes a :class:`RemoteMethod`.  Use the
    module-level helpers (:func:`destroy`, :func:`remote_getattr`, ...)
    for operations on the pointer itself, so they can never collide with
    remote method names.
    """

    __slots__ = ("_ref", "_fabric")

    def __init__(self, ref: ObjectRef, fabric: "Fabric | None") -> None:
        object.__setattr__(self, "_ref", ref)
        object.__setattr__(self, "_fabric", fabric)

    # -- migration rebinding ----------------------------------------------

    def _rebind(self, ref: ObjectRef) -> None:
        """Point this proxy at the object's new home after a migration.

        Called by the fabric's forwarding hop so later calls through the
        same proxy go straight to the new machine instead of paying the
        forward every time.
        """
        object.__setattr__(self, "_ref", ref)

    # -- fabric binding ----------------------------------------------------

    def _bound_fabric(self) -> "Fabric":
        fabric = self._fabric
        if fabric is None or fabric.closed:
            had_fabric = fabric is not None
            fabric = current_fabric()
            if fabric is None or fabric.closed:
                if had_fabric:
                    from ..errors import MachineDownError

                    raise MachineDownError(
                        f"the cluster hosting {self._ref!r} was shut down")
                raise RuntimeLayerError(
                    f"proxy {self._ref!r} is not attached to a running cluster")
            object.__setattr__(self, "_fabric", fabric)
        return fabric

    # -- stub synthesis ------------------------------------------------------

    def __getattr__(self, name: str) -> RemoteMethod:
        if name.startswith("_"):
            # Keeps pickle/copy/inspect probing honest and reserves the
            # private namespace for the proxy machinery itself.
            raise AttributeError(name)
        return RemoteMethod(self, name)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            "proxies have no local attributes; use remote_setattr() to set "
            "an attribute on the remote object")

    # -- subscription / container protocol -------------------------------

    def __getitem__(self, key: Any) -> Any:
        return self._bound_fabric().call(self._ref, "__getitem__", (key,), {},
                                         on_move=self._rebind)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._bound_fabric().call(self._ref, "__setitem__", (key, value), {},
                                  on_move=self._rebind)

    def __delitem__(self, key: Any) -> None:
        self._bound_fabric().call(self._ref, "__delitem__", (key,), {},
                                  on_move=self._rebind)

    def __len__(self) -> int:
        return self._bound_fabric().call(self._ref, "__len__", (), {},
                                         on_move=self._rebind)

    def __contains__(self, item: Any) -> bool:
        return self._bound_fabric().call(self._ref, "__contains__", (item,), {},
                                         on_move=self._rebind)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._bound_fabric().call(self._ref, "__call__", args, kwargs,
                                         on_move=self._rebind)

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Proxy) and other._ref == self._ref

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(self._ref)

    def __reduce__(self):
        return (_rebuild_proxy, (self._ref,))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<proxy {self._ref!r}>"


def _rebuild_proxy(ref: ObjectRef) -> Proxy:
    """Unpickle hook: re-attach to whatever fabric is ambient here."""
    return Proxy(ref, current_fabric())


# ---------------------------------------------------------------------------
# Pointer-level operations (module functions so they can never shadow a
# remote method name)
# ---------------------------------------------------------------------------


def is_proxy(obj: Any) -> bool:
    """True if *obj* is a remote pointer."""
    return isinstance(obj, Proxy)


def ref_of(proxy: Proxy) -> ObjectRef:
    """The :class:`ObjectRef` behind a proxy."""
    if not isinstance(proxy, Proxy):
        raise TypeError(f"expected a Proxy, got {type(proxy).__name__}")
    return proxy._ref


def destroy(proxy: Proxy) -> None:
    """Destroy the remote object — the paper's ``delete page_device``.

    Terminates the remote (logical) process: the destructor hook runs on
    the remote machine, the object id becomes permanently invalid, and
    every other pointer to it dangles (subsequent calls raise
    :class:`~repro.errors.ObjectDestroyedError`).
    """
    if not isinstance(proxy, Proxy):
        raise TypeError(f"expected a Proxy, got {type(proxy).__name__}")
    proxy._bound_fabric().destroy(proxy._ref)


def remote_getattr(proxy: Proxy, name: str) -> Any:
    """Read a data attribute of the remote instance (one round trip)."""
    return proxy._bound_fabric().call(proxy._ref, GETATTR_METHOD, (name,), {},
                                      on_move=proxy._rebind)


def remote_setattr(proxy: Proxy, name: str, value: Any) -> None:
    """Set a data attribute on the remote instance (one round trip)."""
    proxy._bound_fabric().call(proxy._ref, SETATTR_METHOD, (name, value), {},
                               on_move=proxy._rebind)


def ping(proxy: Proxy) -> int:
    """Round-trip to the hosting machine; returns its machine id."""
    return proxy._bound_fabric().call(proxy._ref, PING_METHOD, (), {},
                                      on_move=proxy._rebind)
