"""Persistent processes (paper §5).

A *persistent process* is an object that outlives the program that
created it: it can be deactivated (its state snapshotted to stable
storage and its process terminated), later re-activated on any machine,
and is destroyed only by explicitly deleting it through its address.

The runtime pieces:

* the per-machine kernel provides ``snapshot`` / ``evict`` / ``restore``
  (state capture without re-running ``__init__``);
* :class:`PersistentStore` owns a directory of snapshots plus the
  registry of currently active processes, keyed by symbolic
  :class:`~repro.runtime.naming.ObjectAddress`;
* ``Cluster.lookup("oop://store/Class/name")`` resolves an address to a
  proxy, transparently re-activating the process if it is passive —
  the paper's ``PageDevice * d = "http://data/set/PageDevice/34"``.

State is captured via ``__getstate__``/``__setstate__`` (or
``__dict__``), so classes opt into persistence exactly the way they opt
into pickling.  Objects holding OS resources (open files) must
re-acquire them in ``__setstate__`` — see
:class:`repro.storage.device.PageDevice` for the worked example.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import TYPE_CHECKING, Optional

from ..errors import (
    NotPersistentError,
    PersistenceError,
    UnknownAddressError,
)
from .naming import ObjectAddress, address_for, format_address, parse_address
from .oid import ObjectRef
from .proxy import Proxy, destroy as destroy_proxy, ref_of

if TYPE_CHECKING:  # pragma: no cover
    from ..backends.base import Fabric

_SNAP_SUFFIX = ".snap"


class PersistentStore:
    """One named store of persistent processes.

    Thread-safe.  Snapshots live under
    ``<root>/<store>/<ClassName>/<name>.snap``; the active registry maps
    addresses to live object refs for the current cluster session.
    """

    def __init__(self, root: str, store_name: str, fabric: "Fabric") -> None:
        self.name = store_name
        self._dir = os.path.join(root, "persist", store_name)
        os.makedirs(self._dir, exist_ok=True)
        self._fabric = fabric
        self._lock = threading.Lock()
        self._active: dict[ObjectAddress, ObjectRef] = {}

    # -- address helpers -----------------------------------------------------

    def _coerce(self, addr: "ObjectAddress | str") -> ObjectAddress:
        if isinstance(addr, str):
            addr = parse_address(addr)
        if addr.store != self.name:
            raise PersistenceError(
                f"address {format_address(addr)} belongs to store "
                f"{addr.store!r}, not {self.name!r}")
        return addr

    def _snap_path(self, addr: ObjectAddress) -> str:
        return os.path.join(self._dir, addr.class_name, addr.name + _SNAP_SUFFIX)

    # -- registration -----------------------------------------------------------

    def persist(self, proxy: Proxy, name: str) -> ObjectAddress:
        """Register a live object as a persistent process under *name*.

        The object stays active; a passive snapshot is written
        immediately so the address survives a crash of the hosting
        machine (it would reactivate from this snapshot).
        """
        ref = ref_of(proxy)
        class_name = ref.spec[1].rsplit(".", 1)[-1] if ref.spec else "Object"
        addr = address_for(self.name, class_name, name)
        self.checkpoint_ref(addr, ref)
        with self._lock:
            self._active[addr] = ref
        return addr

    def checkpoint(self, addr: "ObjectAddress | str") -> None:
        """Refresh the on-disk snapshot of an active persistent process."""
        addr = self._coerce(addr)
        with self._lock:
            ref = self._active.get(addr)
        if ref is None:
            raise NotPersistentError(
                f"{format_address(addr)} is not active in this session")
        self.checkpoint_ref(addr, ref)

    def checkpoint_ref(self, addr: ObjectAddress, ref: ObjectRef) -> None:
        spec, state = self._fabric.kernel_call(ref.machine, "snapshot", ref.oid)
        self._write_snapshot(addr, spec, state)

    def _write_snapshot(self, addr: ObjectAddress, spec, state) -> None:
        path = self._snap_path(addr)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            pickle.dump({"spec": spec, "state": state,
                         "address": format_address(addr)}, f, protocol=5)
        os.replace(tmp, path)  # atomic publish

    # -- activation state machine ---------------------------------------------

    def is_active(self, addr: "ObjectAddress | str") -> bool:
        addr = self._coerce(addr)
        with self._lock:
            return addr in self._active

    def exists(self, addr: "ObjectAddress | str") -> bool:
        addr = self._coerce(addr)
        with self._lock:
            if addr in self._active:
                return True
        return os.path.exists(self._snap_path(addr))

    def deactivate(self, addr: "ObjectAddress | str") -> None:
        """Snapshot the process to disk and terminate it.

        The address remains valid; the next :meth:`activate` (or
        ``Cluster.lookup``) revives the process from the snapshot.
        """
        addr = self._coerce(addr)
        with self._lock:
            ref = self._active.pop(addr, None)
        if ref is None:
            raise NotPersistentError(
                f"{format_address(addr)} is not active in this session")
        spec, state = self._fabric.kernel_call(ref.machine, "evict", ref.oid)
        self._write_snapshot(addr, spec, state)

    def activate(self, addr: "ObjectAddress | str",
                 machine: Optional[int] = None) -> Proxy:
        """Resolve an address to a live proxy, reviving if passive.

        ``machine`` picks where a passive process re-materializes
        (default: machine 0).  For an already-active process the hosting
        machine cannot change, and a mismatching request is an error.
        """
        addr = self._coerce(addr)
        with self._lock:
            ref = self._active.get(addr)
        if ref is not None:
            if machine is not None and machine != ref.machine:
                raise PersistenceError(
                    f"{format_address(addr)} is active on machine "
                    f"{ref.machine}; cannot activate on machine {machine}")
            return Proxy(ref, self._fabric)
        path = self._snap_path(addr)
        try:
            with open(path, "rb") as f:
                snap = pickle.load(f)
        except FileNotFoundError:
            raise UnknownAddressError(
                f"no persistent process at {format_address(addr)}") from None
        target = machine if machine is not None else 0
        ref = self._fabric.kernel_call(target, "restore",
                                       snap["spec"], snap["state"])
        with self._lock:
            # two racing activations: keep the first registered one
            existing = self._active.get(addr)
            if existing is not None:
                self._fabric.destroy(ref)
                return Proxy(existing, self._fabric)
            self._active[addr] = ref
        return Proxy(ref, self._fabric)

    def rebind(self, old_ref: ObjectRef, new_ref: ObjectRef) -> int:
        """Repoint active registrations after a migration.

        Every address registered to *old_ref* now resolves to *new_ref*;
        returns the number of addresses rebound (0 when the object was
        never persisted — the common case).
        """
        n = 0
        with self._lock:
            for addr, ref in list(self._active.items()):
                if ref == old_ref:
                    self._active[addr] = new_ref
                    n += 1
        return n

    # -- destruction ---------------------------------------------------------------

    def delete(self, addr: "ObjectAddress | str") -> None:
        """Destroy the persistent process — explicit destructor call.

        Terminates the active process (if any) and removes the snapshot,
        after which the address dangles permanently.
        """
        addr = self._coerce(addr)
        with self._lock:
            ref = self._active.pop(addr, None)
        if ref is not None:
            destroy_proxy(Proxy(ref, self._fabric))
        path = self._snap_path(addr)
        try:
            os.remove(path)
            removed = True
        except FileNotFoundError:
            removed = False
        if ref is None and not removed:
            raise UnknownAddressError(
                f"no persistent process at {format_address(addr)}")

    # -- enumeration ------------------------------------------------------------------

    def addresses(self) -> list[ObjectAddress]:
        """All addresses with a snapshot on disk or active in-session."""
        found: set[ObjectAddress] = set()
        if os.path.isdir(self._dir):
            for class_name in sorted(os.listdir(self._dir)):
                class_dir = os.path.join(self._dir, class_name)
                if not os.path.isdir(class_dir):
                    continue
                for fn in sorted(os.listdir(class_dir)):
                    if fn.endswith(_SNAP_SUFFIX):
                        found.add(address_for(self.name, class_name,
                                              fn[:-len(_SNAP_SUFFIX)]))
        with self._lock:
            found.update(self._active)
        return sorted(found, key=format_address)

    def detach_all(self) -> None:
        """Forget active registrations (cluster shutdown); snapshots stay."""
        with self._lock:
            active = dict(self._active)
            self._active.clear()
        for addr, ref in active.items():
            try:
                spec, state = self._fabric.kernel_call(ref.machine, "snapshot",
                                                       ref.oid)
                self._write_snapshot(addr, spec, state)
            except Exception:  # noqa: BLE001 - best effort during teardown
                pass
