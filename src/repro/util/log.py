"""Framework logging.

All framework loggers live under the ``oopp`` namespace
(``oopp.mp.machine3``, ``oopp.server``, ...).  Logging is silent by
default (a NullHandler on the root framework logger); set
``$OOPP_LOG`` to a level name (``debug``, ``info``, ...) to get
stderr output with machine-aware formatting — including from the
machine worker processes, which inherit the environment.
"""

from __future__ import annotations

import logging
import os
import sys
import threading

ROOT_NAME = "oopp"
ENV_VAR = "OOPP_LOG"

_configure_lock = threading.Lock()
_configured = False

_FORMAT = "%(asctime)s %(levelname)-7s pid=%(process)d %(name)s: %(message)s"


def _configure_once() -> None:
    global _configured
    with _configure_lock:
        if _configured:
            return
        root = logging.getLogger(ROOT_NAME)
        root.addHandler(logging.NullHandler())
        level_name = os.environ.get(ENV_VAR, "").strip()
        if level_name:
            level = getattr(logging, level_name.upper(), None)
            if isinstance(level, int):
                handler = logging.StreamHandler(sys.stderr)
                handler.setFormatter(logging.Formatter(_FORMAT))
                root.addHandler(handler)
                root.setLevel(level)
        _configured = True


def get_logger(name: str) -> logging.Logger:
    """A logger under the framework namespace (``oopp.<name>``)."""
    _configure_once()
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def reset_for_tests() -> None:
    """Drop cached configuration so tests can exercise $OOPP_LOG."""
    global _configured
    with _configure_lock:
        root = logging.getLogger(ROOT_NAME)
        for handler in list(root.handlers):
            root.removeHandler(handler)
        root.setLevel(logging.NOTSET)
        _configured = False
