"""Timing helpers shared by the runtime and the benchmark harness."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating wall-clock stopwatch.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True

    May be entered repeatedly; :attr:`elapsed` accumulates across uses.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._t0: float | None = None

    def start(self) -> "Stopwatch":
        if self._t0 is not None:
            raise RuntimeError("stopwatch already running")
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._t0
        self._t0 = None
        self.laps.append(lap)
        self.elapsed += lap
        return lap

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        return self.elapsed / len(self.laps) if self.laps else 0.0


def format_seconds(s: float) -> str:
    """Human-readable duration: ns/us/ms/s with 3 significant digits."""
    if s < 0:
        return "-" + format_seconds(-s)
    if s == 0:
        return "0 s"
    if s < 1e-6:
        return f"{s * 1e9:.3g} ns"
    if s < 1e-3:
        return f"{s * 1e6:.3g} us"
    if s < 1.0:
        return f"{s * 1e3:.3g} ms"
    if s < 120.0:
        return f"{s:.3g} s"
    return f"{s / 60.0:.3g} min"


def format_bytes(n: float) -> str:
    """Human-readable byte count in binary units."""
    if n < 0:
        return "-" + format_bytes(-n)
    units = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"]
    x = float(n)
    for u in units:
        if x < 1024.0 or u == units[-1]:
            return f"{x:.3g} {u}" if u != "B" else f"{int(x)} B"
        x /= 1024.0
    raise AssertionError("unreachable")


def format_rate(bytes_per_s: float) -> str:
    """Human-readable throughput."""
    return format_bytes(bytes_per_s) + "/s"
