"""Small shared utilities: id generation, timing, logging helpers."""

from .ids import IdAllocator, fresh_token
from .timing import Stopwatch, format_seconds, format_bytes, format_rate

__all__ = [
    "IdAllocator",
    "fresh_token",
    "Stopwatch",
    "format_seconds",
    "format_bytes",
    "format_rate",
]
