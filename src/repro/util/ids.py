"""Monotonic id allocation and opaque tokens.

Object ids, request ids and future ids all come from :class:`IdAllocator`
instances.  Ids are plain integers, unique per allocator, dense from a
configurable start, and thread-safe to allocate — the object server hands
them out from connection-handler threads.
"""

from __future__ import annotations

import itertools
import os
import threading


class IdAllocator:
    """Thread-safe monotonically increasing integer ids."""

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._last = start - 1

    def next(self) -> int:
        with self._lock:
            self._last = next(self._counter)
            return self._last

    @property
    def last(self) -> int:
        """The most recently allocated id (start-1 if none yet)."""
        with self._lock:
            return self._last


_token_counter = itertools.count(1)
_token_lock = threading.Lock()


def fresh_token(prefix: str = "tok") -> str:
    """A process-unique opaque string token, e.g. for temp file names."""
    with _token_lock:
        n = next(_token_counter)
    return f"{prefix}-{os.getpid()}-{n}"
