"""Stable host fingerprint: which box is this process running on?

Shared-memory segments and publication pins are *per host* resources:
a ``BUF_SHM``/``BUF_PUB`` descriptor names a segment that exists only
in the exporting host's ``/dev/shm``.  Every descriptor therefore
embeds the exporter's fingerprint, and attach paths refuse descriptors
minted elsewhere instead of attaching a nonexistent (or, worse, an
unrelated same-named) segment.

The fingerprint is 16 hex characters — the truncated SHA-256 of the
most stable host identity available (``/etc/machine-id`` when present,
the hostname otherwise).  It is deliberately *not* per process: two
machine processes forked on the same box must agree so that local shm
hand-off keeps working.

``OOPP_HOST_FINGERPRINT`` overrides the identity source (the override
string is hashed the same way), which lets tests simulate a foreign
host without a second box.
"""

from __future__ import annotations

import hashlib
import os
import socket

FINGERPRINT_LEN = 16  # hex chars; 8 bytes of sha256

_cached: str | None = None
_cached_pid: int | None = None


def _identity_source() -> str:
    override = os.environ.get("OOPP_HOST_FINGERPRINT")
    if override:
        return override
    for path in ("/etc/machine-id", "/var/lib/dbus/machine-id"):
        try:
            with open(path, "r", encoding="ascii") as fh:
                text = fh.read().strip()
            if text:
                return text
        except OSError:
            continue
    return socket.gethostname()


def host_fingerprint() -> str:
    """Return this host's 16-hex-char fingerprint (cached per process).

    The cache is keyed on pid so a forked child re-reads the
    environment: the mp backend forks workers *after* config setup, and
    a test that sets ``OOPP_HOST_FINGERPRINT`` for a spawned daemon
    must not inherit the parent's cached value.
    """
    global _cached, _cached_pid
    pid = os.getpid()
    if _cached is None or _cached_pid != pid:
        digest = hashlib.sha256(_identity_source().encode("utf-8"))
        _cached = digest.hexdigest()[:FINGERPRINT_LEN]
        _cached_pid = pid
    return _cached


def fingerprint_bytes() -> bytes:
    """The fingerprint as exactly 16 ASCII bytes (for struct packing)."""
    return host_fingerprint().encode("ascii")
