"""MapReduce as object processes.

The dataflow is the classic one, but every edge is a remote method
execution:

1. the driver hands each :class:`Mapper` a chunk of input records
   (pipelined — the §4 loop split);
2. each mapper applies the user's map function, partitions the emitted
   ``(key, value)`` pairs by key hash, and pushes each partition
   **directly to its reducer object** with ``reducer.accept(...)`` —
   the shuffle is mapper-to-reducer traffic, never relayed through the
   driver;
3. once every mapper has finished (the natural barrier: the driver has
   collected all ``run_chunk`` replies, and each of those replies only
   after its pushes were acknowledged), the driver asks each
   :class:`Reducer` to fold its groups with the user's reduce function.

The user supplies ordinary module-level functions::

    def map_words(record):            # record -> iterable of (k, v)
        for word in record.split():
            yield word, 1

    def reduce_counts(key, values):   # key, [v] -> result
        return sum(values)

    counts = run_mapreduce(cluster, map_words, reduce_counts, lines)
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Any, Callable, Iterable, Optional, Sequence

from zlib import crc32

from ..check.detector import readonly
from ..errors import OoppError
from ..runtime.futures import wait_all
from ..runtime.group import ObjectGroup
from .funcspec import func_spec, resolve_func


def stable_key_hash(key: Any) -> int:
    """Partition hash that is stable across processes and interpreter runs.

    ``hash()`` is seeded per interpreter (PYTHONHASHSEED), so it only
    partitions consistently when every machine process inherits the
    driver's seed — true under fork, silently wrong under spawn or a
    future multi-host backend, and a source of seed-dependent skew in
    tests.  CRC32 over ``repr`` is deterministic everywhere.
    """
    return crc32(repr(key).encode("utf-8", "backslashreplace"))


class Mapper:
    """A map worker: applies the map function and shuffles to reducers."""

    def __init__(self, mapper_id: int, map_spec: tuple[str, str]) -> None:
        self.mapper_id = mapper_id
        self._map_fn = resolve_func(map_spec)
        self._reducers: Optional[list] = None
        self.records_mapped = 0
        self.pairs_emitted = 0

    def set_reducers(self, reducers: Sequence) -> int:
        """Deep-copied remote pointers to the reducer group (§4 style)."""
        self._reducers = list(reducers)
        return len(self._reducers)

    def run_chunk(self, records: Iterable[Any]) -> dict:
        """Map a chunk and push every partition to its reducer.

        Returns per-mapper statistics; the reply doubles as the
        completion signal the driver's barrier relies on.
        """
        if not self._reducers:
            raise OoppError("mapper has no reducers; call set_reducers first")
        n_reducers = len(self._reducers)
        partitions: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
        for record in records:
            self.records_mapped += 1
            for key, value in self._map_fn(record):
                self.pairs_emitted += 1
                partitions[stable_key_hash(key) % n_reducers].append(
                    (key, value))
        # the shuffle: pipelined pushes straight to the reducer objects
        futures = []
        for r, pairs in partitions.items():
            futures.append(
                self._reducers[r].accept.future(self.mapper_id, pairs))
        wait_all(futures)
        return {
            "mapper": self.mapper_id,
            "records": self.records_mapped,
            "pairs": self.pairs_emitted,
            "partitions": len(partitions),
        }


class Reducer:
    """A reduce worker: accumulates groups, folds them on demand."""

    def __init__(self, reducer_id: int, reduce_spec: tuple[str, str]) -> None:
        self.reducer_id = reducer_id
        self._reduce_fn = resolve_func(reduce_spec)
        self._groups: dict[Any, list] = defaultdict(list)
        self._lock = threading.Lock()
        self.accepted_from: set[int] = set()

    def accept(self, mapper_id: int, pairs: list[tuple[Any, Any]]) -> int:
        """Receive one mapper's partition (runs concurrently per mapper)."""
        with self._lock:
            for key, value in pairs:
                self._groups[key].append(value)
            self.accepted_from.add(mapper_id)
            return len(self._groups)

    def reduce_all(self) -> dict:
        """Fold every key group with the reduce function."""
        with self._lock:
            groups = dict(self._groups)
        return {key: self._reduce_fn(key, values)
                for key, values in groups.items()}

    def reset(self) -> None:
        """Drop accumulated groups (reusing the deployment across jobs)."""
        with self._lock:
            self._groups.clear()
            self.accepted_from.clear()

    @readonly
    def stats(self) -> dict:
        with self._lock:
            return {
                "reducer": self.reducer_id,
                "keys": len(self._groups),
                "mappers_seen": sorted(self.accepted_from),
            }


def _chunk(items: Sequence[Any], parts: int) -> list[list[Any]]:
    """Split *items* into *parts* balanced chunks (some possibly empty)."""
    base, extra = divmod(len(items), parts)
    out, cursor = [], 0
    for i in range(parts):
        width = base + (1 if i < extra else 0)
        out.append(list(items[cursor:cursor + width]))
        cursor += width
    return out


class MapReduce:
    """A reusable MapReduce deployment over a cluster."""

    def __init__(self, cluster, map_fn: Callable, reduce_fn: Callable,
                 n_mappers: Optional[int] = None,
                 n_reducers: Optional[int] = None) -> None:
        self.cluster = cluster
        self.n_mappers = n_mappers or cluster.n_machines
        self.n_reducers = n_reducers or cluster.n_machines
        map_s, reduce_s = func_spec(map_fn), func_spec(reduce_fn)
        self.mappers: ObjectGroup = cluster.new_group(
            Mapper, self.n_mappers, argfn=lambda i: (i, map_s))
        self.reducers: ObjectGroup = cluster.new_group(
            Reducer, self.n_reducers, argfn=lambda i: (i, reduce_s))
        # hand every mapper the deep-copied reducer pointer array
        self.mappers.invoke("set_reducers", self.reducers.proxies)
        self.last_map_stats: list[dict] = []

    def run(self, records: Sequence[Any]) -> dict:
        """Execute one job; returns the merged key → result mapping.

        Key partitioning uses :func:`stable_key_hash`, which is
        deterministic across processes regardless of hash seed; the
        overlap check below still turns any inconsistency into a loud
        error rather than silent double counting.
        """
        self.reducers.invoke("reset")
        chunks = _chunk(records, self.n_mappers)
        # map phase (pipelined); replies arrive only after each mapper's
        # shuffle pushes completed, so collecting them is the barrier.
        self.last_map_stats = self.mappers.invoke_each(
            "run_chunk", [(c,) for c in chunks])
        # reduce phase (pipelined)
        partials = self.reducers.invoke("reduce_all")
        merged: dict = {}
        for part in partials:
            overlap = merged.keys() & part.keys()
            if overlap:
                raise OoppError(
                    f"keys reduced on two reducers: {sorted(overlap)[:5]} "
                    "(non-deterministic key hash?)")
            merged.update(part)
        return merged

    def destroy(self) -> None:
        self.mappers.destroy()
        self.reducers.destroy()


def run_mapreduce(cluster, map_fn: Callable, reduce_fn: Callable,
                  records: Sequence[Any],
                  n_mappers: Optional[int] = None,
                  n_reducers: Optional[int] = None) -> dict:
    """One-shot MapReduce job (deploys, runs, tears down)."""
    job = MapReduce(cluster, map_fn, reduce_fn, n_mappers, n_reducers)
    try:
        return job.run(records)
    finally:
        job.destroy()
