"""Distributed Jacobi heat equation — a stencil over object processes.

A scientific-computing workload in the paper's style: the 2-D heat
equation ``u_t = alpha * (u_xx + u_yy)`` on a rectangle, explicit
Jacobi iteration, slab-decomposed along the first axis.  Each
:class:`StencilWorker` owns a slab plus one ghost row per neighbour;
each step is

1. *ghost exchange* — every worker deposits its boundary rows into its
   neighbours (remote method execution, nothing else);
2. *Jacobi update* — a pure-local vectorized stencil application.

The driver phases the workers exactly like the FFT
(:mod:`repro.fft.distributed`): collecting the ``exchange`` replies is
the barrier before ``step``.  The solver is verified against a serial
numpy reference in the tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..array.partition import slab_bounds
from ..check.detector import readonly
from ..errors import OoppError
from ..runtime.context import current_hooks
from ..runtime.futures import wait_all
from ..runtime.group import ObjectGroup
from ..runtime.proxy import Proxy


def jacobi_step(u: np.ndarray, alpha_dt_h2: float) -> np.ndarray:
    """One explicit step on the interior of *u* (boundary kept fixed)."""
    out = u.copy()
    out[1:-1, 1:-1] = u[1:-1, 1:-1] + alpha_dt_h2 * (
        u[2:, 1:-1] + u[:-2, 1:-1] + u[1:-1, 2:] + u[1:-1, :-2]
        - 4.0 * u[1:-1, 1:-1])
    return out


def solve_serial(u0: np.ndarray, alpha_dt_h2: float,
                 n_steps: int) -> np.ndarray:
    """The single-machine reference the distributed solver must match."""
    u = np.array(u0, dtype=np.float64)
    for _ in range(n_steps):
        u = jacobi_step(u, alpha_dt_h2)
    return u


class StencilWorker:
    """Owner of rows ``[lo, hi)`` of the global grid, plus ghost rows.

    ``flops_rate`` charges simulated compute like the FFT workers do.
    """

    def __init__(self, worker_id: int,
                 flops_rate: Optional[float] = None) -> None:
        self.id = worker_id
        self.flops_rate = flops_rate
        self.n_workers: Optional[int] = None
        self.peers: Optional[list] = None
        self.grid_shape: Optional[tuple[int, int]] = None
        self._u: Optional[np.ndarray] = None  # (slab + ghosts) x ncols
        self._ghost_lo: Optional[np.ndarray] = None
        self._ghost_hi: Optional[np.ndarray] = None
        self.steps_done = 0

    # -- group formation -----------------------------------------------------

    def set_group(self, n_workers: int, peers: Sequence) -> None:
        if n_workers != len(peers):
            raise OoppError(f"group of {n_workers} but {len(peers)} pointers")
        self.n_workers = n_workers
        self.peers = list(peers)

    def set_grid(self, shape: tuple[int, int]) -> None:
        self.grid_shape = tuple(shape)

    def my_bounds(self) -> tuple[int, int]:
        if self.n_workers is None or self.grid_shape is None:
            raise OoppError("worker not initialized")
        return slab_bounds(self.grid_shape[0], self.n_workers, self.id)

    # -- data ----------------------------------------------------------------

    def load(self, slab: np.ndarray) -> None:
        lo, hi = self.my_bounds()
        slab = np.ascontiguousarray(slab, dtype=np.float64)
        if slab.shape != (hi - lo, self.grid_shape[1]):
            raise OoppError(
                f"slab shape {slab.shape}, expected "
                f"{(hi - lo, self.grid_shape[1])}")
        self._u = slab
        ncols = self.grid_shape[1]
        self._ghost_lo = np.zeros(ncols)
        self._ghost_hi = np.zeros(ncols)

    @readonly
    def slab(self) -> np.ndarray:
        if self._u is None:
            raise OoppError("no slab loaded")
        return self._u

    def deposit_ghost(self, side: str, row: np.ndarray) -> None:
        """Receive a neighbour's boundary row.

        ``side`` names *my* ghost being filled: ``"lo"`` comes from the
        worker below me, ``"hi"`` from the one above.
        """
        row = np.asarray(row, dtype=np.float64)
        if side == "lo":
            self._ghost_lo = row
        elif side == "hi":
            self._ghost_hi = row
        else:
            raise OoppError(f"unknown ghost side {side!r}")

    # -- one iteration ----------------------------------------------------------

    def exchange(self) -> int:
        """Push my boundary rows to my neighbours (pipelined).

        Returns the number of neighbours contacted; the reply is the
        driver's barrier token.
        """
        if self._u is None or self.peers is None:
            raise OoppError("worker not initialized")
        futures = []
        if self.id > 0:
            futures.append(self._deposit(self.peers[self.id - 1], "hi",
                                         self._u[0]))
        if self.id < self.n_workers - 1:
            futures.append(self._deposit(self.peers[self.id + 1], "lo",
                                         self._u[-1]))
        wait_all([f for f in futures if f is not None])
        return sum(1 for f in futures)

    def _deposit(self, peer, side: str, row: np.ndarray):
        if isinstance(peer, Proxy):
            return peer.deposit_ghost.future(side, np.ascontiguousarray(row))
        peer.deposit_ghost(side, np.ascontiguousarray(row))
        return None

    def step(self, alpha_dt_h2: float) -> float:
        """Jacobi-update my slab using the exchanged ghosts.

        Returns the slab's max |change| (for convergence monitoring).
        """
        if self._u is None:
            raise OoppError("no slab loaded")
        lo, hi = self.my_bounds()
        first, last = self.id == 0, self.id == self.n_workers - 1
        # assemble slab with ghost rows (global boundary rows are fixed)
        stacked = np.vstack([
            self._u[0] if first else self._ghost_lo,
            self._u,
            self._u[-1] if last else self._ghost_hi,
        ])
        updated = jacobi_step(stacked, alpha_dt_h2)
        new = updated[1:-1]
        # global boundary rows of the physical domain stay Dirichlet
        if first:
            new[0] = self._u[0]
        if last:
            new[-1] = self._u[-1]
        if self.flops_rate:
            flops = 10.0 * new.size
            current_hooks().charge_compute(flops / self.flops_rate)
        delta = float(np.abs(new - self._u).max())
        self._u = np.ascontiguousarray(new)
        self.steps_done += 1
        return delta


class HeatSolver:
    """Driver-side facade: deploy workers, iterate, gather."""

    def __init__(self, cluster, grid_shape: tuple[int, int],
                 n_workers: Optional[int] = None,
                 flops_rate: Optional[float] = None) -> None:
        n = n_workers or cluster.n_machines
        if n > grid_shape[0]:
            raise OoppError(
                f"{n} workers need at least {n} grid rows, got "
                f"{grid_shape[0]}")
        self.grid_shape = tuple(grid_shape)
        self.n_workers = n
        self.group: ObjectGroup = cluster.new_group(
            StencilWorker, n, argfn=lambda i: (i, flops_rate))
        self.group.invoke("set_group", n, self.group.proxies)
        self.group.invoke("set_grid", self.grid_shape)

    def load(self, u0: np.ndarray) -> None:
        u0 = np.asarray(u0, dtype=np.float64)
        if u0.shape != self.grid_shape:
            raise OoppError(f"grid {u0.shape}, expected {self.grid_shape}")
        futures = []
        for i, w in enumerate(self.group):
            lo, hi = slab_bounds(self.grid_shape[0], self.n_workers, i)
            futures.append(w.load.future(np.ascontiguousarray(u0[lo:hi])))
        wait_all(futures)

    def step(self, alpha_dt_h2: float) -> float:
        """One global iteration; returns the global max |change|."""
        self.group.invoke("exchange")          # barrier: ghosts in place
        deltas = self.group.invoke("step", alpha_dt_h2)
        return max(deltas)

    def solve(self, u0: np.ndarray, alpha_dt_h2: float, n_steps: int,
              tol: float = 0.0) -> np.ndarray:
        """Run *n_steps* iterations (early-exit below *tol*); gather."""
        self.load(u0)
        for _ in range(n_steps):
            delta = self.step(alpha_dt_h2)
            if tol and delta < tol:
                break
        return self.gather()

    def gather(self) -> np.ndarray:
        return np.vstack(self.group.invoke("slab"))

    def destroy(self) -> None:
        self.group.destroy()
