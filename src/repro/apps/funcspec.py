"""Shipping *functions* to object processes.

User-defined map/reduce/stencil kernels must execute on remote
machines.  Closures don't pickle; module-level functions do — but a
spec of ``(module, qualname)`` is cheaper on the wire and resolves
through :data:`sys.modules` first, so functions defined in test files
work under the fork start method exactly like classes do
(:func:`repro.runtime.oid.resolve_class`).
"""

from __future__ import annotations

import importlib
import sys
from typing import Callable

from ..errors import RuntimeLayerError


def func_spec(fn: Callable) -> tuple[str, str]:
    """The (module, qualname) pair identifying *fn* across processes.

    Rejects lambdas and local functions up front — they could never be
    resolved on the remote side, and the error is clearer here than
    there.
    """
    if not callable(fn):
        raise RuntimeLayerError(f"expected a callable, got {type(fn).__name__}")
    qualname = getattr(fn, "__qualname__", "")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise RuntimeLayerError(
            f"cannot ship {qualname!r}: map/reduce functions must be "
            "module-level (lambdas and local defs don't resolve remotely)")
    return (fn.__module__, qualname)


def resolve_func(spec: tuple[str, str]) -> Callable:
    """Resolve a function spec on the executing machine."""
    module_name, qualname = spec
    module = sys.modules.get(module_name)
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise RuntimeLayerError(
                f"cannot resolve function {module_name}:{qualname}: {exc}"
            ) from exc
    obj: object = module
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError as exc:
            raise RuntimeLayerError(
                f"cannot resolve function {module_name}:{qualname}: "
                f"no attribute {part!r}") from exc
    if not callable(obj):
        raise RuntimeLayerError(
            f"{module_name}:{qualname} resolved to a non-callable")
    return obj
