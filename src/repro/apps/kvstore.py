"""A sharded key-value store — the client-server model as objects.

:class:`KVShard` is an ordinary class hosted on a machine; it *is* the
server, with no server code written (the framework's dispatcher serves
it).  :class:`KVStore` is the client: a hash router over the shard
proxies, with pipelined bulk operations and the §5 persistence
machinery attached to the shards themselves (`persist()` registers
every shard under a derived symbolic name, `KVStore.attach` rebuilds a
client from those names in a fresh cluster).
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Iterable, Optional, Sequence

from ..check.detector import readonly
from ..errors import OoppError
from ..runtime.futures import wait_all
from ..runtime.group import ObjectGroup

_MISSING = "__kv_missing__"


class KVShard:
    """One shard: a dict with versioned writes.

    Methods are executed by the machine's thread pool; a lock keeps
    the map and the version counter consistent under concurrency.
    """

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._data: dict[Hashable, Any] = {}
        self._lock = threading.Lock()
        self.version = 0

    def put(self, key: Hashable, value: Any) -> int:
        with self._lock:
            self._data[key] = value
            self.version += 1
            return self.version

    @readonly
    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            return self._data.get(key, default)

    @readonly
    def get_strict(self, key: Hashable) -> Any:
        with self._lock:
            if key not in self._data:
                raise KeyError(key)
            return self._data[key]

    def delete(self, key: Hashable) -> bool:
        with self._lock:
            existed = self._data.pop(key, _MISSING) is not _MISSING
            if existed:
                self.version += 1
            return existed

    @readonly
    def contains(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def put_many(self, pairs: list[tuple[Hashable, Any]]) -> int:
        with self._lock:
            self._data.update(pairs)
            self.version += 1
            return len(self._data)

    @readonly
    def get_many(self, keys: list) -> list:
        with self._lock:
            return [self._data.get(k, _MISSING) for k in keys]

    @readonly
    def size(self) -> int:
        with self._lock:
            return len(self._data)

    @readonly
    def keys(self) -> list:
        with self._lock:
            return list(self._data.keys())

    @readonly
    def items(self) -> list:
        with self._lock:
            return list(self._data.items())

    def clear(self) -> int:
        with self._lock:
            n = len(self._data)
            self._data.clear()
            self.version += 1
            return n

    # -- persistence (§5: snapshot the dict, not the lock) --------------------

    def __getstate__(self) -> dict:
        with self._lock:
            return {"shard_id": self.shard_id, "data": dict(self._data),
                    "version": self.version}

    def __setstate__(self, state: dict) -> None:
        self.shard_id = state["shard_id"]
        self._data = dict(state["data"])
        self.version = state["version"]
        self._lock = threading.Lock()


class KVStore:
    """The client: hash-routes keys over shard objects."""

    def __init__(self, shards: Sequence) -> None:
        if not shards:
            raise OoppError("a KV store needs at least one shard")
        self.shards = ObjectGroup(list(shards))

    # -- deployment ------------------------------------------------------------

    @classmethod
    def deploy(cls, cluster, n_shards: Optional[int] = None,
               machines: Optional[Sequence[int]] = None) -> "KVStore":
        """One shard object per machine (round-robin by default)."""
        n = n_shards or cluster.n_machines
        group = cluster.new_group(KVShard, n, machines=machines,
                                  argfn=lambda i: (i,))
        return cls(group.proxies)

    def _shard(self, key: Hashable):
        return self.shards[hash(key) % len(self.shards)]

    # -- single-key operations (one round trip each) ---------------------------

    def put(self, key: Hashable, value: Any) -> None:
        self._shard(key).put(key, value)

    def get(self, key: Hashable, default: Any = None) -> Any:
        return self._shard(key).get(key, default)

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __getitem__(self, key: Hashable) -> Any:
        return self._shard(key).get_strict(key)

    def __contains__(self, key: Hashable) -> bool:
        return self._shard(key).contains(key)

    def delete(self, key: Hashable) -> bool:
        return self._shard(key).delete(key)

    # -- bulk operations (pipelined; one message per touched shard) -----------

    def put_many(self, pairs: Iterable[tuple[Hashable, Any]]) -> None:
        per_shard: dict[int, list] = {}
        for key, value in pairs:
            per_shard.setdefault(hash(key) % len(self.shards), []).append(
                (key, value))
        futures = [self.shards[s].put_many.future(chunk)
                   for s, chunk in per_shard.items()]
        wait_all(futures)

    def get_many(self, keys: Sequence[Hashable],
                 default: Any = None) -> list:
        per_shard: dict[int, list[int]] = {}
        for i, key in enumerate(keys):
            per_shard.setdefault(hash(key) % len(self.shards), []).append(i)
        futures = {
            s: self.shards[s].get_many.future([keys[i] for i in idxs])
            for s, idxs in per_shard.items()
        }
        out: list = [default] * len(keys)
        for s, idxs in per_shard.items():
            values = futures[s].result()
            for i, v in zip(idxs, values):
                out[i] = default if v == _MISSING else v
        return out

    # -- whole-store operations --------------------------------------------------

    def size(self) -> int:
        return sum(self.shards.invoke("size"))

    def keys(self) -> list:
        out: list = []
        for chunk in self.shards.invoke("keys"):
            out.extend(chunk)
        return out

    def items(self) -> dict:
        merged: dict = {}
        for chunk in self.shards.invoke("items"):
            merged.update(chunk)
        return merged

    def clear(self) -> int:
        return sum(self.shards.invoke("clear"))

    def shard_sizes(self) -> list[int]:
        """Per-shard entry counts — load-balance diagnostics."""
        return self.shards.invoke("size")

    # -- persistence over §5 --------------------------------------------------------

    def persist(self, cluster, name: str, store: str = "data") -> list[str]:
        """Register every shard as a persistent process.

        Returns the shards' symbolic addresses; feed them (in order) to
        :meth:`attach` in a later session.
        """
        return [str(cluster.persist(p, f"{name}-shard{i}", store=store))
                for i, p in enumerate(self.shards)]

    @classmethod
    def attach(cls, cluster, addresses: Sequence[str]) -> "KVStore":
        """Rebuild a client from persisted shard addresses.

        Shards reactivate round-robin over the new cluster's machines.
        The address list must be complete and in shard order — the
        router's hash space depends on the count and order.
        """
        shards = [cluster.lookup(a, machine=i % cluster.n_machines)
                  for i, a in enumerate(addresses)]
        return cls(shards)

    def destroy(self) -> None:
        self.shards.destroy()
