"""Programming models built on the object-process framework.

The paper's conclusion claims the framework "is rich enough to include
shared memory and distributed memory programming, as well as other
programming models (client-server applications, map-reduce, etc.)".
This package makes that claim concrete:

* :mod:`repro.apps.mapreduce` — a MapReduce engine where mappers and
  reducers are object processes shuffling to each other by remote
  method execution;
* :mod:`repro.apps.kvstore` — a sharded key-value store: shards are
  server objects, the client is a thin hash router, persistence comes
  from the §5 machinery for free;
* :mod:`repro.apps.stencil` — a distributed Jacobi heat-equation
  solver with ghost-cell exchange between neighbouring slab owners.

None of these introduce new communication machinery: every arrow in
their dataflow is a method call on a remote object.
"""

from .funcspec import func_spec, resolve_func
from .mapreduce import MapReduce, run_mapreduce
from .kvstore import KVShard, KVStore
from .stencil import HeatSolver, StencilWorker

__all__ = [
    "func_spec",
    "resolve_func",
    "MapReduce",
    "run_mapreduce",
    "KVShard",
    "KVStore",
    "HeatSolver",
    "StencilWorker",
]
