"""From-scratch 1-D FFT kernels (radix-2 Cooley–Tukey + Bluestein).

All kernels transform the **last axis** of a complex128 array and are
vectorized over every leading axis — the batch form the distributed
transform needs (a slab transforms thousands of lines at once).

A per-size plan (bit-reversal permutation, twiddle factors, Bluestein
chirp) is computed once and cached; repeated transforms of the same
length reuse it, mirroring FFTW-style planning.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import OoppError


class FFTError(OoppError, ValueError):
    """Invalid transform request (bad length, bad sign)."""


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _next_pow2(n: int) -> int:
    m = 1
    while m < n:
        m <<= 1
    return m


def _bit_reverse_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation of ``range(n)`` (n a power of two)."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros_like(idx)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


@dataclass
class _Radix2Plan:
    n: int
    reverse: np.ndarray          # bit-reversal permutation
    twiddles: list[np.ndarray]   # one array of roots per butterfly stage


@dataclass
class _BluesteinPlan:
    n: int
    m: int                       # padded power-of-two length
    chirp: np.ndarray            # exp(-i*pi*k^2/n)
    kernel_fft: np.ndarray       # FFT of the padded chirp filter


_plan_lock = threading.Lock()
_radix2_plans: dict[int, _Radix2Plan] = {}
_bluestein_plans: dict[int, _BluesteinPlan] = {}


def _radix2_plan(n: int) -> _Radix2Plan:
    with _plan_lock:
        plan = _radix2_plans.get(n)
    if plan is not None:
        return plan
    reverse = _bit_reverse_indices(n)
    twiddles = []
    size = 2
    while size <= n:
        k = np.arange(size // 2)
        twiddles.append(np.exp(-2j * np.pi * k / size))
        size <<= 1
    plan = _Radix2Plan(n, reverse, twiddles)
    with _plan_lock:
        _radix2_plans[n] = plan
    return plan


def _bluestein_plan(n: int) -> _BluesteinPlan:
    with _plan_lock:
        plan = _bluestein_plans.get(n)
    if plan is not None:
        return plan
    m = _next_pow2(2 * n - 1)
    k = np.arange(n, dtype=np.float64)
    # exp(-i*pi*k^2/n); k^2 mod 2n keeps the argument small and exact.
    ksq = (k * k) % (2 * n)
    chirp = np.exp(-1j * np.pi * ksq / n)
    filt = np.zeros(m, dtype=np.complex128)
    filt[:n] = np.conj(chirp)
    filt[m - n + 1:] = np.conj(chirp[1:][::-1])
    kernel_fft = _fft_pow2(filt[np.newaxis, :], inverse=False)[0]
    plan = _BluesteinPlan(n, m, chirp, kernel_fft)
    with _plan_lock:
        _bluestein_plans[n] = plan
    return plan


def _fft_pow2(a: np.ndarray, inverse: bool) -> np.ndarray:
    """Iterative radix-2 FFT along the last axis (length a power of 2)."""
    n = a.shape[-1]
    plan = _radix2_plan(n)
    out = np.ascontiguousarray(a[..., plan.reverse], dtype=np.complex128)
    size = 2
    for stage_tw in plan.twiddles:
        tw = np.conj(stage_tw) if inverse else stage_tw
        half = size // 2
        # View as (..., blocks, size) and butterfly each block in bulk.
        shaped = out.reshape(*out.shape[:-1], n // size, size)
        even = shaped[..., :half]
        odd = shaped[..., half:] * tw
        upper = even + odd
        lower = even - odd
        shaped[..., :half] = upper
        shaped[..., half:] = lower
        size <<= 1
    return out


def _fft_bluestein(a: np.ndarray, inverse: bool) -> np.ndarray:
    """Chirp-z FFT along the last axis for arbitrary length."""
    if inverse:
        # Unnormalized inverse via the conjugation identity:
        # IDFT(x) = conj(DFT(conj(x))).
        return np.conj(_fft_bluestein(np.conj(a), inverse=False))
    n = a.shape[-1]
    plan = _bluestein_plan(n)
    padded = np.zeros(a.shape[:-1] + (plan.m,), dtype=np.complex128)
    padded[..., :n] = a * plan.chirp
    spec = _fft_pow2(padded, inverse=False)
    spec *= plan.kernel_fft
    conv = _fft_pow2(spec, inverse=True)
    conv /= plan.m  # _fft_pow2's inverse is unscaled
    return conv[..., :n] * plan.chirp


def fft_kernel(a: np.ndarray, sign: int = -1) -> np.ndarray:
    """Unnormalized DFT along the last axis.

    ``sign=-1`` is the forward transform (numpy convention);
    ``sign=+1`` the unnormalized inverse.  Accepts any complex or real
    input; always returns a new complex128 array.
    """
    if sign not in (-1, 1):
        raise FFTError(f"sign must be -1 or +1, got {sign}")
    a = np.asarray(a)
    if a.ndim == 0:
        raise FFTError("cannot transform a scalar")
    n = a.shape[-1]
    if n == 0:
        raise FFTError("cannot transform an empty axis")
    a = a.astype(np.complex128, copy=False)
    if n == 1:
        return a.astype(np.complex128, copy=True)
    inverse = sign == 1
    if _is_pow2(n):
        return _fft_pow2(a, inverse)
    return _fft_bluestein(a, inverse)


def ifft_kernel(a: np.ndarray) -> np.ndarray:
    """Normalized inverse DFT along the last axis (matches np.fft.ifft)."""
    out = fft_kernel(a, sign=1)
    out /= a.shape[-1]
    return out


def clear_plan_cache() -> None:
    """Drop cached plans (tests and memory-conscious callers)."""
    with _plan_lock:
        _radix2_plans.clear()
        _bluestein_plans.clear()


def plan_cache_sizes() -> tuple[int, int]:
    with _plan_lock:
        return len(_radix2_plans), len(_bluestein_plans)
