"""Serial 1-D/2-D/3-D transforms for local arrays.

numpy-convention API (``fft``/``ifft`` along one axis, ``fftn`` over
all three), built entirely on the from-scratch kernels — these are the
single-machine baseline against which the distributed transform's
scaling is measured, and the local building block the distributed
workers call on their slabs.
"""

from __future__ import annotations

import numpy as np

from .kernels import fft_kernel, ifft_kernel


def _along_axis(a: np.ndarray, axis: int, inverse: bool) -> np.ndarray:
    a = np.asarray(a)
    moved = np.moveaxis(a, axis, -1)
    out = ifft_kernel(moved) if inverse else fft_kernel(moved, sign=-1)
    return np.moveaxis(out, -1, axis)


def fft(a: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward DFT along *axis* (matches ``np.fft.fft``)."""
    return _along_axis(a, axis, inverse=False)


def ifft(a: np.ndarray, axis: int = -1) -> np.ndarray:
    """Normalized inverse DFT along *axis* (matches ``np.fft.ifft``)."""
    return _along_axis(a, axis, inverse=True)


def fft2(a: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    """2-D DFT over the two given axes."""
    out = fft(a, axes[0])
    return fft(out, axes[1])


def ifft2(a: np.ndarray, axes: tuple[int, int] = (-2, -1)) -> np.ndarray:
    out = ifft(a, axes[0])
    return ifft(out, axes[1])


def fftn(a: np.ndarray) -> np.ndarray:
    """Full DFT over every axis (matches ``np.fft.fftn``)."""
    out = np.asarray(a, dtype=np.complex128)
    for axis in range(out.ndim):
        out = fft(out, axis)
    return out


def ifftn(a: np.ndarray) -> np.ndarray:
    out = np.asarray(a, dtype=np.complex128)
    for axis in range(out.ndim):
        out = ifft(out, axis)
    return out


def rfft(a: np.ndarray, axis: int = -1) -> np.ndarray:
    """DFT of real input, keeping the non-redundant half spectrum.

    Matches ``np.fft.rfft``.  Computed via the full complex transform
    (correct, not the specialized half-size algorithm — the serial
    kernels are baselines, not production FFTs).
    """
    a = np.asarray(a)
    if np.iscomplexobj(a):
        raise ValueError("rfft expects real input; use fft for complex")
    n = a.shape[axis]
    full = fft(a.astype(np.float64), axis)
    keep = n // 2 + 1
    slicer = [slice(None)] * full.ndim
    slicer[axis] = slice(0, keep)
    return np.ascontiguousarray(full[tuple(slicer)])


def irfft(a: np.ndarray, n: int | None = None, axis: int = -1) -> np.ndarray:
    """Inverse of :func:`rfft`, returning a real array of length *n*.

    *n* defaults to ``2 * (a.shape[axis] - 1)``, matching numpy.
    """
    a = np.asarray(a, dtype=np.complex128)
    m = a.shape[axis]
    if n is None:
        n = 2 * (m - 1)
    if n <= 0:
        raise ValueError(f"output length must be positive, got {n}")
    # rebuild the full Hermitian spectrum, then a plain inverse DFT
    moved = np.moveaxis(a, axis, -1)
    keep = n // 2 + 1
    if moved.shape[-1] < keep:
        pad = keep - moved.shape[-1]
        moved = np.concatenate(
            [moved, np.zeros(moved.shape[:-1] + (pad,), dtype=np.complex128)],
            axis=-1)
    else:
        moved = moved[..., :keep]
    tail = np.conj(moved[..., 1:n - keep + 1][..., ::-1])
    spectrum = np.concatenate([moved, tail], axis=-1)
    out = ifft(spectrum, -1).real
    return np.ascontiguousarray(np.moveaxis(out, -1, axis))
