"""FFT: the paper's motivating computation.

Three layers:

``kernels``
    From-scratch 1-D FFT kernels: iterative radix-2 Cooley–Tukey for
    power-of-two sizes and Bluestein's chirp-z algorithm for arbitrary
    sizes, vectorized over batch axes.  numpy's FFT is used only as a
    test oracle, never in the implementation.

``serial``
    1-D/2-D/3-D transforms for local arrays built on the kernels.

``distributed``
    The paper §4 design: an array of ``FFT`` objects, one per machine,
    told about each other with ``SetGroup`` (deep-copied remote
    pointers) and cooperating through remote method execution: local
    transforms on slabs, an all-to-all transpose implemented as
    ``deposit`` calls between peers, and a final local transform.
"""

from .kernels import fft_kernel, ifft_kernel
from .serial import fft, ifft, fft2, ifft2, fftn, ifftn, rfft, irfft
from .distributed import FFT, DistributedFFT3D

__all__ = [
    "fft_kernel",
    "ifft_kernel",
    "fft",
    "ifft",
    "fft2",
    "ifft2",
    "fftn",
    "ifftn",
    "rfft",
    "irfft",
    "FFT",
    "DistributedFFT3D",
]
