"""Distributed 3-D FFT as cooperating remote objects (paper §4).

The paper's listing::

    FFT * fft[N];
    for (int id = 0; id < N; id ++)
        fft[id] = new(machine id) FFT(id);
    for (int id = 0; id < N; id ++)
        fft[id]->SetGroup(N, fft);        // deep-copied remote pointers
    for (int id = 0; id < N; id ++)
        fft[id]->transform(sign, a);

is reproduced class-for-class.  :class:`FFT` is the worker object; its
``SetGroup`` receives the *whole array of remote pointers by value*
(the deep-copy implementation the paper prefers — one bulk transfer
instead of N remote dereferences, measured in experiment E7).

Algorithm: slab decomposition.  Worker *i* holds the slab
``a[lo_i:hi_i, :, :]``.  A forward transform is

1. local FFT along axes 1 and 2 of the slab;
2. all-to-all transpose: worker *i* sends the block
   ``slab[:, lo_j:hi_j, :]`` to worker *j* by executing
   ``fft[j].deposit(...)`` — inter-process communication as remote
   method execution, nothing else;
3. local FFT along axis 0 of the assembled pencil;
4. (optionally) the reverse transpose to restore the slab layout.

Two drive modes:

* **phased** (all backends): the driver invokes each phase on the whole
  group pipelined and the group's completion is the barrier;
* **collective** (``transform``; inline/mp backends): one call per
  worker does everything, blocking on a condition variable until its
  peers' deposits arrive — closest to the paper's single
  ``transform(sign, a)`` call.  Unsuitable for the ``sim`` backend,
  where real-condvar blocking would stall the simulated clock.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np

from ..array.partition import slab_bounds
from ..errors import OoppError
from ..runtime.futures import wait_all, yielding_wait
from ..runtime.group import ObjectGroup
from ..runtime.proxy import Proxy
from .kernels import FFTError, fft_kernel
from .serial import fftn


class FFT:
    """One worker of the distributed transform (the paper's FFT class).

    ``flops_rate`` (floating-point ops per second) makes the worker
    charge estimated compute time to the ambient cost hooks — a no-op
    on the real backends, the machine's simulated CPU under ``sim``
    (how experiment E5 sees computation at all).
    """

    def __init__(self, myid: int, flops_rate: Optional[float] = None) -> None:
        self.id = myid
        self.flops_rate = flops_rate
        self.N: Optional[int] = None
        self.fft: Optional[list] = None  # peers, self.fft[self.id] is me
        self.shape: Optional[tuple[int, int, int]] = None
        self._slab: Optional[np.ndarray] = None
        self._inbox: dict = {}
        self._cond = threading.Condition()

    def _charge_fft_compute(self, n_lines: int, line_len: int) -> None:
        """Estimated 5·n·log2(n) flops per transformed line."""
        if not self.flops_rate or line_len < 2:
            return
        import math

        from ..runtime.context import current_hooks

        flops = 5.0 * n_lines * line_len * math.log2(line_len)
        current_hooks().charge_compute(flops / self.flops_rate)

    # -- group formation ------------------------------------------------------

    def SetGroup(self, myN: int, myfft: Sequence) -> None:
        """Learn the group: size and the deep-copied peer pointer array."""
        if myN != len(myfft):
            raise OoppError(f"group of {myN} but {len(myfft)} pointers")
        self.N = myN
        self.fft = list(myfft)  # the deep copy of §4

    def set_shape(self, shape: tuple[int, int, int]) -> None:
        """Global array shape; fixes this worker's slab bounds."""
        self.shape = tuple(shape)

    def _require_group(self) -> tuple[int, list]:
        if self.N is None or self.fft is None or self.shape is None:
            raise OoppError("worker not initialized: call SetGroup/set_shape")
        return self.N, self.fft

    def my_bounds(self, axis: int = 0) -> tuple[int, int]:
        """This worker's slab bounds along *axis* of the global shape."""
        N, _ = self._require_group()
        return slab_bounds(self.shape[axis], N, self.id)

    # -- data movement ------------------------------------------------------------

    def load(self, slab: np.ndarray) -> None:
        """Install this worker's slab ``a[lo:hi, :, :]``."""
        N, _ = self._require_group()
        lo, hi = self.my_bounds(0)
        slab = np.ascontiguousarray(slab, dtype=np.complex128)
        expected = (hi - lo, self.shape[1], self.shape[2])
        if slab.shape != expected:
            raise FFTError(f"slab shape {slab.shape}, expected {expected}")
        self._slab = slab

    def slab(self) -> np.ndarray:
        """Return the current slab (rows of axis 0)."""
        if self._slab is None:
            raise OoppError("no slab loaded")
        return self._slab

    def deposit(self, phase: str, src: int, block: np.ndarray) -> None:
        """Receive a transpose block from peer *src* (remote-executed)."""
        with self._cond:
            self._inbox[(phase, src)] = np.asarray(block)
            self._cond.notify_all()

    # -- phase methods (driver-coordinated mode) ---------------------------------

    def fft_axes12(self, sign: int) -> None:
        """Phase 1: transform axes 1 and 2 of the local slab."""
        slab = self.slab()
        s0, s1, s2 = slab.shape
        out = fft_kernel(slab, sign)                       # axis 2
        self._charge_fft_compute(s0 * s1, s2)
        out = np.moveaxis(fft_kernel(np.moveaxis(out, 1, -1), sign), -1, 1)
        self._charge_fft_compute(s0 * s2, s1)
        self._slab = np.ascontiguousarray(out)

    def scatter(self, phase: str) -> None:
        """Phase 2a: send my axis-1 blocks to their owners.

        Pipelined sends (all requests in flight at once), then wait —
        exactly the compiler's split loop.
        """
        N, peers = self._require_group()
        slab = self.slab()
        futures = []
        for j in range(N):
            lo, hi = slab_bounds(self.shape[1], N, j)
            block = np.ascontiguousarray(slab[:, lo:hi, :])
            if j == self.id:
                self.deposit(phase, self.id, block)
                continue
            peer = peers[j]
            if isinstance(peer, Proxy):
                futures.append(peer.deposit.future(phase, self.id, block))
            else:
                peer.deposit(phase, self.id, block)
        wait_all(futures)

    def assemble(self, phase: str) -> None:
        """Phase 2b: stack the N received blocks into my pencil.

        After this, the worker owns ``a[:, lo_i:hi_i, :]`` — the full
        axis 0 for its share of axis 1.  Requires all deposits present
        (guaranteed when the driver has collected every ``scatter``).
        """
        N, _ = self._require_group()
        with self._cond:
            missing = [s for s in range(N) if (phase, s) not in self._inbox]
            if missing:
                raise OoppError(
                    f"worker {self.id}: deposits missing from {missing} in "
                    f"phase {phase!r}")
            blocks = [self._inbox.pop((phase, s)) for s in range(N)]
        self._slab = np.ascontiguousarray(np.concatenate(blocks, axis=0))

    def wait_and_assemble(self, phase: str, timeout: float = 120.0) -> None:
        """Blocking assemble for the collective mode (inline/mp only).

        The wait yields this worker's object lock (monitor semantics):
        the peers' ``deposit`` calls are writers on this same object and
        would otherwise queue behind ``transform``'s held lock forever.
        """
        N, _ = self._require_group()
        with yielding_wait():
            with self._cond:
                def have_all() -> bool:
                    return all((phase, s) in self._inbox for s in range(N))
                if not self._cond.wait_for(have_all, timeout):
                    raise OoppError(
                        f"worker {self.id}: transpose {phase!r} incomplete "
                        f"after {timeout}s")
        self.assemble(phase)

    def fft_axis0(self, sign: int) -> None:
        """Phase 3: transform axis 0 of the assembled pencil."""
        pencil = self.slab()
        s0, s1, s2 = pencil.shape
        out = np.moveaxis(fft_kernel(np.moveaxis(pencil, 0, -1), sign), -1, 0)
        self._charge_fft_compute(s1 * s2, s0)
        self._slab = np.ascontiguousarray(out)

    def scatter_back(self, phase: str) -> None:
        """Phase 4a: reverse transpose — return axis-0 blocks to owners."""
        N, peers = self._require_group()
        pencil = self.slab()
        futures = []
        for j in range(N):
            lo, hi = slab_bounds(self.shape[0], N, j)
            block = np.ascontiguousarray(pencil[lo:hi, :, :])
            if j == self.id:
                self.deposit(phase, self.id, block)
                continue
            peer = peers[j]
            if isinstance(peer, Proxy):
                futures.append(peer.deposit.future(phase, self.id, block))
            else:
                peer.deposit(phase, self.id, block)
        wait_all(futures)

    def assemble_back(self, phase: str) -> None:
        """Phase 4b: stitch axis-1 blocks back into slab layout."""
        N, _ = self._require_group()
        with self._cond:
            missing = [s for s in range(N) if (phase, s) not in self._inbox]
            if missing:
                raise OoppError(
                    f"worker {self.id}: deposits missing from {missing} in "
                    f"phase {phase!r}")
            blocks = [self._inbox.pop((phase, s)) for s in range(N)]
        self._slab = np.ascontiguousarray(np.concatenate(blocks, axis=1))

    def wait_and_assemble_back(self, phase: str, timeout: float = 120.0) -> None:
        N, _ = self._require_group()
        with yielding_wait():
            with self._cond:
                def have_all() -> bool:
                    return all((phase, s) in self._inbox for s in range(N))
                if not self._cond.wait_for(have_all, timeout):
                    raise OoppError(
                        f"worker {self.id}: transpose {phase!r} incomplete "
                        f"after {timeout}s")
        self.assemble_back(phase)

    def normalize(self, factor: float) -> None:
        slab = self.slab()
        slab *= factor
        self._slab = slab

    # -- the paper's one-call collective transform --------------------------------

    def transform(self, sign: int, generation: int = 0,
                  restore_layout: bool = True) -> None:
        """The paper's ``fft[id]->transform(sign, a)``.

        Runs the whole pipeline in one remote call, synchronizing with
        peers through their deposits (remote method execution is the
        only communication).  All workers must be invoked concurrently
        (``group.futures("transform", ...)``); backends: inline is
        excluded (single-threaded) and sim is excluded (real blocking),
        exactly as documented in the module docstring.
        """
        tag_fwd = f"t{generation}s{sign}-fwd"
        tag_back = f"t{generation}s{sign}-back"
        self.fft_axes12(sign)
        self.scatter(tag_fwd)
        self.wait_and_assemble(tag_fwd)
        self.fft_axis0(sign)
        if restore_layout:
            self.scatter_back(tag_back)
            self.wait_and_assemble_back(tag_back)

    # -- out-of-core: slabs living in a distributed Array (§4's "a") -------------

    def load_from_arrays(self, re_array, im_array=None) -> None:
        """Fill my slab from distributed Array objects (real + imaginary).

        ``re_array``/``im_array`` are
        :class:`~repro.array.array3d.Array` values; their storage
        proxies re-bind on this machine, so the page reads fan out from
        *here* — the paper's picture of FFT processes exchanging data
        directly with the data object's processes.
        """
        from ..storage.domain import Domain

        N, _ = self._require_group()
        lo, hi = self.my_bounds(0)
        dom = Domain(lo, hi, 0, self.shape[1], 0, self.shape[2])
        re = re_array.read(dom)
        slab = re.astype(np.complex128)
        if im_array is not None:
            slab += 1j * im_array.read(dom)
        self._slab = np.ascontiguousarray(slab)

    def store_to_arrays(self, re_array, im_array=None) -> None:
        """Write my slab back to distributed Array objects."""
        from ..storage.domain import Domain

        lo, hi = self.my_bounds(0)
        dom = Domain(lo, hi, 0, self.shape[1], 0, self.shape[2])
        slab = self.slab()
        re_array.write(np.ascontiguousarray(slab.real), dom)
        if im_array is not None:
            im_array.write(np.ascontiguousarray(slab.imag), dom)

    # -- misc ------------------------------------------------------------------------

    def inbox_size(self) -> int:
        with self._cond:
            return len(self._inbox)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_cond")
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._cond = threading.Condition()


class DistributedFFT3D:
    """Driver-side facade over a group of FFT workers.

    >>> plan = DistributedFFT3D(cluster, shape=(32, 32, 32))  # doctest: +SKIP
    >>> A = plan.forward(a)                                   # doctest: +SKIP
    """

    def __init__(self, cluster, shape: tuple[int, int, int],
                 n_workers: Optional[int] = None,
                 machines: Optional[Sequence[int]] = None,
                 collective: bool = False,
                 flops_rate: Optional[float] = None) -> None:
        if n_workers is None:
            n_workers = len(machines) if machines else cluster.n_machines
        if n_workers < 1:
            raise FFTError("need at least one worker")
        if min(shape) < 1:
            raise FFTError(f"bad shape {shape}")
        if n_workers > min(shape[0], shape[1]):
            raise FFTError(
                f"{n_workers} workers need shape >= ({n_workers},"
                f"{n_workers},1); got {shape}")
        self.cluster = cluster
        self.shape = tuple(shape)
        self.n_workers = n_workers
        self.collective = collective
        self._generation = 0
        # for id in 0..N: fft[id] = new(machine id) FFT(id)
        self.group: ObjectGroup = cluster.new_group(
            FFT, n_workers, machines=machines,
            argfn=lambda i: (i, flops_rate))
        # fft[id]->SetGroup(N, fft) — the pointer array travels by value.
        proxies = self.group.proxies
        self.group.invoke("SetGroup", n_workers, proxies)
        self.group.invoke("set_shape", self.shape)

    # -- scatter/gather of driver-resident arrays ---------------------------------

    def _bounds(self, i: int, axis: int = 0) -> tuple[int, int]:
        return slab_bounds(self.shape[axis], self.n_workers, i)

    def load(self, a: np.ndarray) -> None:
        a = np.asarray(a)
        if a.shape != self.shape:
            raise FFTError(f"array shape {a.shape}, plan shape {self.shape}")
        futures = []
        for i, proxy in enumerate(self.group):
            lo, hi = self._bounds(i)
            futures.append(proxy.load.future(
                np.ascontiguousarray(a[lo:hi], dtype=np.complex128)))
        wait_all(futures)

    def gather(self) -> np.ndarray:
        slabs = self.group.invoke("slab")
        return np.concatenate(slabs, axis=0)

    # -- transforms --------------------------------------------------------------------

    def transform_loaded(self, sign: int, restore_layout: bool = True) -> None:
        """Transform whatever slabs the workers currently hold."""
        gen = self._generation
        self._generation += 1
        if self.collective:
            futures = self.group.futures("transform", sign, gen, restore_layout)
            wait_all(futures)
            return
        tag_fwd = f"p{gen}s{sign}-fwd"
        tag_back = f"p{gen}s{sign}-back"
        self.group.invoke("fft_axes12", sign)
        self.group.invoke("scatter", tag_fwd)     # all deposits complete here
        self.group.invoke("assemble", tag_fwd)
        self.group.invoke("fft_axis0", sign)
        if restore_layout:
            self.group.invoke("scatter_back", tag_back)
            self.group.invoke("assemble_back", tag_back)

    def forward(self, a: np.ndarray) -> np.ndarray:
        """Full forward 3-D DFT of a driver-resident array."""
        self.load(a)
        self.transform_loaded(sign=-1)
        return self.gather()

    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Normalized inverse 3-D DFT (matches ``np.fft.ifftn``)."""
        self.load(a)
        self.transform_loaded(sign=+1)
        n_total = self.shape[0] * self.shape[1] * self.shape[2]
        self.group.invoke("normalize", 1.0 / n_total)
        return self.gather()

    # -- out-of-core transforms over distributed Arrays ---------------------------

    def forward_arrays(self, src_re, src_im=None, dst_re=None,
                       dst_im=None) -> None:
        """Transform an array that lives on block storage, in place or out.

        The driver never touches array data: workers read their slabs
        straight from the source Array's devices, cooperate on the
        transform, and write results to the destination Array's devices
        (defaults: in place).  ``dst_im`` is required unless the
        spectrum's imaginary part may be discarded.
        """
        self._transform_arrays(-1, src_re, src_im, dst_re, dst_im, None)

    def inverse_arrays(self, src_re, src_im=None, dst_re=None,
                       dst_im=None) -> None:
        n_total = self.shape[0] * self.shape[1] * self.shape[2]
        self._transform_arrays(+1, src_re, src_im, dst_re, dst_im,
                               1.0 / n_total)

    def _transform_arrays(self, sign, src_re, src_im, dst_re, dst_im,
                          norm) -> None:
        futures = [p.load_from_arrays.future(src_re, src_im)
                   for p in self.group]
        wait_all(futures)
        self.transform_loaded(sign)
        if norm is not None:
            self.group.invoke("normalize", norm)
        futures = [p.store_to_arrays.future(dst_re if dst_re is not None
                                            else src_re,
                                            dst_im if dst_im is not None
                                            else src_im)
                   for p in self.group]
        wait_all(futures)

    def destroy(self) -> None:
        self.group.destroy()


def reference_fftn(a: np.ndarray) -> np.ndarray:
    """The single-machine baseline (our serial kernels, not numpy)."""
    return fftn(a)
