"""Backend fabrics: how remote calls actually travel.

``inline``
    Objects live in the driver process, one virtual machine per object
    table.  Arguments and results round-trip through the serializer so
    semantics match a real process boundary.  Use for tests and debug.

``mp``
    One OS process per machine.  Each machine runs a socket object
    server; the driver and all machines dial each other directly, so
    object-to-object calls between machines never relay through the
    driver.  This is the real implementation of the paper's model.

``sim``
    Objects live in the driver process but every call is costed on a
    discrete-event cluster simulator (latency, bandwidth, disks), which
    provides the petascale-shaped measurements of EXPERIMENTS.md.
"""

from .base import Fabric, make_fabric
from .inline import InlineFabric

__all__ = ["Fabric", "make_fabric", "InlineFabric"]
