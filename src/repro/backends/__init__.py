"""Backend fabrics: how remote calls actually travel.

``inline``
    Objects live in the driver process, one virtual machine per object
    table.  Arguments and results round-trip through the serializer so
    semantics match a real process boundary.  Use for tests and debug.

``mp``
    One OS process per machine.  Each machine runs a socket object
    server; the driver and all machines dial each other directly, so
    object-to-object calls between machines never relay through the
    driver.  This is the real implementation of the paper's model.

``sim``
    Objects live in the driver process but every call is costed on a
    discrete-event cluster simulator (latency, bandwidth, disks), which
    provides the petascale-shaped measurements of EXPERIMENTS.md.

``tcp``
    Machines on *other hosts*: the driver bootstraps an object-server
    daemon per host (ssh spawn, loopback subprocess, or a pre-started
    daemon), handshakes, and talks the same socket protocol as mp.
    See ``docs/BACKENDS.md``.

Backends are registry entries (:func:`register_backend` /
:func:`available_backends`); ``make_fabric`` and ``Config.validate``
resolve names through the registry, so third-party fabrics plug in
without touching this package.
"""

from .base import Fabric, make_fabric
from .registry import (available_backends, is_registered, register_backend,
                       unregister_backend)

__all__ = [
    "Fabric",
    "make_fabric",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "is_registered",
    "InlineFabric",
]


# The built-ins register through lazy factories so that importing
# repro.backends (which Config.validate does) never drags in
# multiprocessing / simulator machinery the program will not use.
def _inline_factory(config):
    from .inline import InlineFabric

    return InlineFabric(config)


def _mp_factory(config):
    from .mp import MpFabric

    return MpFabric(config)


def _sim_factory(config):
    from .sim import SimFabric

    return SimFabric(config)


def _tcp_factory(config):
    from .tcp import TcpFabric

    return TcpFabric(config)


for _name, _factory in (("inline", _inline_factory), ("mp", _mp_factory),
                        ("sim", _sim_factory), ("tcp", _tcp_factory)):
    if not is_registered(_name):
        register_backend(_name, _factory)
del _name, _factory


def __getattr__(name):
    # InlineFabric stays importable from the package for backwards
    # compatibility without paying for the import on every validate().
    if name == "InlineFabric":
        from .inline import InlineFabric

        return InlineFabric
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
