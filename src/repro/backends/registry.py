"""The pluggable backend registry.

Backends are named factories: ``register_backend("tcp", TcpFabric)``
makes ``Config(backend="tcp")`` resolvable by :func:`make_fabric` and
by ``Config.validate()``.  The built-ins (inline, mp, sim, tcp)
register lazily in :mod:`repro.backends` so importing the registry
never drags in multiprocessing or socket machinery; third-party code
can add its own fabric the same way:

    from repro.backends import register_backend
    register_backend("myfabric", MyFabric)
    Cluster(n_machines=4, backend="myfabric")

A factory is any callable taking a :class:`~repro.config.Config` and
returning a :class:`~repro.backends.base.Fabric`.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from ..config import Config, ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from .base import Fabric

BackendFactory = Callable[["Config"], "Fabric"]

_registry: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, *,
                     replace: bool = False) -> None:
    """Register *factory* under *name*.

    Re-registering an existing name raises unless ``replace=True`` —
    shadowing a built-in silently is almost always a bug; replacing one
    deliberately (e.g. a test double) is fine.
    """
    if not isinstance(name, str) or not name:
        raise ConfigError("backend name must be a non-empty string")
    if not callable(factory):
        raise ConfigError(f"backend factory for {name!r} is not callable")
    if name in _registry and not replace:
        raise ConfigError(
            f"backend {name!r} is already registered; pass replace=True "
            f"to override it")
    _registry[name] = factory


def unregister_backend(name: str) -> None:
    """Remove *name* from the registry (no-op if absent)."""
    _registry.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_registry))


def is_registered(name: str) -> bool:
    return name in _registry


def resolve_backend(name: str) -> BackendFactory:
    """Look up *name*, raising a :class:`ConfigError` that lists what
    is actually registered when it is unknown."""
    try:
        return _registry[name]
    except KeyError:
        known = ", ".join(available_backends()) or "<none>"
        raise ConfigError(
            f"unknown backend {name!r}; registered backends: {known}"
        ) from None
