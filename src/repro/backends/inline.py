"""Inline backend: virtual machines inside the driver process.

Each virtual machine gets its own object table, kernel and dispatcher.
Calls execute synchronously on the calling thread, but arguments and
results still round-trip through the serializer (unless
``config.inline_copy`` is off), so objects on different virtual machines
are genuinely isolated: mutating an argument after the call, or mutating
a returned container, never leaks across the "process" boundary.

``call_async`` executes eagerly and returns an already-completed future.
That keeps pipelined code correct (it simply gains nothing), which is
exactly what the paper says about sequential execution of remote calls
before the compiler's loop-splitting is applied.
"""

from __future__ import annotations

from typing import Any

from ..check.checker import make_checker
from ..config import Config
from ..errors import MachineDownError
from ..obs.tracer import make_tracer
from ..runtime.context import fabric_scope
from ..runtime.futures import RemoteFuture, completed_future, failed_future
from ..runtime.oid import ObjectRef
from ..runtime.server import Dispatcher, Kernel, ObjectTable, ServePolicy
from ..transport import serde
from ..transport.message import ErrorResponse, Request
from ..util.ids import IdAllocator
from .base import Fabric, exception_from_error


class _VirtualMachine:
    """One in-process machine: table + kernel + dispatcher."""

    def __init__(self, machine_id: int, fabric: "InlineFabric") -> None:
        self.machine_id = machine_id
        self.table = ObjectTable(
            forward_buffer=fabric.config.migrate.forward_buffer)
        self.kernel = Kernel(machine_id, self.table)
        self.kernel.tracer = fabric.tracer
        self.kernel.checker = fabric.checker
        self.policy = ServePolicy(fabric.config.serve, machine=machine_id)
        self.kernel.policy = self.policy
        self.dispatcher = Dispatcher(machine_id, self.table, self.kernel,
                                     fabric, tracer=fabric.tracer,
                                     checker=fabric.checker,
                                     policy=self.policy)


class InlineFabric(Fabric):
    """All machines virtual, all calls synchronous, full serde fidelity."""

    #: publications stay in driver memory — every virtual machine shares
    #: the process, so a shared-memory segment would add nothing.
    pub_backing = "local"

    def __init__(self, config: Config) -> None:
        super().__init__(config)
        # One tracer/checker for the whole process: the virtual machines
        # share them (their server spans and recorded accesses carry
        # their own machine ids).
        self.tracer = make_tracer(config, node=-1)
        self.checker = make_checker(config, node=-1)
        self._machines = [_VirtualMachine(i, self) for i in range(config.n_machines)]
        self._request_ids = IdAllocator()

    # -- internals ----------------------------------------------------------

    def _copy(self, value: Any, machine_id: int) -> Any:
        """Serde round trip emulating the process boundary."""
        if not self.config.inline_copy:
            return value
        header, buffers = serde.dumps(value, self.config.pickle_protocol)
        # Freeze buffers: a real wire would have copied them off the sender.
        frozen = [bytes(b) for b in buffers]
        with fabric_scope(self, machine_id=machine_id):
            return serde.loads(header, frozen)

    def _dispatch(self, ref: ObjectRef, method: str, args: tuple,
                  kwargs: dict, *, oneway: bool) -> Any:
        if self._closed:
            raise MachineDownError("cluster is shut down")
        machine = self._machines[self.check_machine(ref.machine)]
        tracer = self.tracer
        span = None
        if tracer is not None and tracer.wants(method):
            span = tracer.start_client(peer=ref.machine, oid=ref.oid,
                                       method=method)
            # Calls execute synchronously: queueing and sending coincide.
            span.t_sent = span.t_queued
        checker = self.checker
        request = Request(
            request_id=self._request_ids.next(),
            object_id=ref.oid,
            method=method,
            args=self._copy(args, ref.machine),
            kwargs=self._copy(kwargs, ref.machine),
            oneway=oneway,
            span=None if span is None else span.span_id,
            clock=None if checker is None else checker.on_send(),
        )
        try:
            reply = machine.dispatcher.execute(request)
        except BaseException as exc:
            if span is not None:
                tracer.finish_client(span, error=type(exc).__name__)
            raise
        if checker is not None and reply is not None:
            # Synchronous execution: the caller observes the reply right
            # here, so the happens-before edge is acquired immediately
            # (error replies included — the raise below *is* the wait).
            checker.on_consume(reply.clock)
        if span is not None:
            tracer.finish_client(
                span,
                error=(reply.type_name
                       if isinstance(reply, ErrorResponse) else None))
        if oneway:
            return None
        if isinstance(reply, ErrorResponse):
            raise exception_from_error(reply)
        assert reply is not None
        # The result is produced under the target machine's context; copy
        # it back under the *caller's* context so contained proxies bind
        # to... the same fabric (inline has only one), but the copy still
        # enforces isolation.
        return self._copy(reply.value, ref.machine)

    # -- Fabric interface ------------------------------------------------------

    def call_async(self, ref: ObjectRef, method: str, args: tuple,
                   kwargs: dict) -> RemoteFuture:
        label = f"machine{ref.machine}#{ref.oid}.{method}"
        try:
            value = self._dispatch(ref, method, args, kwargs, oneway=False)
        except BaseException as exc:  # noqa: BLE001 - delivered via future
            return failed_future(exc, label=label)
        return completed_future(value, label=label)

    def call_oneway(self, ref: ObjectRef, method: str, args: tuple,
                    kwargs: dict) -> None:
        self._dispatch(ref, method, args, kwargs, oneway=True)

    def close(self) -> None:
        if self._closed:
            return
        for vm in self._machines:
            vm.kernel.destroy_all()
        super().close()

    # -- test/debug access -----------------------------------------------------

    def table_of(self, machine: int) -> ObjectTable:
        """Direct access to a virtual machine's object table (tests only)."""
        return self._machines[self.check_machine(machine)].table
