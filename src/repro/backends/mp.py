"""Multiprocessing backend: one OS process per machine, socket RPC.

This is the real implementation of the paper's model.  Every machine is
an OS process running an *object server*: a TCP listener on localhost,
an object table, a kernel object, and a thread pool that executes
incoming method requests.  The driver and all machines dial each other
directly — when an FFT object on machine 2 invokes a method on its peer
on machine 5, the request flows 2→5 without touching the driver.

Wire protocol: framed, pickled messages with a zero-copy buffer path
(:mod:`repro.transport`).  Multiple requests may be in flight on one
connection; responses are matched to futures by request id by a
per-connection reader thread.

Process model note (documented in DESIGN.md): the paper creates one OS
process per *object*; here a machine process hosts many logical
processes (one table entry each, with per-object in-flight accounting).
The message path between any two objects on different machines is
identical to the paper's; co-located objects short-circuit through the
dispatcher, as any production runtime would.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..check.checker import make_checker
from ..config import DEFAULT_HOST, Config
from ..errors import (
    ChannelClosedError,
    ChannelTimeoutError,
    MachineDownError,
    ServerOverloadedError,
    TransportError,
)
from ..obs.metrics import snapshot_process
from ..obs.span import Span
from ..obs.tracer import current_span_id, make_tracer
from ..runtime.context import RuntimeContext, context_scope, set_default_context
from ..runtime.futures import RemoteFuture, completed_future, failed_future
from ..runtime.oid import ObjectRef
from ..runtime.proxy import PING_METHOD
from ..runtime.server import Dispatcher, Kernel, ObjectTable, ServePolicy
from ..transport.message import (
    KERNEL_OID,
    ErrorResponse,
    Goodbye,
    Hello,
    Request,
    Response,
)
from ..transport.channel import Channel
from ..transport.coalesce import CoalescingSender
from ..transport.faults import FaultPlan
from ..transport.socket_channel import SocketChannel, WireOptions, listen_socket
from ..util.hostid import host_fingerprint
from ..util.ids import IdAllocator
from ..util.log import get_logger
from .base import Fabric, exception_from_error

log = get_logger("mp")

#: historical per-machine thread-pool size, used when
#: ``Config.serve.workers`` is None (the "auto" default).
DEFAULT_MP_WORKERS = 8

# Extra executor threads beyond ``serve.workers`` — substrate for bodies
# that yielded their policy slot while parked on a remote future (see
# ``ServePolicy.yield_for_wait``) — come from ``serve.yield_headroom``:
# it bounds how many bodies one machine can park concurrently, so users
# size it for their deepest symmetric exchange (docs/SERVING.md).

#: kernel methods served inline on the connection reader thread instead
#: of the kernel executor: guaranteed non-blocking, and they must land
#: even when both kernel-lane threads are stuck in blocking kernel
#: methods (a destroy draining in-flight calls, an untimed quiesce).
_INLINE_KERNEL_METHODS = frozenset({"shutdown", "ping", PING_METHOD})

# ---------------------------------------------------------------------------
# Client side: request/response demultiplexing over cached connections
# ---------------------------------------------------------------------------


class _Connection:
    """One dialed connection with a response-demux reader thread.

    When ``Config.wire_coalesce`` is on, outbound messages go through a
    :class:`~repro.transport.coalesce.CoalescingSender`, so a burst of
    pipelined requests leaves as one BATCH frame; a flush failure fails
    every pending future, same as a broken socket.
    """

    def __init__(self, channel: Channel, owner: "PeerClient",
                 machine: int, config: Optional[Config] = None) -> None:
        self.channel = channel
        self.machine = machine
        self._owner = owner
        self._lock = threading.Lock()
        #: request id -> (future, oid of the call in flight)
        self._pending: dict[int, tuple[RemoteFuture, int]] = {}
        self._dead: Optional[BaseException] = None
        self._sender: Optional[CoalescingSender] = None
        if config is not None and config.wire.coalesce:
            self._sender = CoalescingSender(
                channel,
                max_msgs=config.wire.coalesce_max_msgs,
                max_bytes=config.wire.coalesce_max_bytes,
                on_error=self._fail_all,
                name=f"oopp-m{machine}")
        self._reader = threading.Thread(
            target=self._read_loop, name=f"oopp-demux-m{machine}", daemon=True)
        self._reader.start()

    def send(self, msg) -> None:
        """Outbound path: through the coalescer when enabled."""
        if self._sender is not None:
            self._sender.send(msg)
        else:
            self.channel.send(msg)

    def register(self, request_id: int, future: RemoteFuture,
                 oid: int) -> None:
        with self._lock:
            if self._dead is not None:
                raise MachineDownError(str(self._dead), machine=self.machine,
                                       oid=oid)
            self._pending[request_id] = (future, oid)

    def _read_loop(self) -> None:
        ctx = self._owner.decode_context
        with context_scope(ctx):
            while True:
                try:
                    msg = self.channel.recv()
                except ChannelTimeoutError:
                    continue  # slow link, not a dead peer: keep reading
                except (ChannelClosedError, TransportError, OSError) as exc:
                    self._fail_all(exc)
                    return
                if isinstance(msg, (Response, ErrorResponse)):
                    with self._lock:
                        entry = self._pending.pop(msg.request_id, None)
                    if entry is None:
                        continue  # response to a cancelled/timed-out call
                    future, _ = entry
                    # Attached before completion so a consumer woken by
                    # set_result always sees the reply's clock.
                    future._check_clock = msg.clock
                    if isinstance(msg, Response):
                        future.set_result(msg.value)
                    else:
                        future.set_exception(exception_from_error(msg))
                elif isinstance(msg, Goodbye):
                    self._fail_all(ChannelClosedError("peer said goodbye"))
                    return
                # Hello/others ignored on an outbound connection.

    def _fail_all(self, exc: BaseException) -> None:
        """Fail every pending future, attaching machine and failed oid."""
        with self._lock:
            if self._dead is None:
                self._dead = exc
            pending = list(self._pending.values())
            self._pending.clear()
        for f, oid in pending:
            try:
                f.set_exception(MachineDownError(
                    f"machine {self.machine} connection lost while "
                    f"object {oid} had a call in flight: {exc}",
                    machine=self.machine, oid=oid))
            except RuntimeError:
                pass  # lost the race against a send-side failure

    @property
    def dead(self) -> bool:
        with self._lock:
            return self._dead is not None

    def close(self) -> None:
        try:
            if self._sender is not None:
                self._sender.send(Goodbye())
                self._sender.close()
            else:
                self.channel.send(Goodbye())
        except (ChannelClosedError, TransportError, OSError):
            pass
        self.channel.close()


class PeerClient:
    """Connection cache + calling convention toward a set of machines.

    Used by the driver (caller id -1) and by every machine (caller id =
    its machine id) for outbound calls.
    """

    def __init__(self, caller: int, decode_context: RuntimeContext,
                 fault_plan: Optional[FaultPlan] = None,
                 config: Optional[Config] = None, tracer=None,
                 checker=None, wire_options_for=None) -> None:
        self.caller = caller
        self.decode_context = decode_context
        self.fault_plan = fault_plan
        self.config = config
        self.tracer = tracer
        self.checker = checker
        #: optional ``machine -> WireOptions`` hook; host-aware backends
        #: use it to downgrade shm/pub for peers on other hosts.
        self.wire_options_for = wire_options_for
        self._addrs: dict[int, tuple[str, int]] = {}
        self._conns: dict[int, _Connection] = {}
        #: machines declared dead by the liveness monitor: fail fast
        #: instead of burning the connect timeout on every call.
        self._down: dict[int, str] = {}
        self._lock = threading.Lock()
        self._request_ids = IdAllocator()
        self._closed = False

    def set_addrs(self, addrs: dict[int, tuple[str, int]]) -> None:
        with self._lock:
            self._addrs.update(addrs)

    @property
    def known_machines(self) -> list[int]:
        with self._lock:
            return sorted(self._addrs)

    def mark_down(self, machine: int, reason: str) -> None:
        """Declare *machine* dead: fail its pending calls and all future
        calls immediately (liveness monitor and kill_machine call this)."""
        with self._lock:
            if machine in self._down:
                return
            self._down[machine] = reason
            conn = self._conns.pop(machine, None)
        if conn is not None:
            conn._fail_all(MachineDownError(reason, machine=machine))
            conn.channel.close()

    def mark_up(self, machine: int) -> None:
        """Clear a down mark after the backend restarted the machine's
        host (the next call dials the new address)."""
        with self._lock:
            self._down.pop(machine, None)

    def _check_down(self, machine: int, oid: Optional[int] = None) -> None:
        reason = self._down.get(machine)
        if reason is not None:
            raise MachineDownError(
                f"machine {machine} is down: {reason}", machine=machine,
                oid=oid)

    def _connect(self, machine: int) -> _Connection:
        with self._lock:
            if self._closed:
                raise MachineDownError("client closed", machine=machine)
            conn = self._conns.get(machine)
            if conn is not None and not conn.dead:
                return conn
            addr = self._addrs.get(machine)
        self._check_down(machine)
        if addr is None:
            raise MachineDownError(f"no address known for machine {machine}",
                                   machine=machine)
        if self.wire_options_for is not None:
            options = self.wire_options_for(machine)
        else:
            options = (WireOptions.from_config(self.config)
                       if self.config is not None else None)
        try:
            channel: Channel = SocketChannel.connect(addr[0], addr[1],
                                                     timeout=10.0,
                                                     options=options)
        except TransportError as exc:
            raise MachineDownError(
                f"cannot reach machine {machine} at {addr}: {exc}",
                machine=machine) from exc
        if self.fault_plan is not None:
            channel = self.fault_plan.wrap(
                channel, label=f"m{self.caller}->m{machine}")
        channel.send(Hello(caller=self.caller))
        conn = _Connection(channel, self, machine, config=self.config)
        with self._lock:
            existing = self._conns.get(machine)
            if existing is not None and not existing.dead:
                conn.close()
                return existing
            self._conns[machine] = conn
        return conn

    def send_request(self, ref: ObjectRef, method: str, args: tuple,
                     kwargs: dict, *, oneway: bool = False) -> Optional[RemoteFuture]:
        self._check_down(ref.machine, ref.oid)
        conn = self._connect(ref.machine)
        request_id = self._request_ids.next()
        tracer = self.tracer
        span = None
        if tracer is not None and tracer.wants(method):
            span = tracer.start_client(peer=ref.machine, oid=ref.oid,
                                       method=method)
        checker = self.checker
        future: Optional[RemoteFuture] = None
        if not oneway:
            future = RemoteFuture(
                label=f"machine{ref.machine}#{ref.oid}.{method}")
            if checker is not None:
                future._consume_hook = checker.on_consume
            conn.register(request_id, future, ref.oid)
            if span is not None:
                # Completion (reply, connection loss, send failure) runs
                # on the completing thread and closes the client span.
                future.add_done_callback(
                    lambda f, s=span: tracer.finish_client(
                        s, error=(type(f.exception(0)).__name__
                                  if f.exception(0) is not None else None)))
        request = Request(request_id=request_id, object_id=ref.oid,
                          method=method, args=args, kwargs=kwargs,
                          oneway=oneway, caller=self.caller,
                          span=None if span is None else span.span_id,
                          clock=None if checker is None else checker.on_send())
        if span is not None:
            # Stamped before the write so a fast reply (on the demux
            # thread) can never finish the span before it is "sent".
            span.t_sent = tracer.now()
        try:
            conn.send(request)
        except (ChannelClosedError, TransportError, OSError) as exc:
            err = MachineDownError(
                f"send to machine {ref.machine} failed: {exc}",
                machine=ref.machine, oid=ref.oid)
            if future is not None and not future.done():
                future.set_exception(err)
                return future
            if future is None:
                if span is not None:
                    tracer.finish_client(span, error="MachineDownError",
                                         replied=False)
                raise err from exc
        return future

    def traffic(self) -> dict:
        """Aggregate wire counters over all live connections."""
        with self._lock:
            conns = list(self._conns.values())
        totals = {"frames_in": 0, "bytes_in": 0, "frames_out": 0,
                  "bytes_out": 0, "connections": len(conns)}
        for conn in conns:
            for key, value in conn.channel.stats.items():
                totals[key] += value
        return totals

    def close(self) -> None:
        with self._lock:
            self._closed = True
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            conn.close()


# ---------------------------------------------------------------------------
# Server side (runs inside each machine process)
# ---------------------------------------------------------------------------


class MachineKernel(Kernel):
    """Kernel with the mp-specific peer-table method."""

    def __init__(self, machine_id: int, table: ObjectTable,
                 server: "MachineServer") -> None:
        super().__init__(machine_id, table)
        self._server = server

    def set_peers(self, addrs: dict[int, tuple[str, int]],
                  fingerprints: Optional[dict[int, str]] = None) -> bool:
        """Install the cluster address table (driver calls this once).

        *fingerprints* (tcp backend) maps each machine to its host's
        fingerprint so machine→machine calls toward a *foreign* host
        downgrade shm/pub to inline payloads, same as the driver does.
        """
        self._server.outbound.set_addrs(addrs)
        if fingerprints:
            self._server.peer_fingerprints.update(fingerprints)
        self._server.peer_count = max(self._server.peer_count,
                                      1 + max(addrs, default=-1))
        return True


class MachineFabric(Fabric):
    """The fabric visible to objects hosted on one machine.

    Outbound calls to peers go over sockets; calls targeting the local
    machine short-circuit straight into the dispatcher on the calling
    thread (still fully sequential, no self-connection burned).
    """

    def __init__(self, config: Config, server: "MachineServer") -> None:
        super().__init__(config)
        self._server = server

    @property
    def machine_count(self) -> int:
        return self._server.peer_count

    def call_async(self, ref: ObjectRef, method: str, args: tuple,
                   kwargs: dict) -> RemoteFuture:
        if ref.machine == self._server.machine_id:
            label = f"local#{ref.oid}.{method}"
            checker = self._server.checker
            # No wire, no client span — but the local server span still
            # parents to whatever span this thread is executing under,
            # and the local execution still ticks/merges clocks so
            # co-located conflicting calls stay visible to the detector.
            request = Request(request_id=self._server.local_ids.next(),
                              object_id=ref.oid, method=method,
                              args=args, kwargs=kwargs,
                              caller=self._server.machine_id,
                              span=current_span_id(),
                              clock=(None if checker is None
                                     else checker.on_send()))
            reply = self._server.dispatcher.execute(request)
            if checker is not None and reply is not None:
                # synchronous execution: the reply edge is acquired here
                checker.on_consume(reply.clock)
            if isinstance(reply, ErrorResponse):
                return failed_future(exception_from_error(reply), label=label)
            assert reply is not None
            return completed_future(reply.value, label=label)
        future = self._server.outbound.send_request(ref, method, args, kwargs)
        assert future is not None
        return future

    def call_oneway(self, ref: ObjectRef, method: str, args: tuple,
                    kwargs: dict) -> None:
        if ref.machine == self._server.machine_id:
            checker = self._server.checker
            request = Request(request_id=self._server.local_ids.next(),
                              object_id=ref.oid, method=method,
                              args=args, kwargs=kwargs, oneway=True,
                              caller=self._server.machine_id,
                              span=current_span_id(),
                              clock=(None if checker is None
                                     else checker.on_send()))
            self._server.dispatcher.execute(request)
            return
        self._server.outbound.send_request(ref, method, args, kwargs,
                                           oneway=True)


class MachineServer:
    """The object server of one machine process."""

    def __init__(self, machine_id: int, config: Config,
                 bind_host: str = DEFAULT_HOST) -> None:
        self.machine_id = machine_id
        self.config = config
        self.peer_count = config.n_machines
        #: machine id -> host fingerprint of the box it runs on (tcp
        #: backend; empty on mp, where every peer is local by
        #: construction).  Consulted when dialing a peer to decide
        #: whether shm/pub descriptors may cross that connection.
        self.peer_fingerprints: dict[int, str] = {}
        #: this process's span recorder (None when tracing is off); the
        #: driver collects it through the kernel's take_spans method.
        self.tracer = make_tracer(config, node=machine_id)
        #: this process's race checker (None when detection is off); the
        #: driver collects it through the kernel's take_race_reports.
        #: Per-machine detection is complete: an object lives on exactly
        #: one machine and every access to it executes here.
        self.checker = make_checker(config, node=machine_id)
        #: request ids for locally short-circuited calls (no wire, but
        #: race reports still want a distinguishable id).
        self.local_ids = IdAllocator()
        self.table = ObjectTable(
            forward_buffer=config.migrate.forward_buffer)
        self.kernel = MachineKernel(machine_id, self.table, self)
        self.kernel.tracer = self.tracer
        self.kernel.checker = self.checker
        self.fabric = MachineFabric(config, self)
        self.fabric.tracer = self.tracer
        self.fabric.checker = self.checker
        self.context = RuntimeContext(fabric=self.fabric, machine_id=machine_id)
        self.outbound = PeerClient(caller=machine_id,
                                   decode_context=self.context,
                                   fault_plan=config.fault_plan,
                                   config=config,
                                   tracer=self.tracer,
                                   checker=self.checker,
                                   wire_options_for=self.options_for_peer)
        self.policy = ServePolicy(config.serve, machine=machine_id)
        self.kernel.policy = self.policy
        self.dispatcher = Dispatcher(machine_id, self.table, self.kernel,
                                     self.fabric, tracer=self.tracer,
                                     checker=self.checker,
                                     policy=self.policy)
        self.listener = listen_socket(bind_host, 0)
        self.port = self.listener.getsockname()[1]
        # serve.workers caps *executing* bodies via the policy's slots;
        # None keeps the historical 8-thread default as the effective
        # limit.  The executor itself gets headroom beyond that: a body
        # parked on a remote future yields its policy slot but still
        # occupies its thread, so without spare threads a symmetric
        # exchange (every worker parked, deposits queued behind them)
        # would starve the pool the policy just freed up.
        pool_size = (config.serve.workers if config.serve.workers is not None
                     else DEFAULT_MP_WORKERS)
        self.executor = ThreadPoolExecutor(
            max_workers=pool_size + config.serve.yield_headroom,
            thread_name_prefix=f"oopp-m{machine_id}")
        # Kernel calls ride a dedicated lane so shutdown/quiesce/metric
        # gathers land even when every worker is busy or blocked.
        self.kernel_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix=f"oopp-m{machine_id}-kernel")
        self._conn_channels: list[SocketChannel] = []
        self._conn_lock = threading.Lock()

    def options_for_peer(self, machine: int) -> WireOptions:
        """Wire options for dialing *machine*: the config's fast path,
        minus shm/pub descriptors when the peer lives on another host
        (its fingerprint from set_peers differs from ours)."""
        base = WireOptions.from_config(self.config)
        fp = self.peer_fingerprints.get(machine)
        if fp is not None and fp != host_fingerprint():
            return dataclasses.replace(base, shm_enabled=False,
                                       pub_descriptors=False)
        return base

    # -- serving ------------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until the kernel's stop event fires."""
        accept_thread = threading.Thread(target=self._accept_loop,
                                         name="oopp-accept", daemon=True)
        accept_thread.start()
        self.kernel.stop_event.wait()
        # Grace period: let in-flight responses (including the reply to
        # the shutdown request itself) drain.
        self.table.quiesce(timeout=self.config.shutdown_timeout_s)
        time.sleep(0.05)
        try:
            self.listener.close()
        except OSError:
            pass
        with self._conn_lock:
            channels = list(self._conn_channels)
        for ch in channels:
            ch.close()
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.kernel_executor.shutdown(wait=False, cancel_futures=True)
        self.outbound.close()

    def _accept_loop(self) -> None:
        options = WireOptions.from_config(self.config)
        while not self.kernel.stop_event.is_set():
            try:
                sock, _ = self.listener.accept()
            except OSError:
                return  # listener closed
            channel = SocketChannel(sock, options=options)
            with self._conn_lock:
                self._conn_channels.append(channel)
            threading.Thread(target=self._connection_loop, args=(channel,),
                             name="oopp-conn", daemon=True).start()

    def _connection_loop(self, channel: SocketChannel) -> None:
        # Replies from the worker pool funnel through one coalescer per
        # connection, so a burst of small responses also batches.
        sender: Optional[CoalescingSender] = None
        if self.config.wire.coalesce:
            sender = CoalescingSender(
                channel,
                max_msgs=self.config.wire.coalesce_max_msgs,
                max_bytes=self.config.wire.coalesce_max_bytes,
                name=f"oopp-m{self.machine_id}-reply")
        reply_send = sender.send if sender is not None else channel.send
        try:
            with context_scope(self.context):
                while True:
                    try:
                        msg = channel.recv()
                    except (ChannelClosedError, TransportError, OSError):
                        return
                    if isinstance(msg, Hello):
                        continue
                    if isinstance(msg, Goodbye):
                        channel.close()
                        return
                    if isinstance(msg, Request):
                        if msg.object_id == KERNEL_OID:
                            # shutdown and ping are non-blocking by
                            # construction (set an event / return an
                            # int), so they run inline on this reader
                            # thread: the kernel lane's 2 threads may
                            # both be parked in blocking kernel methods
                            # (destroy's drain wait, an untimed
                            # quiesce), and liveness + shutdown are the
                            # calls the lane exists to guarantee.
                            if msg.method in _INLINE_KERNEL_METHODS:
                                self._serve_request(reply_send, msg)
                                continue
                            self.kernel_executor.submit(
                                self._serve_request, reply_send, msg)
                            continue
                        # Admission happens here, on the reader thread:
                        # the worker pool's internal queue would
                        # otherwise hide unbounded backlog from the
                        # per-object depth bound.
                        try:
                            self.policy.admit(msg.object_id, msg.method)
                        except ServerOverloadedError as exc:
                            self._reply_shed(reply_send, msg, exc)
                            continue
                        try:
                            self.executor.submit(self._serve_request,
                                                 reply_send, msg, True)
                        except RuntimeError:  # pool shut down mid-stream
                            self.policy.cancel_admit(msg.object_id)
                            raise
        finally:
            if sender is not None:
                sender.close(timeout=1.0)

    def _reply_shed(self, reply_send, request: Request,
                    exc: ServerOverloadedError) -> None:
        """Reject an unadmitted request straight from the reader thread.

        No worker, no span, no vector clock: the call never reached the
        dispatch layer, which is the whole point of admission control.
        """
        self.kernel.count_call()
        if request.oneway:
            return
        reply = ErrorResponse(
            request_id=request.request_id,
            type_name=f"{type(exc).__module__}.{type(exc).__qualname__}",
            message=str(exc),
            remote_traceback="",
            exception=exc,
            clock=None,
        )
        try:
            reply_send(reply)
        except (ChannelClosedError, TransportError, OSError):
            pass

    def _serve_request(self, reply_send, request: Request,
                       preadmitted: bool = False) -> None:
        reply = self.dispatcher.execute(request, preadmitted=preadmitted)
        if reply is None:
            return
        try:
            reply_send(reply)
        except (ChannelClosedError, TransportError, OSError):
            pass  # caller vanished; nothing to report it to


def _worker_main(machine_id: int, config: Config, bootstrap) -> None:
    """Entry point of a machine process."""
    server = MachineServer(machine_id, config)
    set_default_context(server.context)
    log.info("machine %d up on port %d", machine_id, server.port)
    bootstrap.send(("ready", machine_id, server.port))
    bootstrap.close()
    server.serve_forever()
    log.info("machine %d stopped (%d calls served)", machine_id,
             server.kernel.calls_served)


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------


#: polling interval of the driver's machine-liveness monitor (seconds).
LIVENESS_POLL_S = 0.2


class MpFabric(Fabric):
    """Driver-side fabric over a pool of machine processes."""

    def __init__(self, config: Config) -> None:
        super().__init__(config)
        self.tracer = make_tracer(config, node=-1)
        self.checker = make_checker(config, node=-1)
        self._context = RuntimeContext(fabric=self, machine_id=-1)
        self._client = PeerClient(caller=-1, decode_context=self._context,
                                  fault_plan=config.fault_plan,
                                  config=config, tracer=self.tracer,
                                  checker=self.checker)
        self._procs: list[multiprocessing.Process] = []
        self._monitor_stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._spawn_machines()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="oopp-liveness", daemon=True)
        self._monitor.start()

    def _spawn_machines(self) -> None:
        ctx = multiprocessing.get_context(self.config.mp_start_method)
        pipes = []
        for machine_id in range(self.config.n_machines):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(machine_id, self.config, child_conn),
                name=f"oopp-machine-{machine_id}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            pipes.append(parent_conn)
        addrs: dict[int, tuple[str, int]] = {}
        deadline = time.monotonic() + self.config.startup_timeout_s
        for machine_id, conn in enumerate(pipes):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not conn.poll(remaining):
                self._kill_all()
                raise MachineDownError(
                    f"machine {machine_id} did not start within "
                    f"{self.config.startup_timeout_s}s")
            tag, mid, port = conn.recv()
            assert tag == "ready" and mid == machine_id
            addrs[machine_id] = (DEFAULT_HOST, port)
            conn.close()
        self._client.set_addrs(addrs)
        # Hand every machine the full peer table so object→object calls
        # can flow directly.
        futures = [
            self.call_async(self.kernel_ref(m), "set_peers", (addrs,), {})
            for m in addrs
        ]
        for f in futures:
            f.result(self.config.startup_timeout_s)

    # -- liveness -----------------------------------------------------------

    def _monitor_loop(self) -> None:
        """Poll worker processes; convert a dead worker into fast
        :class:`MachineDownError` instead of a hang on the next call."""
        while not self._monitor_stop.wait(LIVENESS_POLL_S):
            for machine, proc in enumerate(self._procs):
                if not proc.is_alive():
                    self._machine_died(machine, proc)

    def _machine_died(self, machine: int, proc) -> None:
        if machine in self._client._down:
            return
        log.warning("machine %d (pid %s) died, exitcode %s", machine,
                    proc.pid, proc.exitcode)
        self._client.mark_down(
            machine,
            f"worker process (pid {proc.pid}) died with exitcode "
            f"{proc.exitcode}")

    # -- Fabric interface ---------------------------------------------------

    def call_async(self, ref: ObjectRef, method: str, args: tuple,
                   kwargs: dict) -> RemoteFuture:
        if self._closed:
            return failed_future(MachineDownError("cluster is shut down"),
                                 label=method)
        self.check_machine(ref.machine)
        try:
            future = self._client.send_request(ref, method, args, kwargs)
        except MachineDownError as exc:
            return failed_future(exc, label=method)
        assert future is not None
        return future

    def call_oneway(self, ref: ObjectRef, method: str, args: tuple,
                    kwargs: dict) -> None:
        self.check_machine(ref.machine)
        self._client.send_request(ref, method, args, kwargs, oneway=True)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        # Graceful: destroy hosted objects (running destructor hooks),
        # then ask each machine to stop.  Machines already declared dead
        # are skipped — no point waiting a shutdown timeout on a corpse.
        for machine in range(self.machine_count):
            if machine in self._client._down:
                continue
            try:
                self._client.send_request(
                    self.kernel_ref(machine), "destroy_all", (), {}
                ).result(self.config.shutdown_timeout_s)
                self._client.send_request(
                    self.kernel_ref(machine), "shutdown", (), {}
                ).result(self.config.shutdown_timeout_s)
            except (MachineDownError, Exception):  # noqa: BLE001 - teardown
                pass
        self._client.close()
        deadline = time.monotonic() + self.config.shutdown_timeout_s
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        self._kill_all()

    def _kill_all(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc.is_alive():
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=2.0)

    # -- observability --------------------------------------------------------

    def trace_spans(self) -> list:
        """Driver spans + every reachable machine's spans.

        Machine processes lose their buffers at shutdown, so gather
        before closing the cluster.  A machine that is down contributes
        nothing (its spans died with it); the driver-side client spans
        of the lost calls are still here, unfinished — that asymmetry
        is the observable signature of the failure.
        """
        spans = super().trace_spans()
        if self.config.trace is None or self._closed:
            return spans
        for machine in range(self.machine_count):
            if self.machine_down(machine):
                continue
            try:
                dicts = self.kernel_call(machine, "take_spans")
            except MachineDownError:
                continue
            spans.extend(Span.from_dict(d) for d in dicts)
        return spans

    def race_reports(self) -> list[dict]:
        """Driver reports + every reachable machine's reports.

        Method executions all happen on the machines, so nearly every
        report comes from there; gather before closing the cluster
        (reports die with their process, like spans).
        """
        reports = super().race_reports()
        check = self.config.check
        if check is None or not check.race_detect or self._closed:
            return reports
        for machine in range(self.machine_count):
            if self.machine_down(machine):
                continue
            try:
                reports.extend(self.kernel_call(machine, "take_race_reports"))
            except MachineDownError:
                continue
        return reports

    def metrics(self) -> dict:
        """Per-process metrics: driver plus each machine (by kernel call).

        A dead machine reports ``{"down": <reason>}`` instead of
        counters — the caller still gets one entry per machine.
        """
        out: dict = {"driver": {**snapshot_process(),
                                "traffic": self.traffic()}}
        if self._closed:
            return out
        for machine in range(self.machine_count):
            key = f"machine {machine}"
            try:
                out[key] = self.kernel_call(machine, "obs_metrics")
            except MachineDownError as exc:
                out[key] = {"down": str(exc)}
        return out

    # -- diagnostics ---------------------------------------------------------------

    def traffic(self) -> dict:
        """Driver-side wire counters (frames/bytes in and out)."""
        return self._client.traffic()

    def machine_pids(self) -> list[Optional[int]]:
        return [p.pid for p in self._procs]

    def machine_alive(self) -> list[bool]:
        return [p.is_alive() for p in self._procs]

    def machine_down(self, machine: int) -> bool:
        """True when the liveness monitor has declared *machine* dead."""
        return machine in self._client._down

    def kill_machine(self, machine: int, *, hard: bool = False) -> None:
        """Kill one machine process (failure-injection tests).

        ``hard=True`` sends SIGKILL — the worker gets no chance to flush
        or say goodbye, the closest stand-in for a machine losing power.
        The machine is immediately declared down, so pending and future
        calls fail with :class:`MachineDownError` rather than hanging.
        """
        self.check_machine(machine)
        proc = self._procs[machine]
        if proc.is_alive():
            log.warning("killing machine %d (pid %s, hard=%s)", machine,
                        proc.pid, hard)
            if hard:
                proc.kill()
            else:
                proc.terminate()
            proc.join(timeout=5.0)
        self._machine_died(machine, proc)
